# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test ci bench experiments figures quick-experiments clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# the tier-1 gate run by .github/workflows/ci.yml: fail fast, no
# install step needed (PYTHONPATH picks up the source tree directly)
ci:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro all | tee full_experiments.txt

quick-experiments:
	$(PYTHON) -m repro all --quick

figures:
	$(PYTHON) -m repro figures

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
