# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test ci lint bench bench-snapshot bench-check experiments figures quick-experiments trace-demo session-demo service-demo cluster-demo clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# static gate: the stdlib AST lint always runs; ruff and mypy run when
# installed (CI installs both; local trees without them still get the
# determinism lint and skip the rest)
lint:
	PYTHONPATH=src $(PYTHON) -m repro lint src/repro
	@if command -v ruff >/dev/null 2>&1; then ruff check src/repro; \
	else echo "ruff not installed; skipping"; fi
	@if command -v mypy >/dev/null 2>&1; then \
	mypy --strict src/repro/errors.py src/repro/faults/report.py \
	src/repro/online/report.py src/repro/staticcheck; \
	else echo "mypy not installed; skipping"; fi

# the tier-1 gate run by .github/workflows/ci.yml: fail fast, no
# install step needed (PYTHONPATH picks up the source tree directly)
ci:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# write a new BENCH_<n>.json performance snapshot (median of 3 passes)
bench-snapshot:
	PYTHONPATH=src $(PYTHON) benchmarks/harness.py

# regression gate: rerun the harness and fail on any benchmark that
# slowed >20% (raw and machine-normalized) vs the newest BENCH_<n>.json
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/harness.py --quick --check

experiments:
	$(PYTHON) -m repro all | tee full_experiments.txt

quick-experiments:
	$(PYTHON) -m repro all --quick

figures:
	$(PYTHON) -m repro figures

# record an observability trace for E1, then summarize and export it
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro run e1 --quick --trace-out e1-trace.json
	PYTHONPATH=src $(PYTHON) -m repro trace summarize e1-trace.json
	PYTHONPATH=src $(PYTHON) -m repro trace export e1-trace.json --csv e1-trace.csv

# drive a rolling scheduler session: the incremental engine on a clique
# (greedy family), then the per-read batch fallback on a grid
session-demo:
	PYTHONPATH=src $(PYTHON) -m repro session --topology clique --size 64 \
		--window 48 --batch 8 --epochs 50 --seed 7
	PYTHONPATH=src $(PYTHON) -m repro session --topology grid --size 8 \
		--window 48 --batch 8 --epochs 50 --seed 7

# run the continuous-arrival service: stable, overloaded, adversarial
service-demo:
	PYTHONPATH=src $(PYTHON) -m repro service --topology grid --size 4 \
		--rate 0.5 --windows 40 --seed 7
	PYTHONPATH=src $(PYTHON) -m repro service --topology grid --size 4 \
		--rate 3.0 --windows 40 --high-water 24 --seed 7
	PYTHONPATH=src $(PYTHON) -m repro service --topology clique --size 16 \
		--stream adversarial --rate 0.6 --burst 4 --windows 40 --seed 7

# the crash-tolerant multi-process cluster: a clean run, then the same
# run with an injected worker kill -- --parity asserts the recovered
# run's outcome is bit-identical to the fault-free one
cluster-demo:
	PYTHONPATH=src $(PYTHON) -m repro cluster --topology grid --size 3 \
		--workers 3 --windows 12 --rate 0.6 --seed 7
	PYTHONPATH=src $(PYTHON) -m repro cluster --topology grid --size 3 \
		--workers 3 --windows 12 --rate 0.6 --seed 7 \
		--chaos kill --parity

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	rm -f e1-trace.json e1-trace.csv
	find . -name __pycache__ -type d -exec rm -rf {} +
