# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test ci bench bench-snapshot bench-check experiments figures quick-experiments trace-demo clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# the tier-1 gate run by .github/workflows/ci.yml: fail fast, no
# install step needed (PYTHONPATH picks up the source tree directly)
ci:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# write a new BENCH_<n>.json performance snapshot (median of 3 passes)
bench-snapshot:
	PYTHONPATH=src $(PYTHON) benchmarks/harness.py

# regression gate: rerun the harness and fail on any benchmark that
# slowed >20% (raw and machine-normalized) vs the newest BENCH_<n>.json
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/harness.py --quick --check

experiments:
	$(PYTHON) -m repro all | tee full_experiments.txt

quick-experiments:
	$(PYTHON) -m repro all --quick

figures:
	$(PYTHON) -m repro figures

# record an observability trace for E1, then summarize and export it
trace-demo:
	PYTHONPATH=src $(PYTHON) -m repro run e1 --quick --trace-out e1-trace.json
	PYTHONPATH=src $(PYTHON) -m repro trace summarize e1-trace.json
	PYTHONPATH=src $(PYTHON) -m repro trace export e1-trace.json --csv e1-trace.csv

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	rm -f e1-trace.json e1-trace.csv
	find . -name __pycache__ -type d -exec rm -rf {} +
