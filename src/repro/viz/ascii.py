"""ASCII renderings of the paper's figures and of schedules.

The paper's six figures are *constructions*, so they can be regenerated
as text: the Fig 1 line decomposition, Fig 2's subgrid execution order
with an object's path, Fig 3's cluster graph, Fig 4's star rings, and the
Fig 5/6 block substrates.  :func:`render_gantt` additionally draws any
schedule's commits over time -- handy for eyeballing phase structure.
All functions return plain strings.
"""

from __future__ import annotations

from typing import Sequence

from ..core.schedule import Schedule
from ..errors import TopologyError
from ..network.graph import Network

__all__ = [
    "render_line_blocks",
    "render_subgrid_order",
    "render_object_path",
    "render_cluster",
    "render_star_rings",
    "render_block_graph",
    "render_gantt",
    "render_dependency",
]


def _require(net: Network, name: str) -> None:
    if net.topology.name != name:
        raise TopologyError(
            f"renderer expects a {name!r} network, got {net.topology.name!r}"
        )


def render_line_blocks(n: int, ell: int) -> str:
    """Fig 1: a line of ``n`` nodes cut into blocks of ``ell`` (S1/S2).

    Even-indexed blocks (phase 1) are bracketed ``[..]``, odd ones
    (phase 2) ``(..)``.
    """
    parts = []
    for start in range(0, n, ell):
        nodes = " ".join(f"v{i}" for i in range(start, min(start + ell, n)))
        block = start // ell
        parts.append(f"[{nodes}]" if block % 2 == 0 else f"({nodes})")
    legend = f"line n={n}, ell={ell}: [..] = S1 (phase 1), (..) = S2 (phase 2)"
    return legend + "\n" + " ".join(parts)


def render_subgrid_order(rows: int, cols: int, side: int) -> str:
    """Fig 2: boustrophedon execution order of the subgrids.

    Each cell shows the 1-based position of that subgrid in the column-
    major alternating sweep.
    """
    sub_rows = -(-rows // side)
    sub_cols = -(-cols // side)
    order = {}
    pos = 1
    for j in range(sub_cols):
        rng = range(sub_rows) if j % 2 == 0 else range(sub_rows - 1, -1, -1)
        for i in rng:
            order[(i, j)] = pos
            pos += 1
    width = len(str(pos - 1)) + 1
    lines = [
        f"{rows}x{cols} grid, {side}x{side} subgrids, boustrophedon order:"
    ]
    for i in range(sub_rows):
        lines.append(
            "".join(str(order[(i, j)]).rjust(width) for j in range(sub_cols))
        )
    return "\n".join(lines)


def render_object_path(schedule: Schedule, obj: int, cols: int) -> str:
    """Fig 2 overlay: an object's visit order drawn on the grid.

    Cells show the visit number (1-based, ``*`` marks the home); unvisited
    cells show ``.``.  ``cols`` is the grid width used for node ids.
    """
    visits = schedule.itinerary(obj)
    rows = (schedule.instance.network.n + cols - 1) // cols
    marks: dict[int, str] = {}
    marks[visits[0].node] = "*"
    for i, v in enumerate(visits[1:], start=1):
        marks[v.node] = str(i)
    width = max((len(m) for m in marks.values()), default=1) + 1
    lines = [f"object {obj}: * = home, numbers = visit order"]
    for r in range(rows):
        cells = []
        for c in range(cols):
            node = r * cols + c
            cells.append(marks.get(node, ".").rjust(width))
        lines.append("".join(cells))
    return "\n".join(lines)


def render_cluster(net: Network) -> str:
    """Fig 3: clusters as bracketed cliques, bridges annotated with gamma."""
    _require(net, "cluster")
    topo = net.topology
    clusters = topo.require("clusters")
    gamma = topo.require("gamma")
    bridges = topo.require("bridges")
    lines = [
        f"cluster graph: {len(clusters)} cliques x {len(clusters[0])} nodes, "
        f"bridge weight gamma={gamma}"
    ]
    for i, members in enumerate(clusters):
        nodes = " ".join(
            f"*{v}" if v == bridges[i] else str(v) for v in members
        )
        lines.append(f"  C{i}: [{nodes}]   (* = bridge node)")
    lines.append(
        "  bridges form a complete graph: "
        + ", ".join(f"*{b}" for b in bridges)
    )
    return "\n".join(lines)


def render_star_rings(net: Network) -> str:
    """Fig 4: rays as rows, exponential segments V1, V2, ... as columns."""
    _require(net, "star")
    from ..core.star import ray_segments

    topo = net.topology
    rays = topo.require("rays")
    beta = topo.require("beta")
    segments = ray_segments(beta)
    header = "ray   " + "  ".join(
        f"V{i}[{stop - start}]" for i, (start, stop) in enumerate(segments, 1)
    )
    lines = [
        f"star: {len(rays)} rays x {beta} nodes, center *0, "
        f"{len(segments)} segment rings",
        header,
    ]
    for r, ray in enumerate(rays):
        cells = []
        for start, stop in segments:
            cells.append(",".join(str(v) for v in ray[start:stop]))
        lines.append(f"r{r:<4} " + "  ".join(cells))
    return "\n".join(lines)


def render_block_graph(net: Network) -> str:
    """Fig 5/6: the §8 substrate as blocks H_1..H_s with the heavy joins."""
    if net.topology.name not in ("lb-grid", "lb-tree"):
        raise TopologyError(
            f"renderer expects lb-grid/lb-tree, got {net.topology.name!r}"
        )
    topo = net.topology
    s = topo.require("s")
    root = topo.require("root_s")
    kind = "grid blocks" if net.topology.name == "lb-grid" else "comb-tree blocks"
    chain = f" ={s}= ".join(f"[H{i + 1}:{s}x{root}]" for i in range(s))
    return (
        f"{net.topology.name}: s={s}, n={net.n} ({kind}), "
        f"inter-block edge weight {s}\n{chain}"
    )


def render_dependency(instance, colors: dict[int, int] | None = None) -> str:
    """The conflict graph H (§2.3) as an adjacency listing.

    One line per transaction with its conflicts and edge weights
    (distances in ``G``); pass a colouring to annotate each vertex with
    its assigned colour/commit step.
    """
    from ..core.dependency import DependencyGraph

    graph = DependencyGraph.build(instance)
    lines = [
        f"dependency graph: {graph.num_vertices} transactions, "
        f"{graph.num_edges} conflicts, h_max={graph.h_max}, "
        f"Delta={graph.max_degree}"
    ]
    for tid in graph.vertices():
        nbrs = graph.neighbors(tid)
        conflicts = " ".join(
            f"T{other}(w{weight})" for other, weight in sorted(nbrs.items())
        )
        tag = f" colour={colors[tid]}" if colors and tid in colors else ""
        lines.append(f"T{tid}{tag}: {conflicts if conflicts else '-'}")
    return "\n".join(lines)


def render_gantt(
    schedule: Schedule, max_width: int = 72, tids: Sequence[int] | None = None
) -> str:
    """Commits over time: one row per transaction, ``#`` at its commit.

    Long schedules are compressed to ``max_width`` columns.
    """
    commits = schedule.commit_times
    chosen = sorted(commits) if tids is None else list(tids)
    horizon = max(commits.values())
    scale = max(1, -(-horizon // max_width))
    lines = [
        f"gantt: {len(chosen)} transactions, makespan {horizon}"
        + (f", {scale} steps/col" if scale > 1 else "")
    ]
    for tid in chosen:
        col = (commits[tid] - 1) // scale
        lines.append(f"T{tid:<4}|" + "." * col + "#")
    return "\n".join(lines)
