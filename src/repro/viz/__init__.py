"""ASCII renderings of the paper's figures and of schedules."""

from .ascii import (
    render_block_graph,
    render_dependency,
    render_cluster,
    render_gantt,
    render_line_blocks,
    render_object_path,
    render_star_rings,
    render_subgrid_order,
)

__all__ = [
    "render_line_blocks",
    "render_subgrid_order",
    "render_object_path",
    "render_cluster",
    "render_star_rings",
    "render_block_graph",
    "render_gantt",
    "render_dependency",
]
