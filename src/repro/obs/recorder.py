"""The Recorder protocol: one sink for every runtime's observations.

Every instrumented entry point takes ``recorder=None`` and resolves it
with :func:`active`: ``None`` becomes the shared :data:`NULL_RECORDER`,
whose ``enabled`` flag is False.  Hot loops guard each emission with
``if rec.enabled:`` so the untraced path pays a single attribute check
per site -- the <5% no-op overhead bound asserted by
``benchmarks/bench_kernels.py``.  Crucially, recording is *passive*:
no recorder may influence control flow, so traced and untraced runs
produce bit-identical schedules and makespans under the same seed
(asserted by the parity tests in ``tests/test_obs.py``).
"""

from __future__ import annotations

import contextlib
from typing import Any, ContextManager, Dict, List, Optional, Protocol, Tuple

from .events import TraceEvent
from .metrics import DEFAULT_BUCKET_EDGES, MetricsRegistry
from .profile import PhaseTimer, PhaseTiming
from .trace import RunTrace

__all__ = ["Recorder", "NullRecorder", "MemoryRecorder", "NULL_RECORDER",
           "active"]


class Recorder(Protocol):
    """What an observability sink must offer.

    ``enabled`` gates every emission; when False the other methods are
    never called on the hot path (and must still be harmless no-ops if
    they are).
    """

    enabled: bool

    def record(self, event: TraceEvent) -> None:
        """Append one typed event to the trace."""

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""

    def observe(
        self, name: str, value: float,
        edges: Tuple[float, ...] = DEFAULT_BUCKET_EDGES,
    ) -> None:
        """Add a sample to histogram ``name``."""

    def phase(self, name: str) -> ContextManager[Any]:
        """Context manager timing one named phase."""


_NULL_CONTEXT = contextlib.nullcontext()


class NullRecorder:
    """The default sink: records nothing, costs (almost) nothing."""

    enabled = False

    def record(self, event: TraceEvent) -> None:
        """Discard the event."""

    def count(self, name: str, amount: int = 1) -> None:
        """Discard the increment."""

    def gauge(self, name: str, value: float) -> None:
        """Discard the measurement."""

    def observe(self, name, value, edges=DEFAULT_BUCKET_EDGES) -> None:
        """Discard the sample."""

    def phase(self, name: str) -> ContextManager[None]:
        """Return a reusable do-nothing context manager."""
        return _NULL_CONTEXT


#: the shared no-op sink every ``recorder=None`` resolves to
NULL_RECORDER = NullRecorder()


def active(recorder: Optional[Recorder]) -> Recorder:
    """Resolve an optional recorder argument to a concrete sink."""
    return NULL_RECORDER if recorder is None else recorder


class MemoryRecorder:
    """An in-memory sink collecting events, metrics, and phase timings.

    ``meta`` tags the eventual :class:`~repro.obs.trace.RunTrace`
    (experiment id, seed, ...).  One recorder may span several runs --
    e.g. a whole experiment sweep -- in which case events from every run
    accumulate in arrival order.
    """

    enabled = True

    def __init__(self, meta: Dict[str, Any] | None = None) -> None:
        self.events: List[TraceEvent] = []
        self.registry = MetricsRegistry()
        self.phases: List[PhaseTiming] = []
        self.meta: Dict[str, Any] = dict(meta or {})

    def record(self, event: TraceEvent) -> None:
        """Append one typed event."""
        self.events.append(event)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.registry.gauge(name).set(value)

    def observe(self, name, value, edges=DEFAULT_BUCKET_EDGES) -> None:
        """Add a sample to histogram ``name``."""
        self.registry.histogram(name, edges).observe(value)

    def phase(self, name: str) -> ContextManager[PhaseTimer]:
        """Time a phase; the finished timing lands in :attr:`phases`."""
        return PhaseTimer(name, self.phases.append)

    def trace(self) -> RunTrace:
        """Freeze everything recorded so far into a :class:`RunTrace`."""
        return RunTrace(
            events=tuple(self.events),
            metrics=self.registry.snapshot(),
            phases=tuple(self.phases),
            meta=dict(self.meta),
        )
