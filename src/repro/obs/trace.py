"""The run-level trace container produced by a recording recorder.

A :class:`RunTrace` bundles the three observability planes of one run:
the typed event stream (:mod:`repro.obs.events`), the metrics snapshot
(:mod:`repro.obs.metrics`), and the phase timings
(:mod:`repro.obs.profile`), plus free-form ``meta`` (experiment id, seed,
...).  Derived views -- event counts by kind, per-edge traffic, the
hottest edge -- are recomputed from the event stream with exactly the
same tie-breaking as :class:`repro.sim.trace.Trace`, so a summarized
exported trace reproduces the engine's own congestion verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .events import CommitEvent, HopEvent, TraceEvent
from .profile import PhaseTiming

__all__ = ["RunTrace"]


@dataclass
class RunTrace:
    """Everything one recording run observed."""

    events: Tuple[TraceEvent, ...] = ()
    metrics: Dict[str, Any] = field(default_factory=dict)
    phases: Tuple[PhaseTiming, ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of events per kind, kinds in sorted order."""
        counts: Dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def edge_traffic(self) -> Dict[Tuple[int, int], int]:
        """Traversal count per undirected edge, from the hop events."""
        traffic: Dict[Tuple[int, int], int] = {}
        for e in self.events:
            if isinstance(e, HopEvent):
                key = (min(e.src, e.dst), max(e.src, e.dst))
                traffic[key] = traffic.get(key, 0) + 1
        return traffic

    @property
    def hottest_edge(self) -> Optional[Tuple[Tuple[int, int], int]]:
        """Most-traversed edge and its traffic (ties broken like
        :attr:`repro.sim.trace.Trace.hottest_edge`), or None."""
        traffic = self.edge_traffic
        if not traffic:
            return None
        edge = max(traffic, key=lambda e: (traffic[e], e))
        return edge, traffic[edge]

    @property
    def commit_times(self) -> Dict[int, int]:
        """tid -> commit step, from the commit events."""
        return {
            e.tid: e.time for e in self.events if isinstance(e, CommitEvent)
        }

    @property
    def makespan(self) -> int:
        """Time of the last observed commit (0 when none)."""
        return max(self.commit_times.values(), default=0)

    def summarize(self) -> str:
        """Multi-line human-readable digest of the trace."""
        counts = self.counts_by_kind()
        lines = []
        if self.meta:
            lines.append(
                "meta: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.meta.items())
                )
            )
        lines.append(
            f"events: {len(self.events)} total"
            + (
                " (" + ", ".join(f"{k}={n}" for k, n in counts.items()) + ")"
                if counts
                else ""
            )
        )
        if self.makespan:
            lines.append(f"makespan: {self.makespan} "
                         f"({len(self.commit_times)} commits)")
        hot = self.hottest_edge
        if hot is not None:
            (u, v), n = hot
            lines.append(f"hottest edge: ({u}, {v}) x {n}")
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append(
                "counters: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(counters.items())
                )
            )
        # aggregate phases by name (a sweep times each phase many times);
        # first-seen order matches the schedule -> route -> execute pipeline
        agg: Dict[str, list] = {}
        for p in self.phases:
            slot = agg.setdefault(p.name, [0, 0.0, 0.0])
            slot[0] += 1
            slot[1] += p.wall_s
            slot[2] += p.cpu_s
        for name, (n, wall, cpu) in agg.items():
            lines.append(
                f"phase {name}: x{n} wall {wall:.4f}s cpu {cpu:.4f}s"
            )
        return "\n".join(lines)
