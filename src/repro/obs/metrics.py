"""Lightweight deterministic metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is the aggregate half of the observability
layer -- where the event stream answers *what happened when*, metrics
answer *how much in total*.  Everything here is deterministic given the
same run: histograms use **fixed bucket edges** (no adaptive resizing, so
the same inputs always land in the same buckets) and snapshots render
names in sorted order, which keeps exported JSON byte-stable under the
unified serializer's ``sort_keys``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = [
    "DEFAULT_BUCKET_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: default histogram bucket upper edges (values > the last edge overflow)
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
)


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins measurement (also tracks the max ever set)."""

    value: float = 0.0
    max_value: float = 0.0
    _set: bool = False

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value
        self.max_value = value if not self._set else max(self.max_value, value)
        self._set = True


@dataclass
class Histogram:
    """A fixed-bucket histogram (deterministic for identical inputs).

    ``edges`` are inclusive upper bounds; a value lands in the first
    bucket whose edge is >= the value, or in the overflow bucket past the
    last edge.  ``counts`` has ``len(edges) + 1`` cells.
    """

    edges: Tuple[float, ...] = DEFAULT_BUCKET_EDGES
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if tuple(sorted(self.edges)) != tuple(self.edges) or not self.edges:
            raise ValueError(f"bucket edges must be sorted and non-empty: "
                             f"{self.edges}")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.n += 1

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0.0 when empty)."""
        return self.total / self.n if self.n else 0.0


class MetricsRegistry:
    """Named counters, gauges, and histograms with a stable snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge()
            return g

    def histogram(
        self, name: str, edges: Tuple[float, ...] = DEFAULT_BUCKET_EDGES
    ) -> Histogram:
        """Get or create the histogram ``name`` (edges fixed at creation)."""
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(edges=edges)
            return h

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of every metric, names in sorted order."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max_value}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.n,
                }
                for name, h in sorted(self._histograms.items())
            },
        }
