"""Plain-data round trips for exported traces.

These are the dict-level halves of trace persistence; the file-level
halves (``save_trace`` / ``load_trace`` / ``save_trace_csv``) live in
:mod:`repro.io.traces` next to the other persistence entry points, so
every byte that reaches disk flows through the unified serializer with
its schema-version field and stable key order.
"""

from __future__ import annotations

import csv
import io as _io
import json
from typing import Any, Dict

from .events import event_from_dict, event_to_dict
from .profile import PhaseTiming
from .trace import RunTrace

__all__ = ["trace_to_dict", "trace_from_dict", "trace_to_csv"]


def trace_to_dict(trace: RunTrace) -> Dict[str, Any]:
    """Plain-data form of a :class:`RunTrace` (JSON-safe)."""
    return {
        "events": [event_to_dict(e) for e in trace.events],
        "metrics": trace.metrics,
        "phases": [
            {"name": p.name, "wall_s": p.wall_s, "cpu_s": p.cpu_s}
            for p in trace.phases
        ],
        "meta": dict(trace.meta),
    }


def trace_from_dict(data: Dict[str, Any]) -> RunTrace:
    """Inverse of :func:`trace_to_dict`.

    Raises :class:`~repro.errors.ReproError` on unknown event kinds.
    """
    return RunTrace(
        events=tuple(event_from_dict(e) for e in data.get("events", [])),
        metrics=dict(data.get("metrics", {})),
        phases=tuple(
            PhaseTiming(p["name"], p["wall_s"], p["cpu_s"])
            for p in data.get("phases", [])
        ),
        meta=dict(data.get("meta", {})),
    )


def trace_to_csv(trace: RunTrace) -> str:
    """Render the event stream as CSV: ``kind,time,detail``.

    ``detail`` is the event's remaining fields as a compact JSON object
    with sorted keys -- greppable, spreadsheet-loadable, stable.
    """
    buf = _io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["kind", "time", "detail"])
    for event in trace.events:
        rec = event_to_dict(event)
        detail = {
            k: v for k, v in rec.items() if k not in ("kind", "time")
        }
        writer.writerow([
            rec["kind"],
            rec["time"],
            json.dumps(detail, sort_keys=True, separators=(",", ":")),
        ])
    return buf.getvalue()
