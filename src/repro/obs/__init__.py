"""Observability: structured tracing, metrics, and profiling hooks.

The paper's guarantees are all about *where time goes* -- colour gaps,
object walks, congestion on hot edges -- and this package gives every
runtime one way to show it.  Three planes, one sink:

* **events** (:mod:`repro.obs.events`): typed records of object hops,
  commits, retries, reroutes, lease recoveries, admission decisions;
* **metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  fixed-bucket histograms, deterministic for identical runs;
* **profiling** (:mod:`repro.obs.profile`): opt-in wall/CPU timers
  around the schedule -> route -> execute phases.

Everything emits through the :class:`Recorder` protocol.  The default
:class:`NullRecorder` (what ``recorder=None`` resolves to) is a no-op
whose overhead is bounded below 5% by ``benchmarks/bench_kernels.py``;
recording never changes behaviour, so traced and untraced runs are
bit-identical in schedule and makespan under the same seed.  Use a
:class:`MemoryRecorder` to capture a :class:`RunTrace` and export it via
:mod:`repro.io` (``save_trace`` / ``load_trace``) or the CLI
(``repro-dtm run e1 --quick --trace-out t.json`` then
``repro-dtm trace summarize t.json``).
"""

from .events import (
    EVENT_TYPES,
    AdmissionEvent,
    CommitEvent,
    CrashEvent,
    DispatchEvent,
    HopEvent,
    LeaseRecoveryEvent,
    LostEvent,
    RerouteEvent,
    RetryEvent,
    SessionDeltaEvent,
    event_from_dict,
    event_to_dict,
)
from .export import trace_from_dict, trace_to_csv, trace_to_dict
from .metrics import (
    DEFAULT_BUCKET_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import PhaseTimer, PhaseTiming, total_wall
from .recorder import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    Recorder,
    active,
)
from .trace import RunTrace

__all__ = [
    "Recorder",
    "NullRecorder",
    "MemoryRecorder",
    "NULL_RECORDER",
    "active",
    "RunTrace",
    "HopEvent",
    "CommitEvent",
    "RetryEvent",
    "RerouteEvent",
    "LeaseRecoveryEvent",
    "AdmissionEvent",
    "DispatchEvent",
    "CrashEvent",
    "LostEvent",
    "SessionDeltaEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKET_EDGES",
    "PhaseTiming",
    "PhaseTimer",
    "total_wall",
    "trace_to_dict",
    "trace_from_dict",
    "trace_to_csv",
]
