"""Opt-in profiling hooks: per-phase wall/CPU timers.

Phases are the coarse stations of a run -- ``schedule`` (the scheduler
thinks), ``route`` (legs become hop plans), ``execute`` (commits are
verified and statistics accumulated) -- plus whatever an experiment adds.
A :class:`PhaseTiming` records both wall-clock and CPU seconds so an
I/O-bound stall is distinguishable from real work.

Timings are *not* deterministic and are deliberately excluded from the
trace-equality guarantees; they ride along in exported traces for humans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List

__all__ = ["PhaseTiming", "PhaseTimer", "total_wall"]


@dataclass(frozen=True)
class PhaseTiming:
    """One completed phase: name plus wall and CPU seconds."""

    name: str
    wall_s: float
    cpu_s: float


class PhaseTimer:
    """Context manager timing one phase and reporting it to a sink.

    ``sink`` receives the finished :class:`PhaseTiming` on exit (also on
    exception -- a crashing phase still reports how long it ran).
    """

    __slots__ = ("name", "_sink", "_wall0", "_cpu0")

    def __init__(self, name: str, sink: Callable[[PhaseTiming], None]) -> None:
        self.name = name
        self._sink = sink
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self._sink(
            PhaseTiming(
                name=self.name,
                wall_s=time.perf_counter() - self._wall0,
                cpu_s=time.process_time() - self._cpu0,
            )
        )


def total_wall(phases: List[PhaseTiming], name: str) -> float:
    """Sum of wall seconds across every timing of phase ``name``."""
    return sum(p.wall_s for p in phases if p.name == name)
