"""Typed trace events: the vocabulary of the observability layer.

Every instrumented runtime (:func:`repro.sim.execute`,
:func:`repro.online.run_online`, :func:`repro.online.run_resilient`,
:func:`repro.faults.faulty_execute`) narrates what it does as a stream of
these records.  Each event is a small frozen dataclass with an integer
simulation ``time`` plus kind-specific fields; the ``kind`` string is the
stable wire name used by the JSON/CSV exporters (:mod:`repro.obs.export`),
so renaming a class never breaks saved traces.

The set is deliberately closed: :data:`EVENT_TYPES` maps every wire kind
to its class, and :func:`event_from_dict` refuses unknown kinds with a
typed :class:`~repro.errors.ReproError` instead of guessing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Tuple, Union

from ..errors import ReproError

__all__ = [
    "HopEvent",
    "CommitEvent",
    "RetryEvent",
    "RerouteEvent",
    "LeaseRecoveryEvent",
    "AdmissionEvent",
    "DispatchEvent",
    "CrashEvent",
    "LostEvent",
    "SessionDeltaEvent",
    "TraceEvent",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
]


@dataclass(frozen=True)
class HopEvent:
    """An object traversed one edge, entering it at ``time``."""

    kind: ClassVar[str] = "hop"
    time: int
    obj: int
    src: int
    dst: int


@dataclass(frozen=True)
class CommitEvent:
    """A transaction committed with all its objects on-node."""

    kind: ClassVar[str] = "commit"
    time: int
    tid: int
    node: int
    objects: Tuple[int, ...]


@dataclass(frozen=True)
class RetryEvent:
    """A blocked move backed off: probe ``attempt`` waits ``wait`` steps."""

    kind: ClassVar[str] = "retry"
    time: int
    obj: int
    node: int
    attempt: int
    wait: int


@dataclass(frozen=True)
class RerouteEvent:
    """An object took a detour because its shortest path was down."""

    kind: ClassVar[str] = "reroute"
    time: int
    obj: int
    src: int
    dst: int


@dataclass(frozen=True)
class LeaseRecoveryEvent:
    """A crashed node's object lease was restored from its durable home.

    ``recovered`` is False when the home itself was dead, i.e. the object
    became unrecoverable.
    """

    kind: ClassVar[str] = "lease_recovery"
    time: int
    obj: int
    node: int
    home: int
    recovered: bool


@dataclass(frozen=True)
class AdmissionEvent:
    """Admission control ruled on a release: admit / defer / shed."""

    kind: ClassVar[str] = "admission"
    time: int
    tid: int
    decision: str
    pending: int


@dataclass(frozen=True)
class DispatchEvent:
    """An idle object was sent toward its highest-priority requester."""

    kind: ClassVar[str] = "dispatch"
    time: int
    obj: int
    src: int
    dst: int
    tid: int


@dataclass(frozen=True)
class CrashEvent:
    """A node's compute plane died (its leases die with it)."""

    kind: ClassVar[str] = "crash"
    time: int
    node: int


@dataclass(frozen=True)
class LostEvent:
    """A transaction became uncommittable and was dropped with a reason."""

    kind: ClassVar[str] = "lost"
    time: int
    tid: int
    reason: str


@dataclass(frozen=True)
class SessionDeltaEvent:
    """A scheduler session applied a delta (submit / commit / abort).

    ``time`` is the session epoch the delta landed in, ``count`` the
    number of transactions in the delta, ``dirty`` how many vertices the
    repair frontier examined, ``repaired`` how many actually changed
    slot, and ``rebuilt`` whether the bounded frontier gave up and fell
    back to a full recolor of the live window.
    """

    kind: ClassVar[str] = "session_delta"
    time: int
    op: str
    count: int
    dirty: int
    repaired: int
    rebuilt: bool


TraceEvent = Union[
    HopEvent,
    CommitEvent,
    RetryEvent,
    RerouteEvent,
    LeaseRecoveryEvent,
    AdmissionEvent,
    DispatchEvent,
    CrashEvent,
    LostEvent,
    SessionDeltaEvent,
]

#: wire kind -> event class (the closed vocabulary)
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        HopEvent,
        CommitEvent,
        RetryEvent,
        RerouteEvent,
        LeaseRecoveryEvent,
        AdmissionEvent,
        DispatchEvent,
        CrashEvent,
        LostEvent,
        SessionDeltaEvent,
    )
}


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """Plain-data form of an event (tuples become lists, JSON-safe)."""
    rec: Dict[str, Any] = {"kind": event.kind}
    for f in dataclasses.fields(event):
        value = getattr(event, f.name)
        if isinstance(value, tuple):
            value = list(value)
        rec[f.name] = value
    return rec


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`.

    Raises :class:`~repro.errors.ReproError` on an unknown event kind.
    """
    kind = data.get("kind")
    try:
        cls = EVENT_TYPES[kind]
    except KeyError:
        raise ReproError(
            f"unknown trace event kind {kind!r}; expected one of "
            f"{sorted(EVENT_TYPES)}"
        ) from None
    fields = {}
    for f in dataclasses.fields(cls):
        value = data[f.name]
        if isinstance(value, list):
            value = tuple(value)
        fields[f.name] = value
    return cls(**fields)
