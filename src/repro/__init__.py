"""repro: Fast Scheduling in Distributed Transactional Memory (SPAA 2017).

A from-scratch reproduction of Busch, Herlihy, Popovic & Sharma's offline
transaction schedulers for the data-flow model of distributed transactional
memory, including:

* the weighted-graph network substrate and all topologies the paper
  studies (:mod:`repro.network`);
* the problem model, greedy colouring engine, and one scheduler per
  topology family (:mod:`repro.core`);
* a synchronous hop-level execution engine (:mod:`repro.sim`);
* certified lower bounds and the §8 hard instances (:mod:`repro.bounds`);
* baselines, workload generators, and the experiment suite
  (:mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.experiments`).

Quickstart::

    import repro

    net = repro.network.clique(64)
    rng = repro.workloads.root_rng(7)
    inst = repro.workloads.random_k_subsets(net, w=16, k=2, rng=rng)
    sched = repro.schedule(inst, rng=rng)  # algo="auto", kernel="auto"
    sched.validate()
    print(sched.makespan, repro.bounds.makespan_lower_bound(inst))
"""

from . import (
    analysis,
    baselines,
    bounds,
    cluster,
    controlflow,
    core,
    faults,
    io,
    network,
    online,
    replication,
    service,
    sim,
    staticcheck,
    viz,
    workloads,
)
from .errors import ClusterError, FaultError, RecoveryError, ReproError
from .placement import median_node, optimize_homes
from .core import (
    SCHEDULER_INFO,
    Instance,
    Schedule,
    SchedulerInfo,
    SchedulerSession,
    Transaction,
    available_schedulers,
    get_scheduler,
    open_session,
    resolve_scheduler,
    schedule_instance,
    scheduler_for,
)
from .core.dispatch import schedule
from .network import TOPOLOGY_INFO, TopologyInfo, make_network

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "baselines",
    "bounds",
    "cluster",
    "controlflow",
    "core",
    "faults",
    "io",
    "network",
    "online",
    "replication",
    "service",
    "sim",
    "staticcheck",
    "viz",
    "workloads",
    "ReproError",
    "FaultError",
    "RecoveryError",
    "ClusterError",
    "Transaction",
    "Instance",
    "Schedule",
    "optimize_homes",
    "median_node",
    "schedule",
    "open_session",
    "SchedulerSession",
    "resolve_scheduler",
    "SchedulerInfo",
    "SCHEDULER_INFO",
    "TopologyInfo",
    "TOPOLOGY_INFO",
    "make_network",
    "schedule_instance",
    "scheduler_for",
    "get_scheduler",
    "available_schedulers",
    "__version__",
]
