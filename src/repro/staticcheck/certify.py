"""Schedule certificates: prove validity claims without executing.

The runtime path checks a schedule by replaying it (``sim.execute``,
the sanitizer); this module proves the same §2 invariants *statically*,
from the commit-time assignment alone:

* **coverage** -- every transaction has a commit time >= 1;
* **single copy** -- no object is required at two distinct nodes in the
  same step (§2.1, the single-copy data-flow model);
* **itinerary feasibility** -- every itinerary leg spans at least the
  shortest-path distance (Definition 1);
* **conflict separation** -- for every edge of the dependency graph
  ``H``, the commit times differ by at least the edge weight (the §2.3
  greedy-colouring invariant);
* **theorem bound** -- the claimed scheduler's makespan guarantee holds
  (clique ``k*ell + 1``, diameter ``k*ell*d + 1`` -- each plus the
  positioning offset for arbitrary homes -- line ``4*ell``; the w.h.p.
  grid/cluster/star factors from ``SCHEDULER_INFO`` are recorded with
  the measured ratio but not enforced, as they only hold with high
  probability; the sharded family likewise records its measured factor
  together with the intra/cross phase makespans).

The result is a signed-off :class:`Certificate` -- a plain dict with a
SHA-256 signature over its canonical JSON -- that ``repro validate``
persists next to the schedule and any reviewer can re-verify offline
(:func:`verify_certificate`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from ..bounds import makespan_lower_bound
from ..core.dependency import DependencyGraph
from ..core.dispatch import SCHEDULER_INFO
from ..core.greedy import CliqueScheduler, DiameterScheduler
from ..core.line import LineScheduler
from ..core.schedule import Schedule
from ..errors import CertificationError

__all__ = [
    "CheckResult",
    "Certificate",
    "certify_schedule",
    "verify_certificate",
    "certificate_to_dict",
    "certificate_from_dict",
]

#: order in which checks run and appear in the certificate
CHECK_NAMES: Tuple[str, ...] = (
    "coverage",
    "single_copy",
    "itinerary_feasibility",
    "conflict_separation",
    "theorem_bound",
)


@dataclass(frozen=True)
class CheckResult:
    """Verdict of one certificate check."""

    name: str
    passed: bool
    detail: str

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form."""
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass(frozen=True)
class Certificate:
    """Signed static-validity certificate for one schedule.

    ``signature`` is the SHA-256 hex digest of the canonical JSON of
    every other field, so any mutation of the certificate body (or a
    hand-edited check verdict) is detectable offline.
    """

    topology: str
    scheduler: str
    transactions: int
    makespan: int
    lower_bound: int
    checks: Tuple[CheckResult, ...]
    signature: str

    @property
    def ok(self) -> bool:
        """True iff every check passed."""
        return all(c.passed for c in self.checks)

    def failures(self) -> Tuple[str, ...]:
        """Names of the checks that failed, in check order."""
        return tuple(c.name for c in self.checks if not c.passed)

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (the persisted certificate body)."""
        return {
            "topology": self.topology,
            "scheduler": self.scheduler,
            "transactions": self.transactions,
            "makespan": self.makespan,
            "lower_bound": self.lower_bound,
            "ok": self.ok,
            "checks": [c.as_dict() for c in self.checks],
            "signature": self.signature,
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        head = (
            f"certificate: {'OK' if self.ok else 'REJECTED'} "
            f"({self.scheduler} on {self.topology}, m={self.transactions}, "
            f"makespan {self.makespan}, lower bound {self.lower_bound})"
        )
        lines = [head]
        for c in self.checks:
            mark = "pass" if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name}: {c.detail}")
        lines.append(f"  signature {self.signature[:16]}...")
        return "\n".join(lines)


def _sign(body: Dict[str, Any]) -> str:
    """Canonical-JSON SHA-256 of a certificate body (sans signature)."""
    unsigned = {k: v for k, v in body.items() if k != "signature"}
    blob = json.dumps(unsigned, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def certificate_to_dict(cert: Certificate) -> Dict[str, object]:
    """Plain-data form of a certificate (for the io envelope)."""
    return cert.as_dict()


def certificate_from_dict(data: Mapping[str, Any]) -> Certificate:
    """Inverse of :func:`certificate_to_dict` (signature preserved, not checked).

    Use :func:`verify_certificate` to check the signature of a loaded
    certificate.
    """
    checks = tuple(
        CheckResult(
            name=str(c["name"]),
            passed=bool(c["passed"]),
            detail=str(c["detail"]),
        )
        for c in data["checks"]
    )
    return Certificate(
        topology=str(data["topology"]),
        scheduler=str(data["scheduler"]),
        transactions=int(data["transactions"]),
        makespan=int(data["makespan"]),
        lower_bound=int(data["lower_bound"]),
        checks=checks,
        signature=str(data["signature"]),
    )


def verify_certificate(data: Mapping[str, Any] | Certificate) -> bool:
    """True iff the certificate's signature matches its body."""
    body = data.as_dict() if isinstance(data, Certificate) else dict(data)
    return _sign(body) == body.get("signature")


# ---------------------------------------------------------------------- #
# checks
# ---------------------------------------------------------------------- #


def _check_coverage(schedule: Schedule) -> CheckResult:
    missing = [
        t.tid
        for t in schedule.instance.transactions
        if t.tid not in schedule.commit_times
    ]
    bad = sorted(
        tid for tid, ct in schedule.commit_times.items() if ct < 1
    )
    if missing or bad:
        return CheckResult(
            "coverage", False,
            f"missing commit times {missing[:5]}, non-positive {bad[:5]}",
        )
    return CheckResult(
        "coverage", True,
        f"all {len(schedule.commit_times)} transactions commit at t >= 1",
    )


def _check_single_copy(schedule: Schedule) -> CheckResult:
    for obj, visits in schedule.itineraries():
        for a, b in zip(visits, visits[1:]):
            if b.time == a.time and b.node != a.node:
                return CheckResult(
                    "single_copy", False,
                    f"object {obj} required at nodes {a.node} and {b.node} "
                    f"simultaneously at t={a.time}",
                )
    return CheckResult(
        "single_copy", True,
        "no object is required at two nodes in the same step",
    )


def _check_itineraries(schedule: Schedule) -> CheckResult:
    dist = schedule.instance.network.dist
    worst_slack = None
    for obj, visits in schedule.itineraries():
        for a, b in zip(visits, visits[1:]):
            gap = b.time - a.time
            need = dist(a.node, b.node)
            if gap < need:
                return CheckResult(
                    "itinerary_feasibility", False,
                    f"object {obj}: leg (t={a.time}, node {a.node}) -> "
                    f"(t={b.time}, node {b.node}) allows {gap} steps but "
                    f"needs {need}",
                )
            slack = gap - need
            if worst_slack is None or slack < worst_slack:
                worst_slack = slack
    return CheckResult(
        "itinerary_feasibility", True,
        f"every leg covers its shortest-path distance "
        f"(tightest slack {0 if worst_slack is None else worst_slack})",
    )


def _check_conflict_separation(
    schedule: Schedule, graph: DependencyGraph
) -> CheckResult:
    commit = schedule.commit_times
    edges = 0
    for tid in graph.vertices():
        for nbr, weight in sorted(graph.neighbors(tid).items()):
            if nbr < tid:
                continue  # each undirected edge once
            edges += 1
            sep = abs(commit[tid] - commit[nbr])
            if sep < weight:
                return CheckResult(
                    "conflict_separation", False,
                    f"transactions {tid} and {nbr} commit {sep} apart but "
                    f"their conflict edge weighs {weight}",
                )
    return CheckResult(
        "conflict_separation", True,
        f"all {edges} dependency edges separated by >= their weight "
        f"(h_max={graph.h_max}, Delta={graph.max_degree})",
    )


def _positioning_slack(schedule: Schedule) -> int:
    """Safe upper bound on the scheduler's positioning offset.

    The greedy family shifts commits by ``max_o (dist(home, first) -
    colour_first)``; with colours >= 1 this is at most
    ``max_o (dist(home, first) - 1)``, computable from the schedule
    alone when the scheduler's recorded ``meta['offset']`` is absent.
    """
    inst = schedule.instance
    dist = inst.network.dist
    slack = 0
    for obj in inst.objects:
        users = inst.users(obj)
        if not users:
            continue
        first = min(users, key=lambda t: (schedule.commit_times[t.tid], t.tid))
        slack = max(slack, dist(inst.home(obj), first.node) - 1)
    return slack


def _check_theorem_bound(
    schedule: Schedule, lower_bound: int
) -> CheckResult:
    inst = schedule.instance
    name = str(schedule.meta.get("scheduler", ""))
    # Incrementally-maintained schedules carry the same guarantee as the
    # base greedy-family scheduler they converge to (the session repair
    # fixpoint equals the batch colouring): certify under the base name.
    if name == "incremental":
        name = "greedy"
    elif name.startswith("incremental-"):
        name = name[len("incremental-"):]
    makespan = schedule.makespan
    offset_meta = schedule.meta.get("offset")
    offset = (
        int(offset_meta)
        if isinstance(offset_meta, int)
        else _positioning_slack(schedule)
    )

    if name in ("clique", "diameter", "greedy"):
        if name == "clique":
            bound = CliqueScheduler.theorem_bound(inst)
            label = "Thm 1 (k*ell + 1)"
        elif name == "diameter":
            bound = DiameterScheduler.theorem_bound(inst)
            label = "§3.1 (k*ell*d + 1)"
        else:
            bound = DependencyGraph.build(inst).weighted_degree + 1
            label = "§2.3 (Gamma + 1)"
        limit = bound + offset
        return CheckResult(
            "theorem_bound", makespan <= limit,
            f"{label}: makespan {makespan} vs bound {bound} + offset "
            f"{offset} = {limit}",
        )
    if name == "line":
        bound = LineScheduler.theorem_bound(inst)
        return CheckResult(
            "theorem_bound", makespan <= bound,
            f"Thm 2 (4*ell): makespan {makespan} vs bound {bound}",
        )
    if name in ("grid", "cluster", "star"):
        info = SCHEDULER_INFO[name]
        ratio = makespan / lower_bound if lower_bound else float(makespan)
        return CheckResult(
            "theorem_bound", True,
            f"{info.bound}: measured factor {ratio:.2f} recorded "
            f"(w.h.p. bound, not enforced)",
        )
    if name in ("sharded", "sharded-cluster"):
        info = SCHEDULER_INFO[name]
        ratio = makespan / lower_bound if lower_bound else float(makespan)
        intra = schedule.meta.get("intra_makespan", "?")
        cross = schedule.meta.get("cross_makespan", "?")
        return CheckResult(
            "theorem_bound", True,
            f"{info.bound}: measured factor {ratio:.2f} recorded "
            f"(intra phase {intra} + cross phase {cross}; "
            f"phase composition, not enforced)",
        )
    return CheckResult(
        "theorem_bound", True,
        f"scheduler {name or '<unknown>'} claims no theorem bound",
    )


# ---------------------------------------------------------------------- #
# entry point
# ---------------------------------------------------------------------- #


def certify_schedule(
    schedule: Schedule,
    *,
    strict: bool = True,
    kernel: str = "auto",
) -> Certificate:
    """Statically certify ``schedule`` (no execution, no randomness).

    Runs every check in :data:`CHECK_NAMES` and returns the signed
    :class:`Certificate`.  With ``strict`` (the default) a failing check
    raises :class:`~repro.errors.CertificationError` naming the failed
    checks; ``strict=False`` returns the certificate with ``ok=False``
    so callers can inspect or persist the rejection.  ``kernel`` selects
    the dependency-graph construction path (both build the same graph).
    """
    inst = schedule.instance
    graph = DependencyGraph.build(inst, kernel=kernel)
    lower = makespan_lower_bound(inst)
    checks: List[CheckResult] = [
        _check_coverage(schedule),
        _check_single_copy(schedule),
        _check_itineraries(schedule),
        _check_conflict_separation(schedule, graph),
        _check_theorem_bound(schedule, lower),
    ]
    body: Dict[str, Any] = {
        "topology": inst.network.topology.name,
        "scheduler": str(schedule.meta.get("scheduler", "")),
        "transactions": inst.m,
        "makespan": schedule.makespan,
        "lower_bound": lower,
        "ok": all(c.passed for c in checks),
        "checks": [c.as_dict() for c in checks],
    }
    cert = Certificate(
        topology=str(body["topology"]),
        scheduler=str(body["scheduler"]),
        transactions=inst.m,
        makespan=schedule.makespan,
        lower_bound=lower,
        checks=tuple(checks),
        signature=_sign(body),
    )
    if strict and not cert.ok:
        failed = cert.failures()
        details = "; ".join(
            c.detail for c in cert.checks if not c.passed
        )
        raise CertificationError(
            f"schedule failed static certification "
            f"({', '.join(failed)}): {details}",
            failures=failed,
        )
    return cert
