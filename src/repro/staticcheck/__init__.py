"""Static analysis: determinism lint, schedule certificates, typing gate.

Three layers, all runnable without executing a single schedule:

* **Determinism lint** (:mod:`~repro.staticcheck.engine`,
  :mod:`~repro.staticcheck.rules`) -- pluggable AST passes over the
  source tree that flag nondeterminism hazards (unseeded RNGs,
  wall-clock reads in the engines, unsorted set iteration, mutable
  defaults), fork-pool races, and ``__all__`` drift.  CLI:
  ``repro lint [--json] [--select RULE,...]``.
* **Schedule certificates** (:mod:`~repro.staticcheck.certify`) --
  prove a :class:`~repro.core.schedule.Schedule` respects the paper's
  §2 invariants (single copy, conflict separation, itinerary
  feasibility, theorem bounds) and emit a signed certificate dict that
  ``repro validate`` persists.
* **Typing gate** (:mod:`~repro.staticcheck.gate`) -- ``mypy --strict``
  and ``ruff`` wiring for CI; skipped gracefully where the tools are
  not installed.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, suppression
syntax, and the certificate format.
"""

from .certify import (
    Certificate,
    CheckResult,
    certificate_from_dict,
    certificate_to_dict,
    certify_schedule,
    verify_certificate,
)
from .engine import LintReport, iter_source_files, lint_source, run_lint
from .gate import GateStep, run_typing_gate, typing_gate_targets
from .model import Finding, ParsedModule, Rule, parse_module
from .rules import DEFAULT_RULES, rule_catalog

__all__ = [
    "Finding",
    "ParsedModule",
    "Rule",
    "parse_module",
    "DEFAULT_RULES",
    "rule_catalog",
    "LintReport",
    "run_lint",
    "lint_source",
    "iter_source_files",
    "Certificate",
    "CheckResult",
    "certify_schedule",
    "verify_certificate",
    "certificate_to_dict",
    "certificate_from_dict",
    "GateStep",
    "run_typing_gate",
    "typing_gate_targets",
]
