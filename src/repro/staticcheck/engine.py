"""The lint engine: walk sources, run rules, merge findings.

:func:`run_lint` is the programmatic entry point behind ``repro lint``:
it expands the given paths to ``.py`` files, parses each once, runs
every (selected) rule over the shared AST, honours suppression comments,
and returns an immutable :class:`LintReport`.  A file that fails to
parse contributes a single ``PARSE000`` finding instead of aborting the
run, so one broken file cannot hide findings elsewhere.

Determinism contract: files are visited in sorted path order and
findings are reported sorted by ``(path, line, col, rule)``, so the
report is byte-stable for a given tree -- it can be diffed, cached, and
asserted on in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import LintError
from .model import Finding, Rule, parse_module
from .rules import DEFAULT_RULES

__all__ = ["LintReport", "run_lint", "lint_source", "iter_source_files"]

#: pseudo-rule id for files the parser rejects
PARSE_RULE = "PARSE000"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    rules_run: Tuple[str, ...]
    suppressed: int

    @property
    def ok(self) -> bool:
        """True iff the run produced no findings."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """``rule id -> number of findings`` (only rules that fired)."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for the versioned JSON envelope."""
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "counts_by_rule": self.counts_by_rule(),
            "findings": [f.as_dict() for f in self.findings],
        }

    def render(self) -> str:
        """Human-readable multi-line report (grep-able, hint per finding)."""
        if self.ok:
            return (
                f"OK: {self.files_scanned} files clean "
                f"({len(self.rules_run)} rules, {self.suppressed} suppressed)"
            )
        lines = [f.render() + f"\n    hint: {f.fix_hint}" for f in self.findings]
        counts = ", ".join(
            f"{rule} x{n}" for rule, n in self.counts_by_rule().items()
        )
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_scanned} "
            f"files ({counts}; {self.suppressed} suppressed)"
        )
        return "\n".join(lines)


def iter_source_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories to ``.py`` files, sorted, caches skipped."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub
        elif path.is_file():
            yield path
        else:
            raise LintError(f"lint path {path} does not exist")


def _select_rules(select: Optional[Sequence[str]]) -> Tuple[Rule, ...]:
    if select is None:
        return DEFAULT_RULES
    known = {r.rule_id: r for r in DEFAULT_RULES}
    chosen: List[Rule] = []
    for rule_id in select:
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        if rule_id not in known:
            raise LintError(
                f"unknown rule id {rule_id!r}; known rules: "
                f"{', '.join(sorted(known))}"
            )
        chosen.append(known[rule_id])
    if not chosen:
        raise LintError("rule selection is empty")
    return tuple(chosen)


def _lint_one(
    source: str, path: str, rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    try:
        module = parse_module(source, path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    rule=PARSE_RULE,
                    severity="error",
                    path=path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    fix_hint="fix the syntax error; no rules ran on this file",
                )
            ],
            0,
        )
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies(module):
            continue
        for finding in rule.visit(module):
            if module.suppressed(finding.rule, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_source(
    source: str,
    path: str = "<memory>",
    select: Optional[Sequence[str]] = None,
) -> Tuple[Finding, ...]:
    """Lint one in-memory source string (unit-test / tooling helper).

    ``path`` participates in directory scoping, so passing e.g.
    ``"sim/engine.py"`` exercises the engine-scoped rules.
    """
    findings, _ = _lint_one(source, path, _select_rules(select))
    return tuple(sorted(findings, key=lambda f: (f.line, f.col, f.rule)))


def run_lint(
    paths: Sequence[str | Path],
    select: Optional[Sequence[str]] = None,
    root: Optional[str | Path] = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and merge the findings.

    ``select`` restricts the run to the listed rule ids (raises
    :class:`~repro.errors.LintError` on an unknown id); ``root`` makes
    reported paths relative to the given directory for stable output.
    """
    rules = _select_rules(select)
    all_findings: List[Finding] = []
    suppressed_total = 0
    files = 0
    root_path = Path(root) if root is not None else None
    for file_path in iter_source_files(paths):
        files += 1
        shown = file_path
        if root_path is not None:
            try:
                shown = file_path.relative_to(root_path)
            except ValueError:
                shown = file_path
        try:
            source = file_path.read_text()
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        findings, suppressed = _lint_one(source, str(shown), rules)
        all_findings.extend(findings)
        suppressed_total += suppressed
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=tuple(all_findings),
        files_scanned=files,
        rules_run=tuple(r.rule_id for r in rules),
        suppressed=suppressed_total,
    )
