"""Data model of the static analyser: rules, findings, parsed modules.

A :class:`Rule` is one pluggable AST pass with a stable id (``DET001``,
``PROC001``, ...), a severity, and a fix hint; it inspects a
:class:`ParsedModule` and yields :class:`Finding` records.  Findings are
plain data so the engine can render them as text or wrap them in the
repo's standard JSON envelope unchanged.

Suppressions are source comments, checked per finding:

* ``# staticcheck: ignore[DET001]`` -- silence the listed rule ids on
  that line (``ALL`` silences every rule);
* ``# staticcheck: ignore-file[DET003]`` -- silence the listed rule ids
  for the whole module, wherever the comment appears.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, Tuple

__all__ = ["Severity", "Finding", "ParsedModule", "Rule", "parse_module"]

#: allowed severities, mildest last
Severity = str
SEVERITIES: Tuple[Severity, ...] = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?P<scope>-file)?\["
    r"(?P<ids>[A-Z0-9_,\s]+)\]"
)


@dataclass(frozen=True)
class Finding:
    """One lint hit: a rule fired at a specific source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix_hint: str

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for JSON envelopes and tables."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def render(self) -> str:
        """``path:line:col: RULE message`` -- one grep-able line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass(frozen=True)
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: str
    tree: ast.Module
    source: str
    line_suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_suppressions: FrozenSet[str] = frozenset()

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by directory-scoped rules."""
        return Path(self.path).parts

    def suppressed(self, rule: str, line: int) -> bool:
        """True iff ``rule`` is silenced at ``line`` (or module-wide)."""
        for ids in (self.file_suppressions, self.line_suppressions.get(line)):
            if ids and (rule in ids or "ALL" in ids):
                return True
        return False


def _suppressions(source: str) -> tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    per_line: Dict[int, FrozenSet[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        ids = frozenset(
            token.strip() for token in m.group("ids").split(",") if token.strip()
        )
        if m.group("scope"):
            whole_file |= ids
        else:
            per_line[lineno] = ids
    return per_line, frozenset(whole_file)


def parse_module(source: str, path: str) -> ParsedModule:
    """Parse ``source`` into the shared per-file analysis input.

    Raises :class:`SyntaxError` on unparseable source; the engine turns
    that into a ``PARSE000`` finding rather than aborting the whole run.
    """
    tree = ast.parse(source, filename=path)
    per_line, whole_file = _suppressions(source)
    return ParsedModule(
        path=path,
        tree=tree,
        source=source,
        line_suppressions=per_line,
        file_suppressions=whole_file,
    )


class Rule:
    """Base class for one static-analysis pass.

    Subclasses set the class attributes and implement :meth:`visit`;
    :meth:`applies` lets directory-scoped rules (e.g. the wall-clock
    rule, which only patrols the deterministic engines) opt out of
    irrelevant files cheaply.
    """

    #: stable identifier, e.g. ``DET001``; used in reports and ``--select``
    rule_id: str = "RULE000"
    #: ``error`` or ``warning``
    severity: Severity = "error"
    #: one-line description for the catalogue
    title: str = ""
    #: how to fix a finding, shown verbatim in reports
    fix_hint: str = ""
    #: directory names this rule is scoped to (empty = everywhere)
    scope_dirs: FrozenSet[str] = frozenset()

    def applies(self, module: ParsedModule) -> bool:
        """True iff this rule should inspect ``module``."""
        if not self.scope_dirs:
            return True
        return any(part in self.scope_dirs for part in module.parts[:-1])

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every finding in ``module``; subclasses implement."""
        raise NotImplementedError

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=self.fix_hint,
        )
