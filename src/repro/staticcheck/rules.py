"""The built-in rule catalogue: determinism, process-safety, API drift.

Every rule here guards an assumption the repo's correctness story leans
on.  The engines are bit-deterministic (same seed, same trace), the
sweep runner forks workers that must not share mutable module state, and
the public API surface is enumerated by ``__all__`` -- all properties
that runtime tests only check along executed paths.  These passes prove
them over the whole tree at review time.

Rule ids are stable wire names (``repro lint --select DET001,EXP001``):

========  ========================================================
DET001    unseeded RNG construction / global-state RNG call
DET002    wall-clock read inside a deterministic engine
DET003    unsorted set iteration feeding ordered output
DET004    mutable default argument
PROC001   module-level mutable state mutated in a fork-pool module
EXP001    ``__all__`` export drift (dangling or duplicate entries)
========  ========================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .model import Finding, ParsedModule, Rule

__all__ = ["DEFAULT_RULES", "rule_catalog"]


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chain as a name tuple, or None if not a chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _has_seed(call: ast.Call) -> bool:
    return bool(call.args) or any(kw.arg == "seed" for kw in call.keywords)


class UnseededRngRule(Rule):
    """DET001: every RNG must be constructed from an explicit seed.

    Flags ``np.random.default_rng()`` / ``random.Random()`` with no seed
    and any call into the *global* RNG state (``np.random.shuffle``,
    ``random.random``, ``np.random.seed``, ...).  Global state makes the
    result depend on import order and prior calls -- the exact
    nondeterminism the parity tests exist to rule out.
    """

    rule_id = "DET001"
    severity = "error"
    title = "unseeded or global-state RNG"
    fix_hint = (
        "construct np.random.default_rng(seed) from an explicit seed "
        "(workloads.root_rng) and thread the Generator through"
    )

    _NP_ROOTS = frozenset({"np", "numpy"})
    _GLOBAL_FNS = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "ranf", "shuffle", "choice", "permutation", "uniform",
            "randrange", "sample", "getrandbits",
        }
    )

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None:
                continue
            if chain[-1] == "default_rng" and not _has_seed(node):
                yield self.finding(
                    module, node, "np.random.default_rng() constructed "
                    "without a seed"
                )
            elif chain[-1] == "Random" and len(chain) >= 2 \
                    and chain[0] == "random" and not _has_seed(node):
                yield self.finding(
                    module, node, "random.Random() constructed without a seed"
                )
            elif (
                len(chain) == 3
                and chain[0] in self._NP_ROOTS
                and chain[1] == "random"
                and chain[2] in self._GLOBAL_FNS
            ):
                yield self.finding(
                    module, node,
                    f"call to global-state numpy RNG np.random.{chain[2]}()",
                )
            elif (
                len(chain) == 2
                and chain[0] == "random"
                and chain[1] in self._GLOBAL_FNS
            ):
                yield self.finding(
                    module, node,
                    f"call to global-state stdlib RNG random.{chain[1]}()",
                )


class WallClockRule(Rule):
    """DET002: deterministic engines must not read the wall clock.

    Scoped to the engine packages (``sim/``, ``core/``, ``online/``,
    ``faults/``), whose outputs are compared bit-for-bit across kernels
    and replays.  ``time.perf_counter`` is allowed -- the observability
    layer uses it for timings that are explicitly excluded from parity.
    """

    rule_id = "DET002"
    severity = "error"
    title = "wall-clock read in a deterministic engine"
    fix_hint = (
        "derive logical time from the simulation step counter; move "
        "profiling to repro.obs (PhaseTimer), which is parity-excluded"
    )
    scope_dirs = frozenset({"sim", "core", "online", "faults"})

    _CLOCK_CALLS = frozenset({"time", "time_ns"})
    _DATE_CALLS = frozenset({"now", "utcnow", "today"})

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted(node.func)
            if chain is None or len(chain) < 2:
                continue
            if chain[0] == "time" and chain[-1] in self._CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock read time.{chain[-1]}() inside a "
                    "deterministic engine",
                )
            elif chain[-1] in self._DATE_CALLS and any(
                part in ("datetime", "date") for part in chain[:-1]
            ):
                yield self.finding(
                    module, node,
                    f"wall-clock read {'.'.join(chain)}() inside a "
                    "deterministic engine",
                )


class UnsortedSetIterationRule(Rule):
    """DET003: iterating a set into ordered output needs ``sorted``.

    Set iteration order depends on element hashes and insertion history,
    so a ``for`` loop (or list/dict comprehension) over a set expression
    can reorder results between runs or Python builds.  Wrapping the
    iterable in ``sorted(...)`` fixes the order; iteration that feeds an
    order-free consumer (``sum``, ``min``, another ``set``, ...) and set
    comprehensions are exempt.
    """

    rule_id = "DET003"
    severity = "error"
    title = "unsorted set iteration feeding ordered output"
    fix_hint = "wrap the iterable in sorted(...) to pin the order"

    _SET_BUILTINS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference"}
    )
    _ORDER_FREE = frozenset(
        {"sorted", "set", "frozenset", "sum", "len", "min", "max",
         "any", "all"}
    )

    def _is_setlike(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in self._SET_BUILTINS:
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self._SET_METHODS:
                return self._is_setlike(node.func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_setlike(node.left) or self._is_setlike(node.right)
        return False

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and self._is_setlike(node.iter):
                yield self.finding(
                    module, node.iter,
                    "for-loop iterates a set in hash order",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if not any(self._is_setlike(g.iter) for g in node.generators):
                    continue
                parent = parents.get(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in self._ORDER_FREE
                    and node in parent.args
                ):
                    continue  # result is order-free; iteration order moot
                yield self.finding(
                    module, node,
                    "comprehension iterates a set in hash order into "
                    "ordered output",
                )


class MutableDefaultRule(Rule):
    """DET004: default argument values must be immutable.

    A mutable default is evaluated once at ``def`` time and shared by
    every call, so state leaks between invocations -- and between the
    parity runs the determinism tests compare.
    """

    rule_id = "DET004"
    severity = "error"
    title = "mutable default argument"
    fix_hint = "default to None and construct the container in the body"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})
    _MUTABLE_TYPES = frozenset({"defaultdict", "OrderedDict", "Counter", "deque"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain and (
                chain[-1] in self._MUTABLE_TYPES
                or (len(chain) == 1 and chain[0] in self._MUTABLE_CALLS)
            ):
                return True
        return False

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            name = getattr(node, "name", "<lambda>")
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {name}()",
                    )


class SharedMutableStateRule(Rule):
    """PROC001: fork-pool workers must not mutate module-level state.

    Scoped to modules that import ``multiprocessing`` or
    ``concurrent.futures``.  A forked worker that appends to a
    module-level list (or rebinds a global) mutates its *copy*; the
    parent never sees the write, so results silently depend on which
    process ran the code -- the race class the sweep runner's
    worker-count-invariance contract forbids.
    """

    rule_id = "PROC001"
    severity = "error"
    title = "module-level mutable state mutated in a fork-pool module"
    fix_hint = (
        "return results from the worker and merge in the parent "
        "(see experiments/sweep.py's enveloped shard results)"
    )

    _MUTATORS = frozenset(
        {"append", "extend", "add", "update", "insert", "remove",
         "discard", "pop", "popitem", "clear", "setdefault"}
    )

    def _forks(self, tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(
                    a.name.split(".")[0] in ("multiprocessing", "concurrent")
                    for a in node.names
                ):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in (
                    "multiprocessing", "concurrent",
                ):
                    return True
        return False

    def _module_mutables(self, tree: ast.Module) -> Set[str]:
        mutable: Set[str] = set()
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            if isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "dict", "set", "defaultdict",
                                      "deque", "Counter")
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutable.add(target.id)
        return mutable

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        if not self._forks(module.tree):
            return
        module_names = {
            t.id
            for stmt in module.tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
            for t in (stmt.targets if isinstance(stmt, ast.Assign)
                      else [stmt.target])
            if isinstance(t, ast.Name)
        }
        mutables = self._module_mutables(module.tree)
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    rebound = sorted(set(node.names) & module_names)
                    for name in rebound:
                        yield self.finding(
                            module, node,
                            f"worker function {fn.name}() rebinds "
                            f"module-level name {name!r} via `global`",
                        )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._MUTATORS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in mutables
                ):
                    yield self.finding(
                        module, node,
                        f"worker function {fn.name}() mutates module-level "
                        f"{node.func.value.id!r}.{node.func.attr}()",
                    )
                elif (
                    isinstance(node, (ast.Assign, ast.AugAssign))
                    and any(
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in mutables
                        for t in (node.targets
                                  if isinstance(node, ast.Assign)
                                  else [node.target])
                    )
                ):
                    yield self.finding(
                        module, node,
                        f"worker function {fn.name}() assigns into "
                        "module-level mutable state",
                    )


class ExportDriftRule(Rule):
    """EXP001: every ``__all__`` entry must resolve; no duplicates.

    A dangling export (``__all__`` naming a symbol the module never
    binds) breaks ``from pkg import *`` and the API-hygiene contract;
    duplicates usually indicate a botched merge.  Modules using
    ``import *`` themselves are skipped -- their bindings cannot be
    resolved statically.
    """

    rule_id = "EXP001"
    severity = "error"
    title = "__all__ export drift"
    fix_hint = "define/import the symbol or drop it from __all__"

    def _bound_names(self, body: List[ast.stmt]) -> tuple[Set[str], bool]:
        bound: Set[str] = set()
        star = False

        def bind_target(target: ast.expr) -> None:
            if isinstance(target, ast.Name):
                bound.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    bind_target(elt)
            elif isinstance(target, ast.Starred):
                bind_target(target.value)

        def walk(stmts: List[ast.stmt]) -> None:
            nonlocal star
            for stmt in stmts:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        bind_target(target)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    bind_target(stmt.target)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(stmt, ast.ImportFrom):
                    for alias in stmt.names:
                        if alias.name == "*":
                            star = True
                        else:
                            bound.add(alias.asname or alias.name)
                elif isinstance(stmt, (ast.If, ast.Try)):
                    if isinstance(stmt, ast.If):
                        walk(stmt.body)
                        walk(stmt.orelse)
                    else:
                        walk(stmt.body)
                        for handler in stmt.handlers:
                            walk(handler.body)
                        walk(stmt.orelse)
                        walk(stmt.finalbody)
                elif isinstance(stmt, (ast.For, ast.While, ast.With)):
                    if isinstance(stmt, ast.For):
                        bind_target(stmt.target)
                    if isinstance(stmt, ast.With):
                        for item in stmt.items:
                            if item.optional_vars is not None:
                                bind_target(item.optional_vars)
                    walk(stmt.body)

        walk(body)
        return bound, star

    def visit(self, module: ParsedModule) -> Iterator[Finding]:
        all_node: Optional[ast.expr] = None
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                )
            ):
                all_node = stmt.value
        if all_node is None or not isinstance(all_node, (ast.List, ast.Tuple)):
            return
        entries: List[Tuple[str, ast.expr]] = []
        for elt in all_node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                entries.append((elt.value, elt))
            else:
                return  # dynamically built __all__; out of static reach
        bound, star = self._bound_names(module.tree.body)
        if star:
            return
        seen: Set[str] = set()
        for name, node in entries:
            if name in seen:
                yield self.finding(
                    module, node, f"duplicate __all__ entry {name!r}"
                )
                continue
            seen.add(name)
            if name not in bound:
                yield self.finding(
                    module, node,
                    f"__all__ exports {name!r} but the module never binds it",
                )


#: the shipped rule set, in catalogue order
DEFAULT_RULES: Tuple[Rule, ...] = (
    UnseededRngRule(),
    WallClockRule(),
    UnsortedSetIterationRule(),
    MutableDefaultRule(),
    SharedMutableStateRule(),
    ExportDriftRule(),
)


def rule_catalog() -> Tuple[Dict[str, str], ...]:
    """Static description of every shipped rule (id, severity, title, hint)."""
    return tuple(
        {
            "rule": r.rule_id,
            "severity": r.severity,
            "title": r.title,
            "fix_hint": r.fix_hint,
            "scope": ",".join(sorted(r.scope_dirs)) or "everywhere",
        }
        for r in DEFAULT_RULES
    )
