"""The strict-typing and style gate: mypy + ruff, when available.

The AST lint (:mod:`repro.staticcheck.engine`) is stdlib-only and always
runs; this module wires in the two external tools the CI lint job adds
on top -- ``mypy --strict`` over the typed core (configured in
``pyproject.toml``) and ``ruff check``.  Neither tool is a hard runtime
dependency: on machines without them the gate reports the step as
*skipped* rather than failing, so ``repro lint --gate`` degrades
gracefully while CI (which installs both) enforces them.
"""

from __future__ import annotations

import shutil
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["GateStep", "typing_gate_targets", "run_typing_gate"]

#: paths (relative to the repo root) covered by ``mypy --strict``
MYPY_TARGETS: Tuple[str, ...] = (
    "src/repro/errors.py",
    "src/repro/faults/report.py",
    "src/repro/online/report.py",
    "src/repro/staticcheck",
)


@dataclass(frozen=True)
class GateStep:
    """Outcome of one external tool invocation."""

    tool: str
    available: bool
    returncode: int
    output: str

    @property
    def ok(self) -> bool:
        """True iff the tool was skipped or exited cleanly."""
        return (not self.available) or self.returncode == 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form for the lint JSON envelope."""
        return {
            "tool": self.tool,
            "available": self.available,
            "returncode": self.returncode,
            "output": self.output,
        }

    def render(self) -> str:
        """One-line status; tool output follows on failure."""
        if not self.available:
            return f"gate: {self.tool} not installed; skipped"
        if self.returncode == 0:
            return f"gate: {self.tool} OK"
        return f"gate: {self.tool} FAILED (exit {self.returncode})\n{self.output}"


def _repo_root() -> Optional[Path]:
    """The checkout root (where pyproject.toml lives), if recognizable."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return None


def typing_gate_targets(root: Optional[Path] = None) -> List[str]:
    """The mypy target paths that actually exist under ``root``."""
    base = root or _repo_root()
    if base is None:
        return []
    return [str(base / t) for t in MYPY_TARGETS if (base / t).exists()]


def _run(cmd: Sequence[str], cwd: Optional[Path]) -> Tuple[int, str]:
    proc = subprocess.run(
        list(cmd),
        cwd=str(cwd) if cwd else None,
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, (proc.stdout + proc.stderr).strip()


def run_typing_gate(
    tools: Sequence[str] = ("ruff", "mypy"),
    root: Optional[str | Path] = None,
) -> List[GateStep]:
    """Run the external gate tools that are installed; skip the rest.

    ``ruff`` checks the source tree with the repo's ``pyproject.toml``
    config; ``mypy`` runs ``--strict`` over :data:`MYPY_TARGETS`.  Each
    tool yields one :class:`GateStep`; a step with ``available=False``
    never fails the gate.
    """
    base = Path(root) if root is not None else _repo_root()
    steps: List[GateStep] = []
    for tool in tools:
        exe = shutil.which(tool)
        if exe is None:
            steps.append(GateStep(tool, False, 0, ""))
            continue
        if tool == "ruff":
            target = str(base / "src" / "repro") if base else "src/repro"
            code, out = _run([exe, "check", target], base)
        elif tool == "mypy":
            targets = typing_gate_targets(base)
            if not targets:
                steps.append(GateStep(tool, False, 0, "no targets found"))
                continue
            code, out = _run([exe, "--strict", *targets], base)
        else:
            code, out = _run([exe, "--version"], base)
        steps.append(GateStep(tool, True, code, out))
    return steps
