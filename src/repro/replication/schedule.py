"""Schedules and feasibility under versioned reads.

Feasibility rules (see :mod:`repro.replication.model`):

* **master chain** -- per object, the writers sorted by commit time form
  the master copy's itinerary (home first); consecutive stops need
  ``gap >= dist`` exactly as in the base model;
* **replica delivery** -- a reader committing at ``t_r`` reads the version
  installed by the last write with ``t_w < t_r`` (the home's version 0 if
  none); the replica ships from that writer's node (resp. the home) right
  after it commits, so ``t_r - t_w >= dist(source, reader)``;
* a reader and a writer of the same object may not share a commit step.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..errors import InfeasibleScheduleError
from .model import ReplicatedInstance

__all__ = ["ReplicatedSchedule"]


class ReplicatedSchedule:
    """Commit times for a :class:`ReplicatedInstance`."""

    def __init__(
        self,
        instance: ReplicatedInstance,
        commit_times: Mapping[int, int],
        meta: Mapping[str, object] | None = None,
    ) -> None:
        self.instance = instance
        self.commit_times: Dict[int, int] = {}
        for t in instance.transactions:
            if t.tid not in commit_times:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} has no commit time"
                )
            ct = int(commit_times[t.tid])
            if ct < 1:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} commit time {ct} must be >= 1"
                )
            self.commit_times[t.tid] = ct
        self.meta: Dict[str, object] = dict(meta or {})

    @property
    def makespan(self) -> int:
        """Time of the last commit."""
        return max(self.commit_times.values())

    def time_of(self, tid: int) -> int:
        return self.commit_times[tid]

    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`InfeasibleScheduleError` unless feasible."""
        inst = self.instance
        dist = inst.network.dist
        for obj in inst.objects:
            writers = sorted(
                inst.writers(obj), key=lambda t: (self.time_of(t.tid), t.tid)
            )
            # master chain: home -> writers in commit order
            prev_node, prev_time = inst.home(obj), 0
            for wtx in writers:
                tw = self.time_of(wtx.tid)
                gap = tw - prev_time
                d = dist(prev_node, wtx.node)
                if gap < d or (gap == 0 and prev_node != wtx.node):
                    raise InfeasibleScheduleError(
                        f"object {obj} master: writer {wtx.tid} at t={tw} "
                        f"needs {d} steps from node {prev_node} (t={prev_time})"
                    )
                prev_node, prev_time = wtx.node, tw
            # replica delivery per reader
            for rtx in inst.readers(obj):
                tr = self.time_of(rtx.tid)
                src_node, src_time = inst.home(obj), 0
                for wtx in writers:
                    tw = self.time_of(wtx.tid)
                    if tw < tr:
                        src_node, src_time = wtx.node, tw
                    elif tw == tr:
                        raise InfeasibleScheduleError(
                            f"reader {rtx.tid} and writer {wtx.tid} of "
                            f"object {obj} share commit step {tr}"
                        )
                    else:
                        break
                gap = tr - src_time
                d = dist(src_node, rtx.node)
                if gap < d:
                    raise InfeasibleScheduleError(
                        f"object {obj}: replica for reader {rtx.tid} at "
                        f"t={tr} needs {d} steps from node {src_node} "
                        f"(version installed at t={src_time})"
                    )

    def is_feasible(self) -> bool:
        """True iff :meth:`validate` passes."""
        try:
            self.validate()
        except InfeasibleScheduleError:
            return False
        return True

    @property
    def communication_cost(self) -> int:
        """Master movement plus one replica shipment per read."""
        inst = self.instance
        dist = inst.network.dist
        total = 0
        for obj in inst.objects:
            writers = sorted(
                inst.writers(obj), key=lambda t: (self.time_of(t.tid), t.tid)
            )
            prev = inst.home(obj)
            for wtx in writers:
                total += dist(prev, wtx.node)
                prev = wtx.node
            for rtx in inst.readers(obj):
                tr = self.time_of(rtx.tid)
                src = inst.home(obj)
                for wtx in writers:
                    if self.time_of(wtx.tid) < tr:
                        src = wtx.node
                    else:
                        break
                total += dist(src, rtx.node)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedSchedule(m={len(self.commit_times)}, "
            f"makespan={self.makespan})"
        )
