"""Read/write workload generators for the replication extension."""

from __future__ import annotations

import numpy as np

from ..errors import InstanceError
from ..network.graph import Network
from .model import ReplicatedInstance, RWTransaction

__all__ = ["random_rw_instance"]


def random_rw_instance(
    net: Network,
    w: int,
    k: int,
    write_fraction: float,
    rng: np.random.Generator,
) -> ReplicatedInstance:
    """One transaction per node, ``k`` uniform objects, each independently
    a write with probability ``write_fraction`` (at least one access per
    transaction is guaranteed; homes land on random accessors)."""
    if not 1 <= k <= w:
        raise InstanceError(f"need 1 <= k <= w, got k={k}, w={w}")
    if not 0.0 <= write_fraction <= 1.0:
        raise InstanceError(
            f"write_fraction must be in [0,1], got {write_fraction}"
        )
    txns = []
    accessors: dict[int, list[int]] = {o: [] for o in range(w)}
    for node in net.nodes():
        objs = [int(o) for o in rng.choice(w, size=k, replace=False)]
        writes = {o for o in objs if rng.random() < write_fraction}
        reads = set(objs) - writes
        txns.append(RWTransaction(node, node, reads, writes))
        for o in objs:
            accessors[o].append(node)
    homes = {}
    for o in range(w):
        nodes = accessors[o]
        homes[o] = int(nodes[rng.integers(0, len(nodes))]) if nodes else 0
    return ReplicatedInstance(net, txns, homes)
