"""Greedy scheduling under versioned reads.

Identical machinery to §2.3, but the dependency graph only joins two
transactions sharing an object when **at least one writes it** --
read-read sharing is conflict-free, so read-heavy workloads colour with
far fewer colours.  The positioning offset conservatively covers every
access's worst-case first leg from the object's home (harmless
over-delay; a uniform shift preserves all gaps).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.coloring import greedy_color
from ..core.dependency import DependencyGraph
from .model import ReplicatedInstance
from .schedule import ReplicatedSchedule

__all__ = ["ReplicatedGreedyScheduler", "build_rw_dependency"]


def build_rw_dependency(instance: ReplicatedInstance) -> DependencyGraph:
    """Conflict graph: shared object with at least one writer."""
    dist = instance.network.dist
    adj: Dict[int, Dict[int, int]] = {t.tid: {} for t in instance.transactions}
    for obj in instance.objects:
        writers = instance.writers(obj)
        readers = instance.readers(obj)
        # writer-writer and writer-reader pairs conflict
        for i, a in enumerate(writers):
            for b in writers[i + 1 :]:
                d = dist(a.node, b.node)
                adj[a.tid][b.tid] = d
                adj[b.tid][a.tid] = d
            for r in readers:
                d = dist(a.node, r.node)
                adj[a.tid][r.tid] = d
                adj[r.tid][a.tid] = d
    return DependencyGraph(adj)


class ReplicatedGreedyScheduler:
    """§2.3 greedy on the write-aware conflict graph."""

    name = "replicated-greedy"

    def schedule(
        self,
        instance: ReplicatedInstance,
        rng: np.random.Generator | None = None,
    ) -> ReplicatedSchedule:
        graph = build_rw_dependency(instance)
        colors = greedy_color(graph)
        dist = instance.network.dist
        offset = 0
        for t in instance.transactions:
            for obj in t.objects:
                need = dist(instance.home(obj), t.node) - colors[t.tid]
                offset = max(offset, need)
        commits = {tid: c + offset for tid, c in colors.items()}
        meta = {
            "scheduler": self.name,
            "colors_used": len(set(colors.values())),
            "h_max": graph.h_max,
            "delta": graph.max_degree,
            "offset": offset,
        }
        return ReplicatedSchedule(instance, commits, meta)
