"""Replication/multi-versioning extension (§1.2's restricted models).

Read/write transactions over versioned objects: masters move between
writers as in the base model, readers receive shipped replicas of the
version preceding their commit, and read-read sharing is conflict-free.
"""

from .model import ReplicatedInstance, RWTransaction
from .schedule import ReplicatedSchedule
from .scheduler import ReplicatedGreedyScheduler, build_rw_dependency
from .workloads import random_rw_instance

__all__ = [
    "RWTransaction",
    "ReplicatedInstance",
    "ReplicatedSchedule",
    "ReplicatedGreedyScheduler",
    "build_rw_dependency",
    "random_rw_instance",
]
