"""Read/write transactions over versioned objects (§1.2's restricted models).

The paper notes its data-flow results carry over to restricted replicated
and multi-versioned TMs ([20, 24, 29] in its related work).  This
extension models the *versioned-read* variant:

* every object still has a single **master** copy that moves between its
  *writers* exactly as in the base model;
* a *reader* receives a read-only replica of the version installed by the
  last write committed before its own commit (or the initial version from
  the object's home), shipped from that writer's node;
* readers impose no constraints on one another or on later writers — the
  snapshot they read stays consistent, as in multi-versioning TMs.

Conflicts therefore only arise between two transactions sharing an object
when **at least one writes it**, which thins the dependency graph and is
where replication wins on read-heavy workloads (experiment E14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping

from ..core.instance import Instance
from ..core.transaction import Transaction
from ..errors import InstanceError
from ..network.graph import Network

__all__ = ["RWTransaction", "ReplicatedInstance"]


@dataclass(frozen=True, order=True)
class RWTransaction:
    """A transaction with separate read and write sets.

    ``writes`` may overlap ``reads`` (read-modify-write); the effective
    write set is authoritative for conflicts.  The union must be
    non-empty.
    """

    tid: int
    node: int
    reads: FrozenSet[int] = field(compare=False)
    writes: FrozenSet[int] = field(compare=False)

    def __init__(
        self, tid: int, node: int, reads: Iterable[int], writes: Iterable[int]
    ) -> None:
        object.__setattr__(self, "tid", int(tid))
        object.__setattr__(self, "node", int(node))
        r = frozenset(int(o) for o in reads)
        w = frozenset(int(o) for o in writes)
        if not (r | w):
            raise InstanceError(f"transaction {tid} accesses no objects")
        object.__setattr__(self, "reads", r - w)
        object.__setattr__(self, "writes", w)

    @property
    def objects(self) -> FrozenSet[int]:
        """All objects touched (reads and writes)."""
        return self.reads | self.writes

    @property
    def k(self) -> int:
        return len(self.objects)

    def writes_obj(self, obj: int) -> bool:
        return obj in self.writes


class ReplicatedInstance:
    """A batch of read/write transactions over a network.

    Mirrors :class:`~repro.core.instance.Instance`'s validation (one
    transaction per node, homes for every object) and adds per-object
    writer/reader indexes.
    """

    def __init__(
        self,
        network: Network,
        transactions: Iterable[RWTransaction],
        object_homes: Mapping[int, int],
    ) -> None:
        self.network = network
        self.transactions: tuple[RWTransaction, ...] = tuple(transactions)
        self.object_homes: Dict[int, int] = {
            int(o): int(v) for o, v in object_homes.items()
        }
        if not self.transactions:
            raise InstanceError("instance must contain at least one transaction")

        seen_nodes: set[int] = set()
        seen_tids: set[int] = set()
        writers: Dict[int, list[RWTransaction]] = {}
        readers: Dict[int, list[RWTransaction]] = {}
        for t in self.transactions:
            if t.tid in seen_tids:
                raise InstanceError(f"duplicate transaction id {t.tid}")
            seen_tids.add(t.tid)
            if not (0 <= t.node < network.n):
                raise InstanceError(
                    f"transaction {t.tid} placed outside the graph"
                )
            if t.node in seen_nodes:
                raise InstanceError(f"node {t.node} hosts two transactions")
            seen_nodes.add(t.node)
            for o in t.writes:
                writers.setdefault(o, []).append(t)
            for o in t.reads:
                readers.setdefault(o, []).append(t)
        for o in sorted(set(writers) | set(readers)):
            if o not in self.object_homes:
                raise InstanceError(f"object {o} has no home node")
        for o, v in self.object_homes.items():
            if not (0 <= v < network.n):
                raise InstanceError(f"object {o} home {v} outside graph")

        self._writers = {o: tuple(ts) for o, ts in writers.items()}
        self._readers = {o: tuple(ts) for o, ts in readers.items()}
        self._by_tid = {t.tid: t for t in self.transactions}

    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        return len(self.transactions)

    @property
    def objects(self) -> tuple[int, ...]:
        return tuple(sorted(self.object_homes))

    def writers(self, obj: int) -> tuple[RWTransaction, ...]:
        """Transactions writing ``obj``."""
        return self._writers.get(obj, ())

    def readers(self, obj: int) -> tuple[RWTransaction, ...]:
        """Transactions reading (not writing) ``obj``."""
        return self._readers.get(obj, ())

    def transaction(self, tid: int) -> RWTransaction:
        return self._by_tid[tid]

    def home(self, obj: int) -> int:
        return self.object_homes[obj]

    def as_single_copy(self) -> Instance:
        """The same workload in the base model (every access a conflict).

        Used by E14 to quantify what versioned reads buy: schedule both
        and compare makespans.
        """
        txns = [
            Transaction(t.tid, t.node, t.objects) for t in self.transactions
        ]
        homes = {
            o: self.object_homes[o]
            for o in sorted(set().union(*(t.objects for t in self.transactions)))
        }
        return Instance(self.network, txns, homes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedInstance(n={self.network.n}, m={self.m}, "
            f"w={len(self.object_homes)})"
        )
