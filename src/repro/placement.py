"""Object placement optimization.

The paper assumes each object starts at a node that requests it, but
*which* requester matters, and differently for different quantities:

* the **walk** lower bound (and hence the serial time to serve all
  requesters) is minimized by an *extremal* home -- on a line, starting
  at an end of the span beats starting in the middle by up to 1.5x;
* the schedulers' **positioning offsets** (worst first leg) are minimized
  by a *central* home (the 1-center of the requesters).

:func:`optimize_homes` supports both: ``objective="walk"`` re-homes each
object to the requester minimizing its shortest-walk estimate (never
increasing the certified walk bound when homes already sit on
requesters), while ``objective="max"``/``"sum"`` pick the 1-center /
1-median.  A directory service could maintain either placement in
practice; nothing in the paper's guarantees depends on it.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .bounds.walks import walk_bounds
from .core.instance import Instance

__all__ = ["optimize_homes", "median_node", "walk_optimal_home"]


def median_node(
    instance: Instance,
    nodes: list[int],
    objective: Literal["max", "sum"] = "max",
    candidates: list[int] | None = None,
) -> int:
    """The candidate minimizing max (or total) distance to ``nodes``.

    ``candidates`` defaults to ``nodes`` itself (home-at-requester rule).
    Ties break toward the smallest node id.
    """
    dist = instance.network.distance_matrix
    cand = np.asarray(
        candidates if candidates is not None else nodes, dtype=np.intp
    )
    tgt = np.asarray(nodes, dtype=np.intp)
    sub = dist[np.ix_(cand, tgt)]
    scores = sub.max(axis=1) if objective == "max" else sub.sum(axis=1)
    return int(cand[int(np.argmin(scores))])


def walk_optimal_home(instance: Instance, nodes: list[int]) -> int:
    """The requester minimizing the shortest walk visiting all ``nodes``.

    Uses the exact Held-Karp walk for small sets and the heuristic upper
    bound otherwise; ties break toward the smallest node id.
    """
    dist = instance.network.distance_matrix
    idx = np.asarray(nodes, dtype=np.intp)
    sub = dist[np.ix_(idx, idx)]
    best_node, best_walk = None, None
    for i, node in enumerate(nodes):
        walk = walk_bounds(sub, i)[1]
        if best_walk is None or (walk, node) < (best_walk, best_node):
            best_node, best_walk = node, walk
    return int(best_node)


def optimize_homes(
    instance: Instance,
    objective: Literal["max", "sum", "walk"] = "walk",
    anywhere: bool = False,
) -> Instance:
    """Re-home every used object per ``objective`` (see module docstring).

    With ``anywhere=True`` (``"max"``/``"sum"`` only) homes may land on
    non-requesting nodes; otherwise the paper's home-at-requester
    convention is kept.  Unused objects keep their homes.
    """
    homes = dict(instance.object_homes)
    all_nodes = list(instance.network.nodes())
    for obj in instance.objects:
        users = instance.users(obj)
        if not users:
            continue
        nodes = sorted({t.node for t in users})
        if objective == "walk":
            homes[obj] = walk_optimal_home(instance, nodes)
        else:
            homes[obj] = median_node(
                instance,
                nodes,
                objective,
                candidates=all_nodes if anywhere else None,
            )
    return Instance(instance.network, instance.transactions, homes)
