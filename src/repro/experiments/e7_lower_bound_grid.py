"""E7 -- Theorem 6 + Fig 5 + Corollary 3: the grid lower-bound instances.

Generate the §8.1 instances ``I_s`` (``s`` blocks of ``s x sqrt(s)`` nodes,
two objects per transaction: the block serializer ``a_i`` plus a random
``b_j``), verify Lemma 10's walk bound (every object's tour is O(s^2)),
then let every scheduler in the library try to beat the construction.

Theorem 6 says any schedule needs ``Omega(s^{33/16}/log s)`` while tours
stay ``O(s^2)``, so the *gap* column -- best achieved makespan divided by
the maximum object tour -- must grow with ``s``.  That growth (not the
absolute constant) is the reproduced claim.  E8 runs the same protocol on
the §8.2 tree substrate via :func:`run_hard_instances`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..analysis.tables import Table
from ..baselines.list_scheduler import (
    RandomOrderScheduler,
    SequentialScheduler,
    TSPOrderScheduler,
)
from ..bounds.construction import HardInstance, hard_grid_instance
from ..bounds.lower import makespan_lower_bound, object_report
from ..core.greedy import GreedyScheduler
from ..workloads.seeds import spawn
from .common import mean_evaluation
from ..obs.recorder import Recorder

EXP_ID = "e7"
TITLE = "E7 (Theorem 6, Fig 5): grid hard instances -- schedules cannot track TSP tours"
SUPPORTS_RECORDER = True


def run_hard_instances(
    exp_id: str,
    title: str,
    builder: Callable[[int, np.random.Generator], HardInstance],
    seed: int | None,
    quick: bool,
    recorder: Recorder | None = None,
) -> Table:
    """Shared E7/E8 protocol over a §8 instance builder."""
    ss = [4, 9] if quick else [4, 9, 16, 25]
    table = Table(
        title,
        columns=[
            "s",
            "n_nodes",
            "max_tour",
            "tour_bound_5s2",
            "certified_lb",
            "best_makespan",
            "best_scheduler",
            "gap",
            "gap_norm",
        ],
    )
    schedulers = [
        GreedyScheduler(),
        GreedyScheduler(order="degree"),
        SequentialScheduler(),
        RandomOrderScheduler(),
        TSPOrderScheduler(),
    ]
    for s in ss:
        rng = spawn(seed, exp_id, s)
        hard = builder(s, rng)
        inst = hard.instance
        report = object_report(inst)
        max_tour = max(ob.tour_estimate for ob in report.values())
        lb = makespan_lower_bound(inst, report)
        evals = mean_evaluation(schedulers, inst, rng, recorder=recorder)
        best = min(evals, key=lambda e: e.makespan)
        gap = best.makespan / max(max_tour, 1)
        table.add(
            s=s,
            n_nodes=inst.network.n,
            max_tour=max_tour,
            tour_bound_5s2=5 * s * s,
            certified_lb=lb,
            best_makespan=best.makespan,
            best_scheduler=best.scheduler,
            gap=gap,
            gap_norm=gap / (s ** (1 / 16) / math.log2(max(s, 2))),
        )
    table.add_note(
        "Lemma 10: max_tour stays below 5*s^2 (tour_bound_5s2 column). "
        "Theorem 6: every schedule needs Omega(s^{33/16}/log s) time, i.e. "
        "the best-achieved gap = makespan/max_tour must grow with s -- "
        "no schedule on these instances tracks the TSP tour lengths."
    )
    return table


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    return run_hard_instances(
        EXP_ID, TITLE, hard_grid_instance, seed, quick, recorder=recorder
    )
