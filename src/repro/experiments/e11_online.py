"""E11 (extension, §9 open question 1) -- online scheduling.

Poisson arrival streams on three topology families, scheduled by (a) the
timestamp-priority contention manager, (b) a random-priority manager, and
(c) epoch batching of the paper's offline schedulers.  Low arrival rates
favour the reactive managers (no batching latency); as the rate rises and
batches grow contended, the offline schedulers' conflict-aware ordering
pays for the wait.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..network.topologies import clique, cluster, grid
from ..online import (
    poisson_workload,
    random_priority,
    run_epoch_batched,
    run_online,
)
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e11"
TITLE = "E11 (extension): online arrivals -- priority managers vs epoch batching"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    rates = [0.2, 1.0] if quick else [0.1, 0.3, 1.0, 3.0]
    networks = [clique(32), grid(6), cluster(4, 6, gamma=8)]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "rate",
            "policy",
            "makespan",
            "mean_response",
            "max_response",
        ],
    )
    for net in networks:
        count = min(24, net.n)
        w = max(4, count // 3)
        for rate in rates:
            agg: dict[str, list[tuple[int, float, int]]] = {}
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, net.topology.name, rate, trial)
                wl = poisson_workload(net, w=w, k=2, rate=rate, count=count, rng=rng)
                runs = {
                    "timestamp": run_online(wl, recorder=recorder),
                    "random-prio": run_online(
                        wl,
                        random_priority,
                        rng=spawn(seed, EXP_ID, "rp", trial),
                        recorder=recorder,
                    ),
                    "epoch-batch": run_epoch_batched(
                        wl, rng=spawn(seed, EXP_ID, "eb", trial)
                    ),
                }
                for name, res in runs.items():
                    res.schedule.validate()
                    agg.setdefault(name, []).append(
                        (res.makespan, res.mean_response, res.max_response)
                    )
            for name, cells in agg.items():
                table.add(
                    topology=net.topology.name,
                    rate=rate,
                    policy=name,
                    makespan=summarize([c[0] for c in cells]).mean,
                    mean_response=summarize([c[1] for c in cells]).mean,
                    max_response=summarize([c[2] for c in cells]).mean,
                )
    table.add_note(
        "All three policies produce feasible schedules respecting release "
        "times.  The timestamp manager is the Greedy CM of [13] adapted to "
        "the data-flow model; epoch-batch reuses the paper's offline "
        "schedulers per batch."
    )
    return table
