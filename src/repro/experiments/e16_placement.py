"""E16 (extension) -- object placement ablation.

The paper homes every object at *a* requester; this experiment measures
how much the choice matters.  The same workloads run with four placement
policies: the generator's uniform-random requester, the walk-optimal
requester (minimizes each object's shortest-walk lower bound), the
1-center requester (minimizes the worst first leg), and an adversarial
corner placement (every object homed at node 0).  Makespans come from the
topology scheduler with compaction.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..bounds.lower import makespan_lower_bound
from ..core.dispatch import schedule as schedule_auto
from ..core.instance import Instance
from ..core.retime import compact_schedule
from ..network.topologies import clique, grid, line
from ..placement import optimize_homes
from ..workloads.generators import random_k_subsets
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e16"
TITLE = "E16 (extension): object placement policies"
SUPPORTS_RECORDER = False


def _corner_homes(inst: Instance) -> Instance:
    homes = {o: 0 for o in inst.object_homes}
    return Instance(inst.network, inst.transactions, homes)


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    networks = [clique(24), line(48)] if quick else [clique(48), line(128), grid(10)]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "policy",
            "makespan",
            "lower_bound",
            "ratio",
        ],
    )
    policies = {
        "random-requester": lambda inst: inst,
        "walk-optimal": lambda inst: optimize_homes(inst, "walk"),
        "1-center": lambda inst: optimize_homes(inst, "max"),
        "corner (adversarial)": _corner_homes,
    }
    for net in networks:
        w = max(4, net.n // 4)
        cells: dict[str, list[tuple[int, int]]] = {}
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, net.topology.name, trial)
            base = random_k_subsets(net, w, 2, rng)
            for name, transform in policies.items():
                inst = transform(base)
                s = compact_schedule(
                    schedule_auto(inst, rng=rng)
                )
                s.validate()
                lb = makespan_lower_bound(inst)
                cells.setdefault(name, []).append((s.makespan, lb))
        for name, vals in cells.items():
            mk = summarize([v[0] for v in vals]).mean
            lb = summarize([v[1] for v in vals]).mean
            table.add(
                topology=net.topology.name,
                policy=name,
                makespan=mk,
                lower_bound=lb,
                ratio=mk / lb,
            )
    table.add_note(
        "walk-optimal placement lowers the certified bound itself "
        "(extremal homes shorten walks); 1-center placement trims the "
        "positioning offset; the corner placement shows the cost of "
        "ignoring placement altogether."
    )
    return table
