"""E13 (extension, §9 conclusion) -- the synchronicity factor.

Replay the paper's schedules in networks whose hop delays are stretched
by factors drawn uniformly from ``[1, phi]``, preserving the schedules'
conflict order.  The conclusion's claim -- bounds degrade by at most the
synchronicity factor -- appears as the inflation column staying at or
below ``phi`` across the sweep (typically near ``(1 + phi)/2``, the mean
stretch).
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..core.dispatch import schedule as schedule_auto
from ..network.topologies import clique, grid, line
from ..sim.asynchrony import asynchronous_execute
from ..workloads.generators import random_k_subsets
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e13"
TITLE = "E13 (extension): makespan inflation under asynchrony factor phi"
SUPPORTS_RECORDER = False


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    phis = [1.0, 2.0] if quick else [1.0, 1.5, 2.0, 4.0, 8.0]
    networks = [clique(32), line(64), grid(8)]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "phi",
            "asap_makespan",
            "async_makespan",
            "inflation",
        ],
    )
    for net in networks:
        w = max(4, net.n // 4)
        for phi in phis:
            sync_mks, async_mks, infl = [], [], []
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, net.topology.name, phi, trial)
                inst = random_k_subsets(net, w, 2, rng)
                sched = schedule_auto(inst, rng=rng)
                sched.validate()
                # the phi = 1 replay is the as-soon-as-possible baseline:
                # it strips the schedule's slack, isolating the jitter
                # effect from slack compression
                base = asynchronous_execute(sched, 1.0, rng).makespan
                res = asynchronous_execute(sched, phi, rng)
                sync_mks.append(base)
                async_mks.append(res.makespan)
                infl.append(res.makespan / base)
            table.add(
                topology=net.topology.name,
                phi=phi,
                asap_makespan=summarize(sync_mks).mean,
                async_makespan=summarize(async_mks).mean,
                inflation=summarize(infl).mean,
            )
    table.add_note(
        "inflation = asynchronous / ASAP-replay makespan, bounded by "
        "ceil(phi): each commit rounds up to an integer step, so "
        "unit-hop chains (clique) inflate to ceil(phi) while multi-hop "
        "topologies average the jitter toward (1 + phi)/2 -- the "
        "conclusion's synchronicity-factor degradation."
    )
    return table
