"""E17 (extension, §9 conclusion) -- graceful degradation under faults.

Replay each topology's schedule against seeded random fault plans of
increasing intensity (link failure/repair windows, node crashes, object
stalls, delay spikes) and measure what robustness costs: the realized
makespan stretch over the planned schedule, the commit rate, and the
recovery work (retries, reroutes, recovery reschedulings, deferred
commits) the fault-aware engine spent absorbing the disruptions.  At
intensity 0 the fault layer is exact -- stretch 1.0, zero recovery work
-- the zero-distortion baseline the healthy path guarantees.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..core.dispatch import schedule as schedule_auto
from ..faults import degradation_report, faulty_execute, random_fault_plan
from ..network.topologies import grid, line
from ..workloads.generators import random_k_subsets
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder
from .common import attach_metrics_note

EXP_ID = "e17"
TITLE = "E17 (extension): degradation under injected faults"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 4
    intensities = [0.0, 1.0, 2.0] if quick else [0.0, 0.5, 1.0, 2.0]
    networks = [line(24), grid(6)]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "intensity",
            "faults",
            "planned_makespan",
            "realized_makespan",
            "stretch",
            "commit_rate",
            "retries",
            "reroutes",
            "recoveries",
            "deferred",
        ],
    )
    for net in networks:
        w = max(4, net.n // 3)
        for intensity in intensities:
            cells: dict[str, list[float]] = {c: [] for c in table.columns[2:]}
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, net.topology.name, intensity, trial)
                inst = random_k_subsets(net, w, 2, rng)
                sched = schedule_auto(inst, rng=rng)
                sched.validate()
                plan = random_fault_plan(
                    net,
                    horizon=sched.makespan,
                    rng=rng,
                    intensity=intensity,
                    crash_rate=0.02,
                    objects=inst.objects,
                )
                trace = faulty_execute(sched, plan, recorder=recorder)
                rep = degradation_report(sched, plan, trace)
                cells["faults"].append(rep.fault_count)
                cells["planned_makespan"].append(rep.planned_makespan)
                cells["realized_makespan"].append(rep.realized_makespan)
                cells["stretch"].append(rep.stretch)
                cells["commit_rate"].append(rep.commit_rate)
                cells["retries"].append(rep.retries)
                cells["reroutes"].append(rep.reroutes)
                cells["recoveries"].append(rep.recoveries)
                cells["deferred"].append(rep.deferred_commits)
            table.add(
                topology=net.topology.name,
                intensity=intensity,
                **{c: summarize(v).mean for c, v in cells.items()},
            )
    table.add_note(
        "stretch = realized / planned makespan under the fault-aware "
        "replay (repro.faults.faulty_execute); intensity 0 is the exact "
        "healthy baseline (stretch 1.0, zero recovery work).  commit_rate "
        "< 1 only when node crashes strand transactions or their objects; "
        "every surviving transaction is rescheduled and committed by the "
        "recovery scheduler (docs/FAULTS.md).  stretch can dip below 1 "
        "when a crash strands the latest-committing transactions."
    )
    attach_metrics_note(table, recorder)
    return table
