"""E3 -- Theorem 2 + Fig 1: the line scheduler is constant-factor optimal.

Sweep the line length and the object span (which controls the algorithm's
``ell``); Theorem 2 predicts makespan <= ``4 * ell`` regardless of instance
shape, i.e. the measured ratio column never exceeds 4.  The first row
regenerates Fig 1's configuration (n = 32, ell = 8) exactly.
"""

from __future__ import annotations

from ..analysis.tables import Table
from ..core.line import LineScheduler
from ..network.topologies import line
from ..workloads.generators import line_span_instance, random_k_subsets
from ..workloads.seeds import spawn
from .common import trial_ratios
from ..obs.recorder import Recorder

EXP_ID = "e3"
TITLE = "E3 (Theorem 2, Fig 1): line scheduler, constant-factor ratios"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    ns = [32, 128] if quick else [32, 128, 512, 1024]
    spans = [4, 8, 32] if quick else [4, 8, 32, 128]
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "workload",
            "n",
            "span",
            "ell",
            "makespan",
            "four_ell",
            "lower_bound",
            "ratio",
        ],
    )
    sched = LineScheduler()

    # Fig 1 regeneration: n = 32 with ell = 8
    rng = spawn(seed, EXP_ID, "fig1")
    fig1 = line_span_instance(line(32), w=8, k=2, max_span=7, rng=rng)
    ell = LineScheduler.ell(fig1)
    s = sched.schedule(fig1)
    s.validate()
    table.add(
        workload="fig1",
        n=32,
        span=7,
        ell=ell,
        makespan=s.makespan,
        four_ell=4 * ell,
        lower_bound=ell,
        ratio=s.makespan / ell,
    )

    for n in ns:
        net = line(n)
        for span in spans:
            if span >= n:
                continue
            w = max(4, n // 8)
            cell = trial_ratios(
                EXP_ID,
                seed,
                ("span", n, span),
                trials,
                lambda rng: line_span_instance(net, w, 2, span, rng),
                sched,
                recorder=recorder,
            )
            table.add(
                workload="span-limited",
                n=n,
                span=span,
                ell="-",
                makespan=cell["makespan"],
                four_ell="-",
                lower_bound=cell["lower_bound"],
                ratio=cell["ratio"],
            )
        # unrestricted arbitrary workload
        cell = trial_ratios(
            EXP_ID,
            seed,
            ("uniform", n),
            trials,
            lambda rng: random_k_subsets(net, max(4, n // 8), 2, rng),
            sched,
            recorder=recorder,
        )
        table.add(
            workload="uniform",
            n=n,
            span=n - 1,
            ell="-",
            makespan=cell["makespan"],
            four_ell="-",
            lower_bound=cell["lower_bound"],
            ratio=cell["ratio"],
        )
    table.add_note(
        "Theorem 2: makespan <= 4*ell with ell <= OPT, so ratios are O(1). "
        "Against the exact-walk bound the factor is at most 4; for objects "
        "with >13 requesters the certified bound falls back to the MST, "
        "which may undercut ell by up to 1.5x, so up to 6 in the extreme."
    )
    return table
