"""E4 -- Theorem 3 + Fig 2: grid scheduling of random k-subsets.

Sweep the grid side and ``k`` with uniformly random k-subsets (the regime
Theorem 3 covers); report ratios and their normalization by
``k * ln(m)``.  A second block regenerates Fig 2's configuration -- a
16x16 grid with 4x4 subgrids -- by forcing the subgrid side and reporting
one object's boustrophedon path length through the subgrid order.
"""

from __future__ import annotations

import math

from ..analysis.tables import Table
from ..core.grid import GridScheduler
from ..network.topologies import grid
from ..sim.engine import execute
from ..workloads.generators import random_k_subsets
from ..workloads.seeds import spawn
from .common import trial_ratios
from ..obs.recorder import Recorder

EXP_ID = "e4"
TITLE = "E4 (Theorem 3, Fig 2): grid scheduler on random k-subsets"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    sides = [8, 12] if quick else [8, 12, 16, 24]
    ks = [1, 2] if quick else [1, 2, 4]
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "block",
            "side",
            "n_nodes",
            "k",
            "w",
            "subgrid_side",
            "makespan",
            "lower_bound",
            "ratio",
            "ratio_norm",
        ],
    )
    for side in sides:
        net = grid(side)
        w = max(4, side)
        for k in ks:
            if k > w:
                continue
            sched = GridScheduler()
            # peek at the subgrid side the xi rule picks for this shape
            probe = random_k_subsets(net, w, k, spawn(seed, EXP_ID, "probe", side, k))
            sg = sched.subgrid_side(probe)
            cell = trial_ratios(
                EXP_ID,
                seed,
                ("sweep", side, k),
                trials,
                lambda rng: random_k_subsets(net, w, k, rng),
                sched,
                recorder=recorder,
            )
            m = max(net.n, w)
            table.add(
                block="sweep",
                side=side,
                n_nodes=net.n,
                k=k,
                w=w,
                subgrid_side=sg,
                makespan=cell["makespan"],
                lower_bound=cell["lower_bound"],
                ratio=cell["ratio"],
                ratio_norm=cell["ratio"] / (k * math.log(m)),
            )

    # Fig 2 regeneration: 16x16 grid with forced 4x4 subgrids
    rng = spawn(seed, EXP_ID, "fig2")
    net = grid(16)
    inst = random_k_subsets(net, w=16, k=2, rng=rng)
    sched = GridScheduler(side=4)
    s = sched.schedule(inst)
    s.validate()
    trace = execute(s, record_commits=False, recorder=recorder)
    hot = max(inst.objects, key=inst.load)
    table.add(
        block="fig2",
        side=16,
        n_nodes=256,
        k=2,
        w=16,
        subgrid_side=4,
        makespan=s.makespan,
        lower_bound=trace.object_distance.get(hot, 0),
        ratio=float("nan"),
        ratio_norm=float("nan"),
    )
    table.add_note(
        "fig2 row: lower_bound column holds the hottest object's realized "
        "boustrophedon path length through the 4x4 subgrid order (the "
        "path Fig 2 depicts)."
    )
    table.add_note(
        "Theorem 3 predicts ratio = O(k log m) w.h.p.: ratio_norm stays "
        "bounded across the sweep.  With the paper's xi constant (27) the "
        "subgrid side usually covers the whole grid at these scales, "
        "matching the xi > n^2/9 branch of the proof; E10 ablates the "
        "side explicitly."
    )
    return table
