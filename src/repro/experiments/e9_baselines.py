"""E9 -- the paper's framing vs naive policies: baseline comparison.

Run the topology-matched paper scheduler against the global-serialization,
random-priority, and TSP-priority list schedulers on every topology family
with a common workload shape.  The paper's schedulers should dominate the
serialization baseline everywhere (that is their point: §1.2 criticizes
global-lock/serialization-lease distributed TMs for not scaling) and match
or beat the priority heuristics.
"""

from __future__ import annotations

from ..analysis.tables import Table
from ..baselines.list_scheduler import (
    RandomOrderScheduler,
    SequentialScheduler,
    TSPOrderScheduler,
)
from ..bounds.lower import makespan_lower_bound, object_report
from ..analysis.metrics import evaluate
from ..core.dispatch import resolve_scheduler
from ..network.topologies import (
    butterfly,
    clique,
    cluster,
    grid,
    hypercube,
    line,
    star,
)
from ..workloads.generators import random_k_subsets
from ..workloads.seeds import spawn
from .common import Compacted
from ..obs.recorder import Recorder

EXP_ID = "e9"
TITLE = "E9: paper schedulers vs serialization / priority baselines"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    k = 2
    networks = (
        [clique(32), line(64), grid(8), cluster(4, 6, 8), star(6, 7)]
        if quick
        else [
            clique(64),
            hypercube(6),
            butterfly(4),
            line(256),
            grid(16),
            cluster(8, 8, 8),
            star(8, 15),
        ]
    )
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "topology",
            "n",
            "scheduler",
            "makespan",
            "lower_bound",
            "ratio",
            "comm_cost",
        ],
    )
    for net in networks:
        w = max(4, net.n // 4)
        agg: dict[str, list] = {}
        lb_sum = 0.0
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, net.topology.name, trial)
            inst = random_k_subsets(net, w, k, rng)
            lb = makespan_lower_bound(inst, object_report(inst))
            lb_sum += lb
            topo_name = net.topology.name
            paper = resolve_scheduler(topology=topo_name)
            contenders = [
                ("paper:" + paper.name, paper),
                ("paper+compact", Compacted(resolve_scheduler(topology=topo_name))),
                ("sequential", SequentialScheduler()),
                ("random-order", RandomOrderScheduler()),
                ("tsp-order", TSPOrderScheduler()),
            ]
            for label, sched in contenders:
                ev = evaluate(sched, inst, rng, lower_bound=lb, recorder=recorder)
                agg.setdefault(label, []).append(
                    (ev.makespan, ev.ratio, ev.communication_cost)
                )
        for label, cells in agg.items():
            table.add(
                topology=net.topology.name,
                n=net.n,
                scheduler=label,
                makespan=sum(c[0] for c in cells) / len(cells),
                lower_bound=lb_sum / trials,
                ratio=sum(c[1] for c in cells) / len(cells),
                comm_cost=sum(c[2] for c in cells) / len(cells),
            )
    table.add_note(
        "The serialization baseline models global-lock/serialization-lease "
        "distributed TMs ([2,9,24] in the paper); the paper's schedulers "
        "should beat it consistently, and the TSP-priority baseline shows "
        "communication-cost-first scheduling does not minimize time "
        "(Busch et al. [3])."
    )
    table.add_note(
        "paper+compact = the same schedule order retimed to earliest "
        "feasible commits (repro.core.retime); it keeps every theorem "
        "bound while removing the colouring's worst-case spacing slack."
    )
    return table
