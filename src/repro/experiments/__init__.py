"""The experiment suite: one module per theorem/figure (see DESIGN.md §3)."""

from .registry import EXPERIMENTS, TITLES, experiment_ids, run_experiment
from .sweep import SweepReport, run_sweep

__all__ = [
    "EXPERIMENTS",
    "TITLES",
    "experiment_ids",
    "run_experiment",
    "SweepReport",
    "run_sweep",
]
