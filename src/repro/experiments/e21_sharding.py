"""E21 -- blockchain sharding: two-phase sharded vs plain cluster-greedy.

The blockchain-sharding recast (arXiv:2405.15015) splits the workload
by the objects' home shards: intra-shard transactions run in parallel
per-shard greedy phases, and only the cross-shard remainder pays the
serialized inter-shard phase.  This sweep drives the cross-shard
fraction on ``shard_cluster`` graphs (``gamma = 2 * shard_size``, the
costly-handoff regime) and compares three schedulers on identical
instances:

* ``cluster`` (Approach 1) -- the plain §6 cluster-greedy baseline, one
  global colouring that interleaves intra and cross transactions;
* ``sharded`` -- the two-phase scheduler with a deterministic
  cluster-greedy cross phase;
* ``sharded-cluster`` -- the same intra phases with the Algorithm-1
  randomized activation rounds driving the cross phase.

Expected shape: at ``cross = 0`` the two-phase split degenerates to the
baseline (both are per-shard greedy); at *low nonzero* cross fractions
the sharded scheduler wins -- often by 2-4x -- because the few
gamma-weight cross conflicts no longer inflate the colouring the intra
majority pays; at high fractions the serialized cross phase dominates
and the global interleaving wins back.
"""

from __future__ import annotations

from ..analysis.metrics import evaluate
from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..core.cluster import ClusterScheduler
from ..core.sharded import (
    ShardedClusterScheduler,
    ShardedScheduler,
    cross_shard_ratio,
)
from ..network.sharding import shard_cluster, shard_members
from ..obs.recorder import Recorder
from ..workloads.generators import partitioned_instance
from ..workloads.seeds import spawn

EXP_ID = "e21"
TITLE = "E21 (blockchain sharding): two-phase sharded vs cluster-greedy"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    configs = [(4, 6)] if quick else [(4, 6), (6, 8)]
    crosses = [0.0, 0.1, 0.4] if quick else [0.0, 0.05, 0.1, 0.2, 0.4]
    trials = 2 if quick else 5
    k = 2
    table = Table(
        TITLE,
        columns=[
            "shards",
            "shard_size",
            "cross",
            "cross_ratio",
            "mk_cluster",
            "mk_sharded",
            "mk_rounds",
            "winner",
            "lower_bound",
            "ratio_sharded",
        ],
    )
    for shards, shard_size in configs:
        net = shard_cluster(shards, shard_size, gamma=2 * shard_size)
        groups = shard_members(net)
        for cross in crosses:
            mkc, mks, mkr, lbs, ratios, measured = [], [], [], [], [], []
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, shards, shard_size, cross, trial)
                inst = partitioned_instance(
                    net,
                    groups,
                    objects_per_group=shard_size,
                    k=k,
                    cross_fraction=cross,
                    rng=rng,
                )
                measured.append(cross_shard_ratio(inst))
                ec = evaluate(
                    ClusterScheduler(approach=1), inst, rng,
                    recorder=recorder,
                )
                es = evaluate(
                    ShardedScheduler(), inst, rng,
                    lower_bound=ec.lower_bound, recorder=recorder,
                )
                rng_rounds = spawn(
                    seed, EXP_ID, shards, shard_size, cross, trial, "rounds"
                )
                er = evaluate(
                    ShardedClusterScheduler(), inst, rng_rounds,
                    lower_bound=ec.lower_bound, recorder=recorder,
                )
                mkc.append(ec.makespan)
                mks.append(es.makespan)
                mkr.append(er.makespan)
                lbs.append(ec.lower_bound)
                ratios.append(es.ratio)
            mc, ms = summarize(mkc).mean, summarize(mks).mean
            table.add(
                shards=shards,
                shard_size=shard_size,
                cross=cross,
                cross_ratio=summarize(measured).mean,
                mk_cluster=mc,
                mk_sharded=ms,
                mk_rounds=summarize(mkr).mean,
                winner="sharded" if ms < mc else (
                    "tie" if ms == mc else "cluster"
                ),
                lower_bound=summarize(lbs).mean,
                ratio_sharded=summarize(ratios).mean,
            )
    table.add_note(
        "Baseline is the §6 cluster-greedy (Approach 1) on the same "
        "shard_cluster graph (it carries the cluster aliases, so Theorem "
        "4's scheduler runs unchanged).  gamma = 2 * shard_size makes "
        "cross-shard handoffs costly, the regime sharding targets."
    )
    table.add_note(
        "The sharded win lives at low nonzero cross fractions: the "
        "intra majority stops paying for the few gamma-weight cross "
        "conflicts.  At cross=0 the phases degenerate to the baseline; "
        "past ~0.4 the serialized cross phase dominates and the global "
        "interleaving wins back."
    )
    return table
