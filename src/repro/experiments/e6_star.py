"""E6 -- Theorem 5 + Fig 4: star graph scheduling.

Sweep ray count ``alpha`` and ray length ``beta``; each ring of segments
is scheduled with the better of the greedy and randomized-round
strategies.  Theorem 5 predicts a factor ``O(log beta * min(k beta, ...))``;
the table reports ratios and their normalization by ``log2(beta) * k``.
The alpha=8, beta=7 configuration regenerates Fig 4 (8 rays of 7 nodes,
eta = 3 segment rings).
"""

from __future__ import annotations

import math

from ..analysis.tables import Table
from ..core.star import StarScheduler, ray_segments
from ..network.topologies import star
from ..workloads.generators import partitioned_instance, random_k_subsets
from .common import trial_ratios
from ..obs.recorder import Recorder

EXP_ID = "e6"
TITLE = "E6 (Theorem 5, Fig 4): star scheduler across ray geometries"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    configs = (
        [(4, 7), (8, 7)] if quick else [(4, 7), (8, 7), (8, 15), (8, 31), (16, 15)]
    )
    ks = [1, 2] if quick else [1, 2, 4]
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "workload",
            "alpha",
            "beta",
            "eta",
            "k",
            "makespan",
            "lower_bound",
            "ratio",
            "ratio_norm",
        ],
    )
    sched = StarScheduler()
    for alpha, beta in configs:
        net = star(alpha, beta)
        eta = len(ray_segments(beta))
        w = max(4, (net.n - 1) // 4)
        for k in ks:
            if k > w:
                continue
            cell = trial_ratios(
                EXP_ID,
                seed,
                ("random", alpha, beta, k),
                trials,
                lambda rng: random_k_subsets(net, w, k, rng),
                sched,
                recorder=recorder,
            )
            table.add(
                workload="random",
                alpha=alpha,
                beta=beta,
                eta=eta,
                k=k,
                makespan=cell["makespan"],
                lower_bound=cell["lower_bound"],
                ratio=cell["ratio"],
                ratio_norm=cell["ratio"]
                / (max(math.log2(beta), 1.0) * k),
            )
        # ray-local objects (sigma_i ~ 1): rays as groups, no crossing
        rays = net.topology.require("rays")
        cell = trial_ratios(
            EXP_ID,
            seed,
            ("ray-local", alpha, beta),
            trials,
            lambda rng: partitioned_instance(
                net,
                rays,
                objects_per_group=max(2, beta // 2),
                k=min(2, max(2, beta // 2)),
                cross_fraction=0.0,
                rng=rng,
            ),
            sched,
            recorder=recorder,
        )
        table.add(
            workload="ray-local",
            alpha=alpha,
            beta=beta,
            eta=eta,
            k=2,
            makespan=cell["makespan"],
            lower_bound=cell["lower_bound"],
            ratio=cell["ratio"],
            ratio_norm=cell["ratio"] / (max(math.log2(beta), 1.0) * 2),
        )
    table.add_note(
        "Theorem 5 predicts ratio = O(log beta * min(k beta, c^k ln^k m)); "
        "ratio_norm = ratio/(k log2 beta) stays bounded.  Fig 4 is the "
        "alpha=8, beta=7 (eta=3 rings) configuration."
    )
    return table
