"""Experiment registry: id -> runnable experiment module.

Every experiment module must export the normalized contract::

    EXP_ID: str
    TITLE: str
    SUPPORTS_RECORDER: bool
    def run(seed=None, quick=False, recorder=None) -> Table

``SUPPORTS_RECORDER`` declares whether the module actually threads the
recorder into an instrumented runtime (``False`` means the argument is
accepted for uniformity but ignored).  The contract is validated at
import time by :func:`_validate_module`, so signature drift fails loudly
the moment a module diverges instead of surfacing as a confusing
``TypeError`` deep inside a sweep.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping

from ..analysis.tables import Table
from ..errors import ReproError
from ..obs.recorder import Recorder
from . import (
    e1_clique,
    e2_hypercube,
    e3_line,
    e4_grid,
    e5_cluster,
    e6_star,
    e7_lower_bound_grid,
    e8_lower_bound_tree,
    e9_baselines,
    e10_ablations,
    e11_online,
    e12_congestion,
    e13_asynchrony,
    e14_replication,
    e15_controlflow,
    e16_placement,
    e17_faults,
    e18_online_faults,
    e19_stability,
    e20_cluster,
    e21_sharding,
)

__all__ = [
    "EXPERIMENTS",
    "EXPERIMENT_INFO",
    "ExperimentInfo",
    "run_experiment",
    "experiment_ids",
]

_MODULES = [
    e1_clique,
    e2_hypercube,
    e3_line,
    e4_grid,
    e5_cluster,
    e6_star,
    e7_lower_bound_grid,
    e8_lower_bound_tree,
    e9_baselines,
    e10_ablations,
    e11_online,
    e12_congestion,
    e13_asynchrony,
    e14_replication,
    e15_controlflow,
    e16_placement,
    e17_faults,
    e18_online_faults,
    e19_stability,
    e20_cluster,
    e21_sharding,
]

#: the exact parameter contract every experiment ``run`` must expose
_RUN_PARAMS = (("seed", None), ("quick", False), ("recorder", None))


@dataclass(frozen=True)
class ExperimentInfo:
    """Static metadata describing one registered experiment."""

    id: str
    title: str
    supports_recorder: bool


def _validate_module(mod) -> ExperimentInfo:
    """Check ``mod`` against the normalized contract; raise on drift."""
    name = mod.__name__
    for attr in ("EXP_ID", "TITLE", "SUPPORTS_RECORDER", "run"):
        if not hasattr(mod, attr):
            raise ReproError(f"experiment module {name} is missing {attr}")
    sig = inspect.signature(mod.run)
    params = [
        (p.name, p.default)
        for p in sig.parameters.values()
        if p.kind
        in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
    ]
    if tuple(params) != _RUN_PARAMS:
        raise ReproError(
            f"{name}.run has drifted from the normalized signature "
            f"run(seed=None, quick=False, recorder=None): got {sig}"
        )
    return ExperimentInfo(
        id=mod.EXP_ID,
        title=mod.TITLE,
        supports_recorder=bool(mod.SUPPORTS_RECORDER),
    )


def _detect_drift(
    filenames: list[str], registered_ids: set[str]
) -> tuple[list[str], list[str]]:
    """Pure drift check: experiment files on disk vs registered ids.

    ``filenames`` are module basenames (``e19_stability.py``); returns
    ``(unregistered, phantom)`` -- ids present on disk but missing from
    the registry, and registered ids with no backing file.
    """
    on_disk = set()
    for name in filenames:
        m = re.match(r"(e\d+)_\w+\.py$", name)
        if m:
            on_disk.add(m.group(1))
    unregistered = sorted(on_disk - registered_ids)
    phantom = sorted(registered_ids - on_disk)
    return unregistered, phantom


def _check_registry_drift() -> None:
    """Fail loudly at import if an experiment file is unregistered.

    A new ``e<N>_*.py`` dropped into the package without a matching
    ``_MODULES`` entry would otherwise silently vanish from sweeps, the
    CLI, and CI -- the classic way an experiment rots.
    """
    pkg_dir = Path(__file__).parent
    filenames = [p.name for p in pkg_dir.glob("e*.py")]
    registered = {mod.EXP_ID for mod in _MODULES}
    unregistered, phantom = _detect_drift(filenames, registered)
    if unregistered or phantom:
        raise ReproError(
            "experiment registry drift: "
            f"on disk but unregistered: {unregistered or 'none'}; "
            f"registered but no file: {phantom or 'none'}. "
            "Add the module to repro.experiments.registry._MODULES."
        )


_check_registry_drift()

EXPERIMENT_INFO: Mapping[str, ExperimentInfo] = {
    mod.EXP_ID: _validate_module(mod) for mod in _MODULES
}

EXPERIMENTS: Mapping[str, Callable[..., Table]] = {
    mod.EXP_ID: mod.run for mod in _MODULES
}

TITLES: Mapping[str, str] = {mod.EXP_ID: mod.TITLE for mod in _MODULES}


def experiment_ids() -> list[str]:
    """All experiment ids in presentation order."""
    return [mod.EXP_ID for mod in _MODULES]


def run_experiment(
    exp_id: str,
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    """Run one experiment by id.

    ``recorder`` is forwarded to the experiment's ``run``; modules whose
    :class:`ExperimentInfo` has ``supports_recorder=False`` accept it but
    record nothing.
    """
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {experiment_ids()}"
        ) from None
    return runner(seed=seed, quick=quick, recorder=recorder)
