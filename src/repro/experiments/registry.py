"""Experiment registry: id -> runnable experiment module."""

from __future__ import annotations

from typing import Callable, Mapping

from ..analysis.tables import Table
from . import (
    e1_clique,
    e2_hypercube,
    e3_line,
    e4_grid,
    e5_cluster,
    e6_star,
    e7_lower_bound_grid,
    e8_lower_bound_tree,
    e9_baselines,
    e10_ablations,
    e11_online,
    e12_congestion,
    e13_asynchrony,
    e14_replication,
    e15_controlflow,
    e16_placement,
    e17_faults,
    e18_online_faults,
)

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

_MODULES = [
    e1_clique,
    e2_hypercube,
    e3_line,
    e4_grid,
    e5_cluster,
    e6_star,
    e7_lower_bound_grid,
    e8_lower_bound_tree,
    e9_baselines,
    e10_ablations,
    e11_online,
    e12_congestion,
    e13_asynchrony,
    e14_replication,
    e15_controlflow,
    e16_placement,
    e17_faults,
    e18_online_faults,
]

EXPERIMENTS: Mapping[str, Callable[..., Table]] = {
    mod.EXP_ID: mod.run for mod in _MODULES
}

TITLES: Mapping[str, str] = {mod.EXP_ID: mod.TITLE for mod in _MODULES}


def experiment_ids() -> list[str]:
    """All experiment ids in presentation order."""
    return [mod.EXP_ID for mod in _MODULES]


def run_experiment(
    exp_id: str, seed: int | None = None, quick: bool = False
) -> Table:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {experiment_ids()}"
        ) from None
    return runner(seed=seed, quick=quick)
