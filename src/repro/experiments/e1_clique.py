"""E1 -- Theorem 1: greedy on the clique is O(k)-approximate.

Sweep ``n`` and ``k`` with both uniformly random and adversarial
(hot-object) workloads; report the measured approximation-ratio upper
bound and its normalization by ``k``.  Theorem 1 predicts ``ratio / k``
stays bounded by a small constant across the entire sweep, and the colour
count stays within ``k * ell + 1``.
"""

from __future__ import annotations

from ..analysis.tables import Table
from ..core.dependency import DependencyGraph
from ..core.greedy import CliqueScheduler
from ..core.coloring import greedy_color
from ..network.topologies import clique
from ..workloads.generators import hot_object_instance, random_k_subsets
from ..workloads.seeds import spawn
from .common import attach_metrics_note, trial_ratios
from ..obs.recorder import Recorder

EXP_ID = "e1"
TITLE = "E1 (Theorem 1): clique greedy, ratio vs k"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    ns = [16, 64] if quick else [16, 64, 256]
    ks = [1, 2, 4] if quick else [1, 2, 4, 8]
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "workload",
            "n",
            "k",
            "makespan",
            "lower_bound",
            "ratio",
            "ratio_ci95",
            "ratio_over_k",
        ],
    )
    sched = CliqueScheduler()
    for workload, gen in (
        ("random", random_k_subsets),
        ("hot-object", hot_object_instance),
    ):
        for n in ns:
            net = clique(n)
            w = max(2, n // 2)
            for k in ks:
                if k > w:
                    continue
                cell = trial_ratios(
                    EXP_ID,
                    seed,
                    (workload, n, k),
                    trials,
                    lambda rng: gen(net, w, k, rng),
                    sched,
                    recorder=recorder,
                )
                table.add(
                    workload=workload,
                    n=n,
                    k=k,
                    makespan=cell["makespan"],
                    lower_bound=cell["lower_bound"],
                    ratio=cell["ratio"],
                    ratio_ci95=cell["ratio_ci95"],
                    ratio_over_k=cell["ratio"] / k,
                )
    # colour-bound spot check (Thm 1's k*ell + 1) on the largest config
    rng = spawn(seed, EXP_ID, "colors")
    inst = random_k_subsets(clique(ns[-1]), max(2, ns[-1] // 2), ks[-1], rng)
    colors = greedy_color(DependencyGraph.build(inst))
    table.add_note(
        f"colour check (n={ns[-1]}, k={ks[-1]}): max colour "
        f"{max(colors.values())} <= k*ell+1 = "
        f"{inst.max_k * inst.max_load + 1}"
    )
    table.add_note(
        "Theorem 1 predicts ratio = O(k): the ratio_over_k column stays "
        "bounded across the sweep."
    )
    attach_metrics_note(table, recorder)
    return table
