"""E18 (extension, §9 open question 1 x conclusion) -- online resilience.

E17 measured how a *precomputed* schedule degrades when replayed under
faults; E18 asks the harder production question: what happens when the
same faults strike while scheduling decisions are still being made?  A
Poisson arrival stream is driven through (a) the fault-aware resilient
priority runtime (live rerouting, backoff, lease recovery), (b) the same
runtime behind a load-shedding admission controller, and (c) epoch
batching of the paper's offline schedulers with the resulting schedule
replayed under the plan (the E17 pipeline).  The sweep reports
makespan/response degradation curves, retry and reroute counts, the shed
fraction, and the invariant sanitizer's verdict -- which must be zero
violations at every intensity.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..faults import faulty_execute, random_fault_plan
from ..network.topologies import clique, grid
from ..online import (
    AdmissionControl,
    poisson_workload,
    run_epoch_batched,
    run_online,
    run_resilient,
)
from ..sim.sanitizer import InvariantSanitizer
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder
from .common import attach_metrics_note

EXP_ID = "e18"
TITLE = "E18 (extension): online resilience -- live faults, leases, admission"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 4
    intensities = [0.0, 1.0] if quick else [0.0, 0.5, 1.0, 2.0]
    networks = [grid(5), clique(16)]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "intensity",
            "policy",
            "faults",
            "makespan",
            "mean_response",
            "commit_rate",
            "retries",
            "reroutes",
            "shed_frac",
            "violations",
        ],
    )
    for net in networks:
        count = min(20, net.n)
        w = max(4, count // 3)
        high_water = max(3, count // 4)
        for intensity in intensities:
            agg: dict[str, list[dict[str, float]]] = {}
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, net.topology.name, intensity, trial)
                wl = poisson_workload(net, w=w, k=2, rate=1.0, count=count,
                                      rng=rng)
                healthy = run_online(wl, recorder=recorder)
                # repairable plans only (no crashes, no permanent failures):
                # every released transaction must commit
                plan = random_fault_plan(
                    net,
                    horizon=healthy.makespan,
                    rng=rng,
                    intensity=intensity,
                    objects=wl.instance.objects,
                )
                san = InvariantSanitizer()
                res = run_resilient(wl, plan, sanitizer=san, recorder=recorder)
                san_adm = InvariantSanitizer()
                adm = run_resilient(
                    wl, plan,
                    admission=AdmissionControl(high_water, "shed"),
                    sanitizer=san_adm,
                    recorder=recorder,
                )
                epoch = run_epoch_batched(
                    wl, rng=spawn(seed, EXP_ID, "eb", trial)
                )
                trace = faulty_execute(epoch.schedule, plan, recorder=recorder)
                epoch_resp = [
                    ct - wl.release_of(tid)
                    for tid, ct in trace.realized_commits.items()
                ]
                rows = {
                    "resilient": {
                        "makespan": res.makespan,
                        "mean_response": res.mean_response,
                        "commit_rate": res.report.commit_rate,
                        "retries": res.report.retries,
                        "reroutes": res.report.reroutes,
                        "shed_frac": res.report.shed_fraction,
                        "violations": res.report.violations,
                    },
                    "resilient-admit": {
                        "makespan": adm.makespan,
                        "mean_response": adm.mean_response,
                        "commit_rate": adm.report.commit_rate,
                        "retries": adm.report.retries,
                        "reroutes": adm.report.reroutes,
                        "shed_frac": adm.report.shed_fraction,
                        "violations": adm.report.violations,
                    },
                    "epoch-replay": {
                        "makespan": trace.makespan,
                        "mean_response": sum(epoch_resp) / len(epoch_resp),
                        "commit_rate": trace.committed / wl.m,
                        "retries": trace.retries,
                        "reroutes": trace.reroutes,
                        "shed_frac": 0.0,
                        "violations": 0.0,
                    },
                }
                for name, cells in rows.items():
                    cells["faults"] = len(plan)
                    agg.setdefault(name, []).append(cells)
            for name, cells in agg.items():
                table.add(
                    topology=net.topology.name,
                    intensity=intensity,
                    policy=name,
                    **{
                        c: summarize([row[c] for row in cells]).mean
                        for c in table.columns[3:]
                    },
                )
    table.add_note(
        "Live fault consumption (repro.online.run_resilient) vs the E17 "
        "replay pipeline (epoch schedule + faulty_execute), repairable "
        "plans only.  At intensity 0 'resilient' reproduces run_online "
        "exactly.  On these plans nothing is ever *lost*: 'resilient' "
        "commits 100%, and 'resilient-admit' satisfies commit_rate + "
        "shed_frac = 1 (a shed is a typed refusal at release, at "
        "high-water max(3, m/4), never a dropped admitted transaction).  "
        "violations is the invariant sanitizer's count -- zero on a "
        "correct runtime at every intensity."
    )
    attach_metrics_note(table, recorder)
    return table
