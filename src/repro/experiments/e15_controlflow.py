"""E15 (extension, §1.2) -- data-flow vs control-flow execution.

Palmieri et al. [27] compare the data-flow model (mobile objects, the
paper's subject) against the control-flow model (immobile objects;
transactions RPC or migrate) -- here reproduced on a common substrate.
The same workloads run under four executions: the paper's data-flow
scheduler (with compaction), control-flow RPC, control-flow migration,
and the lease-style hybrid of Hendler et al. [15].  Sweeping ``k`` and
the object count shifts the winner: data-flow amortizes object movement
across consecutive users, while control-flow avoids shipping hot objects
at all when transactions are near the homes.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..controlflow import ControlFlowScheduler
from ..core.dispatch import schedule as schedule_auto
from ..core.retime import compact_schedule
from ..network.topologies import clique, cluster, grid
from ..workloads.generators import random_k_subsets, zipf_k_subsets
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e15"
TITLE = "E15 (extension): data-flow vs control-flow (RPC / migration / hybrid)"
SUPPORTS_RECORDER = False


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    networks = [clique(24), grid(6)] if quick else [clique(48), grid(10), cluster(6, 8, gamma=8)]
    configs = [(2, "random")] if quick else [(1, "random"), (2, "random"), (4, "random"), (2, "zipf")]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "k",
            "workload",
            "data_flow",
            "cf_rpc",
            "cf_migration",
            "cf_hybrid",
            "winner",
        ],
    )
    gens = {"random": random_k_subsets, "zipf": zipf_k_subsets}
    for net in networks:
        w = max(4, net.n // 4)
        for k, workload in configs:
            cells: dict[str, list[int]] = {}
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, net.topology.name, k, workload, trial)
                inst = gens[workload](net, w, k, rng)
                df = compact_schedule(schedule_auto(inst, rng=rng))
                df.validate()
                cells.setdefault("data_flow", []).append(df.makespan)
                for mode in ("rpc", "migration", "hybrid"):
                    cf = ControlFlowScheduler(mode).schedule(inst)
                    cf.validate()
                    cells.setdefault(f"cf_{mode}", []).append(cf.makespan)
            means = {name: summarize(vals).mean for name, vals in cells.items()}
            table.add(
                topology=net.topology.name,
                k=k,
                workload=workload,
                data_flow=means["data_flow"],
                cf_rpc=means["cf_rpc"],
                cf_migration=means["cf_migration"],
                cf_hybrid=means["cf_hybrid"],
                winner=min(means, key=means.get),
            )
    table.add_note(
        "All executions are feasibility-checked in their own model "
        "(itineraries for data-flow, disjoint lock intervals for "
        "control-flow).  The hybrid never loses to both pure modes "
        "simultaneously, mirroring [15]'s lease migration heuristic."
    )
    return table
