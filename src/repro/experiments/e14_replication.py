"""E14 (extension, §1.2) -- versioned reads vs single-copy scheduling.

The same read/write workload scheduled two ways: in the base data-flow
model (every access conflicts -- the single master serializes readers
too) and in the versioned-read model (read-read sharing is free, readers
receive shipped replicas).  Sweeping the write fraction shows replication
collapsing the makespan of read-heavy workloads while converging to the
single-copy cost as writes dominate -- the regime split the related-work
replicated/multi-versioned TMs [20, 24, 29] target.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..core.greedy import GreedyScheduler
from ..network.topologies import clique, grid
from ..replication import ReplicatedGreedyScheduler, random_rw_instance
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e14"
TITLE = "E14 (extension): versioned reads vs single-copy scheduling"
SUPPORTS_RECORDER = False


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    write_fracs = [0.1, 0.5, 1.0] if quick else [0.0, 0.1, 0.25, 0.5, 1.0]
    networks = [clique(24), grid(5)] if quick else [clique(48), grid(8)]
    table = Table(
        TITLE,
        columns=[
            "topology",
            "write_frac",
            "mk_single_copy",
            "mk_replicated",
            "speedup",
            "conflict_edges_ratio",
        ],
    )
    for net in networks:
        w = max(4, net.n // 4)
        for wf in write_fracs:
            single, repl, edge_ratio = [], [], []
            for trial in range(trials):
                rng = spawn(seed, EXP_ID, net.topology.name, wf, trial)
                inst = random_rw_instance(net, w, 2, wf, rng)
                rs = ReplicatedGreedyScheduler().schedule(inst)
                rs.validate()
                base = GreedyScheduler().schedule(inst.as_single_copy())
                base.validate()
                single.append(base.makespan)
                repl.append(rs.makespan)
                from ..core.dependency import DependencyGraph
                from ..replication import build_rw_dependency

                full = DependencyGraph.build(inst.as_single_copy()).num_edges
                thin = build_rw_dependency(inst).num_edges
                edge_ratio.append(thin / max(full, 1))
            s, r = summarize(single).mean, summarize(repl).mean
            table.add(
                topology=net.topology.name,
                write_frac=wf,
                mk_single_copy=s,
                mk_replicated=r,
                speedup=s / max(r, 1),
                conflict_edges_ratio=summarize(edge_ratio).mean,
            )
    table.add_note(
        "speedup = single-copy / versioned-read makespan under the same "
        "greedy machinery; conflict_edges_ratio is the dependency-graph "
        "thinning (read-read edges removed).  write_frac = 1.0 recovers "
        "the base model exactly."
    )
    return table
