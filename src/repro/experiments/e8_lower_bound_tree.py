"""E8 -- §8.2 + Fig 6: the tree variant of the lower-bound instances.

Identical protocol to E7 but on the comb-tree blocks of §8.2 (Fig 6); the
paper's argument transfers verbatim, so the same gap growth must appear.
"""

from __future__ import annotations

from ..analysis.tables import Table
from ..bounds.construction import hard_tree_instance
from .e7_lower_bound_grid import run_hard_instances
from ..obs.recorder import Recorder

EXP_ID = "e8"
TITLE = "E8 (§8.2, Fig 6): tree hard instances -- schedules cannot track TSP tours"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    return run_hard_instances(
        EXP_ID, TITLE, hard_tree_instance, seed, quick, recorder=recorder
    )
