"""Parallel experiment sweeps: shard (experiment, seed) cells across workers.

A sweep is the cross product of experiment ids and seeds.  Each cell runs
``run_experiment`` in its own process with a private
:class:`~repro.obs.recorder.MemoryRecorder`, and ships back a plain-data
result wrapped in the standard versioned JSON envelope
(:func:`repro.io.serialize.json_payload`), so the merge step consumes the
same schema whether the cell ran in-process or across a pipe.

Determinism contract: the merged :class:`SweepReport` is identical for any
``workers`` count.  Cells are seeded only by their ``(experiment, seed)``
pair, results are merged in shard order (``imap`` preserves it regardless
of completion order), and the machine-dependent wall/CPU timings live in a
separate ``profiles`` field that parity comparisons exclude
(:meth:`SweepReport.parity_key`).

A hung cell cannot hang the sweep: ``cell_timeout`` bounds each cell's
wall time, and a cell that blows it is recorded as a typed
``SweepTimeoutError`` entry in the merged report (or raised, under
``on_timeout="strict"``) while the rest of the sweep completes.  Timeout
entries are machine facts -- a sweep that timed out does not promise
parity with one that did not.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from multiprocessing import get_context
from multiprocessing.context import TimeoutError as _PoolTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.report import report_payload, report_to_json, register_report
from ..cluster.wire import CELL_KIND, decode_message, encode_message
from ..errors import ReproError, SweepTimeoutError
from ..obs.recorder import MemoryRecorder, Recorder, active
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["SweepReport", "run_sweep", "sweep_shards"]


@register_report("sweep")
@dataclass(frozen=True)
class SweepReport:
    """Merged outcome of one sweep over ``experiments x seeds``.

    ``cells`` holds the deterministic payloads, one per ``(experiment,
    seed)`` pair in shard order: the experiment's
    :class:`~repro.analysis.tables.Table` as a dict plus the metric
    snapshot its recorder collected.  ``profiles`` holds the per-cell
    wall/CPU phase timings -- machine facts, excluded from parity.
    """

    experiments: Tuple[str, ...]
    seeds: Tuple[int, ...]
    quick: bool
    workers: int
    cells: Tuple[Dict[str, Any], ...]
    profiles: Tuple[Dict[str, Any], ...]

    def parity_key(self) -> Tuple[Dict[str, Any], ...]:
        """The worker-count-independent part of the report."""
        return self.cells

    def as_dict(self) -> Dict[str, Any]:
        """Flat summary for table/JSON embedding."""
        return {
            "experiments": list(self.experiments),
            "seeds": list(self.seeds),
            "quick": self.quick,
            "workers": self.workers,
            "cells": len(self.cells),
            "total_wall_s": round(
                sum(p["wall_s"] for p in self.profiles), 6
            ),
        }

    def to_json(self) -> str:
        """Serialize via the shared report envelope."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Reconstruct from :meth:`to_json` output."""
        payload = report_payload(text, expected_kind="sweep")
        payload["experiments"] = tuple(payload["experiments"])
        payload["seeds"] = tuple(payload["seeds"])
        payload["cells"] = tuple(payload["cells"])
        payload["profiles"] = tuple(payload["profiles"])
        return cls(**payload)


def sweep_shards(
    experiments: Sequence[str], seeds: Sequence[int], quick: bool
) -> list:
    """The sweep's work list: one ``(experiment, seed, quick)`` per cell."""
    return [(eid, int(seed), bool(quick)) for eid in experiments for seed in seeds]


def _run_shard(shard: Tuple[str, int, bool]) -> str:
    """Run one cell and return its enveloped JSON result.

    Module-level so multiprocessing can pickle it.  Everything that
    crosses the process boundary is plain JSON -- the same
    ``schema_version``/``kind`` envelope the persistence layer uses.
    """
    eid, seed, quick = shard
    rec = MemoryRecorder(meta={"experiment": eid, "seed": seed, "quick": quick})
    with rec.phase(f"shard:{eid}:s{seed}"):
        table = run_experiment(eid, seed=seed, quick=quick, recorder=rec)
    shard_timing = rec.phases[-1]
    body = {
        "cell": {
            "experiment": eid,
            "seed": seed,
            "table": table.as_dict(),
            "metrics": rec.registry.snapshot(),
        },
        "profile": {
            "experiment": eid,
            "seed": seed,
            "wall_s": shard_timing.wall_s,
            "cpu_s": shard_timing.cpu_s,
            "phases": [asdict(p) for p in rec.phases[:-1]],
        },
    }
    return encode_message(CELL_KIND, body)


def _decode_shard(text: str) -> Dict[str, Any]:
    _, body = decode_message(text, expected_kind=CELL_KIND)
    return body


def _timeout_result(eid: str, seed: int, cell_timeout: float) -> Dict[str, Any]:
    """The merged-report entry for a cell that blew its deadline."""
    message = (
        f"cell ({eid}, seed {seed}) exceeded its {cell_timeout:.1f}s "
        f"timeout and was killed"
    )
    return {
        "cell": {
            "experiment": eid,
            "seed": seed,
            "error": {"type": "SweepTimeoutError", "message": message},
        },
        "profile": {
            "experiment": eid,
            "seed": seed,
            "wall_s": float(cell_timeout),
            "cpu_s": 0.0,
            "phases": [],
            "timeout": True,
        },
    }


def _run_pool(
    shards: List[Tuple[str, int, bool]],
    workers: int,
    cell_timeout: Optional[float],
    on_timeout: str,
) -> List[Dict[str, Any]]:
    """Run shards in a fork pool, bounding each cell's wall time.

    Futures are collected in shard order.  On a timeout the whole pool
    is terminated (the hung worker cannot be recalled individually) and
    a fresh pool runs the remaining shards, so one wedged cell costs at
    most ``cell_timeout`` plus re-running any cells that shared its
    pool generation -- it can never hang the sweep.
    """
    ctx = get_context("fork")
    results: List[Dict[str, Any]] = []
    idx = 0
    pool = ctx.Pool(processes=min(workers, len(shards)))
    try:
        while idx < len(shards):
            pending = [
                (i, pool.apply_async(_run_shard, (shards[i],)))
                for i in range(idx, len(shards))
            ]
            timed_out = False
            for i, fut in pending:
                try:
                    results.append(_decode_shard(fut.get(timeout=cell_timeout)))
                    idx = i + 1
                except _PoolTimeout:
                    eid, seed, _ = shards[i]
                    if on_timeout == "strict":
                        raise SweepTimeoutError(
                            f"sweep cell ({eid}, seed {seed}) produced no "
                            f"result within {cell_timeout:.1f}s"
                        ) from None
                    results.append(_timeout_result(eid, seed, cell_timeout))
                    idx = i + 1
                    pool.terminate()
                    pool.join()
                    pool = None
                    if idx < len(shards):
                        pool = ctx.Pool(
                            processes=min(workers, len(shards) - idx)
                        )
                    timed_out = True
                    break
            if not timed_out:
                break
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return results


def run_sweep(
    experiments: Sequence[str],
    seeds: Sequence[int] = (0,),
    quick: bool = False,
    workers: int = 1,
    recorder: Optional[Recorder] = None,
    cell_timeout: Optional[float] = None,
    on_timeout: str = "record",
) -> SweepReport:
    """Run every ``(experiment, seed)`` cell, sharded across ``workers``.

    ``workers=1`` runs inline; ``workers>1`` forks a pool (capped at the
    shard count).  The merged report is byte-identical across worker
    counts except for the ``profiles`` timings.  The parent ``recorder``
    gets one ``sweep.cells`` count and a ``sweep.cell_wall_s``
    observation per cell, plus every child counter folded in, so
    sweep-level dashboards see the same totals a serial run would.

    ``cell_timeout`` (seconds) bounds each cell's wall time; setting it
    forces the pool path even for ``workers=1`` (the parent cannot
    interrupt its own inline call).  A cell that exceeds it is killed
    and -- under the default ``on_timeout="record"`` -- recorded in the
    merged report as a ``{"experiment", "seed", "error"}`` cell with
    type ``SweepTimeoutError``, while the remaining cells run in a fresh
    pool.  ``on_timeout="strict"`` raises
    :class:`~repro.errors.SweepTimeoutError` instead.
    """
    experiments = list(experiments)
    seeds = [int(s) for s in seeds]
    if not experiments:
        raise ReproError("run_sweep(): need at least one experiment id")
    if not seeds:
        raise ReproError("run_sweep(): need at least one seed")
    unknown = [eid for eid in experiments if eid not in EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiment ids {unknown}; choose from {experiment_ids()}"
        )
    if workers < 1:
        raise ReproError(f"run_sweep(): workers must be >= 1, got {workers}")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ReproError(
            f"run_sweep(): cell_timeout must be positive, got {cell_timeout}"
        )
    if on_timeout not in ("record", "strict"):
        raise ReproError(
            f"run_sweep(): unknown on_timeout policy {on_timeout!r}; "
            f"choose 'record' or 'strict'"
        )

    shards = sweep_shards(experiments, seeds, quick)
    rec = active(recorder)
    with rec.phase("sweep"):
        if cell_timeout is not None:
            results = _run_pool(shards, workers, cell_timeout, on_timeout)
        elif workers == 1 or len(shards) == 1:
            results = [_decode_shard(_run_shard(s)) for s in shards]
        else:
            ctx = get_context("fork")
            with ctx.Pool(processes=min(workers, len(shards))) as pool:
                results = [
                    _decode_shard(text)
                    for text in pool.imap(_run_shard, shards)
                ]

    for res in results:
        rec.count("sweep.cells")
        rec.observe("sweep.cell_wall_s", res["profile"]["wall_s"])
        if "error" in res["cell"]:
            rec.count("sweep.timeouts")
            continue
        for name, value in res["cell"]["metrics"]["counters"].items():
            rec.count(name, value)

    return SweepReport(
        experiments=tuple(experiments),
        seeds=tuple(seeds),
        quick=bool(quick),
        workers=int(workers),
        cells=tuple(res["cell"] for res in results),
        profiles=tuple(res["profile"] for res in results),
    )
