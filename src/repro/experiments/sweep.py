"""Parallel experiment sweeps: shard (experiment, seed) cells across workers.

A sweep is the cross product of experiment ids and seeds.  Each cell runs
``run_experiment`` in its own process with a private
:class:`~repro.obs.recorder.MemoryRecorder`, and ships back a plain-data
result wrapped in the standard versioned JSON envelope
(:func:`repro.io.serialize.json_payload`), so the merge step consumes the
same schema whether the cell ran in-process or across a pipe.

Determinism contract: the merged :class:`SweepReport` is identical for any
``workers`` count.  Cells are seeded only by their ``(experiment, seed)``
pair, results are merged in shard order (``imap`` preserves it regardless
of completion order), and the machine-dependent wall/CPU timings live in a
separate ``profiles`` field that parity comparisons exclude
(:meth:`SweepReport.parity_key`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from multiprocessing import get_context
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..analysis.report import report_payload, report_to_json, register_report
from ..errors import ReproError
from ..io.serialize import json_payload
from ..obs.recorder import MemoryRecorder, Recorder, active
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = ["SweepReport", "run_sweep", "sweep_shards"]

#: envelope kind for one worker's result (internal wire format)
_CELL_KIND = "sweep_cell"


@register_report("sweep")
@dataclass(frozen=True)
class SweepReport:
    """Merged outcome of one sweep over ``experiments x seeds``.

    ``cells`` holds the deterministic payloads, one per ``(experiment,
    seed)`` pair in shard order: the experiment's
    :class:`~repro.analysis.tables.Table` as a dict plus the metric
    snapshot its recorder collected.  ``profiles`` holds the per-cell
    wall/CPU phase timings -- machine facts, excluded from parity.
    """

    experiments: Tuple[str, ...]
    seeds: Tuple[int, ...]
    quick: bool
    workers: int
    cells: Tuple[Dict[str, Any], ...]
    profiles: Tuple[Dict[str, Any], ...]

    def parity_key(self) -> Tuple[Dict[str, Any], ...]:
        """The worker-count-independent part of the report."""
        return self.cells

    def as_dict(self) -> Dict[str, Any]:
        """Flat summary for table/JSON embedding."""
        return {
            "experiments": list(self.experiments),
            "seeds": list(self.seeds),
            "quick": self.quick,
            "workers": self.workers,
            "cells": len(self.cells),
            "total_wall_s": round(
                sum(p["wall_s"] for p in self.profiles), 6
            ),
        }

    def to_json(self) -> str:
        """Serialize via the shared report envelope."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        """Reconstruct from :meth:`to_json` output."""
        payload = report_payload(text, expected_kind="sweep")
        payload["experiments"] = tuple(payload["experiments"])
        payload["seeds"] = tuple(payload["seeds"])
        payload["cells"] = tuple(payload["cells"])
        payload["profiles"] = tuple(payload["profiles"])
        return cls(**payload)


def sweep_shards(
    experiments: Sequence[str], seeds: Sequence[int], quick: bool
) -> list:
    """The sweep's work list: one ``(experiment, seed, quick)`` per cell."""
    return [(eid, int(seed), bool(quick)) for eid in experiments for seed in seeds]


def _run_shard(shard: Tuple[str, int, bool]) -> str:
    """Run one cell and return its enveloped JSON result.

    Module-level so multiprocessing can pickle it.  Everything that
    crosses the process boundary is plain JSON -- the same
    ``schema_version``/``kind`` envelope the persistence layer uses.
    """
    eid, seed, quick = shard
    rec = MemoryRecorder(meta={"experiment": eid, "seed": seed, "quick": quick})
    with rec.phase(f"shard:{eid}:s{seed}"):
        table = run_experiment(eid, seed=seed, quick=quick, recorder=rec)
    shard_timing = rec.phases[-1]
    body = {
        "cell": {
            "experiment": eid,
            "seed": seed,
            "table": table.as_dict(),
            "metrics": rec.registry.snapshot(),
        },
        "profile": {
            "experiment": eid,
            "seed": seed,
            "wall_s": shard_timing.wall_s,
            "cpu_s": shard_timing.cpu_s,
            "phases": [asdict(p) for p in rec.phases[:-1]],
        },
    }
    return json.dumps(json_payload(_CELL_KIND, body))


def _decode_shard(text: str) -> Dict[str, Any]:
    payload = json.loads(text)
    if payload.get("kind") != _CELL_KIND:  # pragma: no cover - wire bug
        raise ReproError(f"bad sweep cell envelope: {payload.get('kind')!r}")
    return payload["body"]


def run_sweep(
    experiments: Sequence[str],
    seeds: Sequence[int] = (0,),
    quick: bool = False,
    workers: int = 1,
    recorder: Optional[Recorder] = None,
) -> SweepReport:
    """Run every ``(experiment, seed)`` cell, sharded across ``workers``.

    ``workers=1`` runs inline; ``workers>1`` forks a pool (capped at the
    shard count).  The merged report is byte-identical across worker
    counts except for the ``profiles`` timings.  The parent ``recorder``
    gets one ``sweep.cells`` count and a ``sweep.cell_wall_s``
    observation per cell, plus every child counter folded in, so
    sweep-level dashboards see the same totals a serial run would.
    """
    experiments = list(experiments)
    seeds = [int(s) for s in seeds]
    if not experiments:
        raise ReproError("run_sweep(): need at least one experiment id")
    if not seeds:
        raise ReproError("run_sweep(): need at least one seed")
    unknown = [eid for eid in experiments if eid not in EXPERIMENTS]
    if unknown:
        raise ReproError(
            f"unknown experiment ids {unknown}; choose from {experiment_ids()}"
        )
    if workers < 1:
        raise ReproError(f"run_sweep(): workers must be >= 1, got {workers}")

    shards = sweep_shards(experiments, seeds, quick)
    rec = active(recorder)
    with rec.phase("sweep"):
        if workers == 1 or len(shards) == 1:
            raw = [_run_shard(s) for s in shards]
        else:
            ctx = get_context("fork")
            with ctx.Pool(processes=min(workers, len(shards))) as pool:
                raw = list(pool.imap(_run_shard, shards))
        results = [_decode_shard(text) for text in raw]

    for res in results:
        rec.count("sweep.cells")
        rec.observe("sweep.cell_wall_s", res["profile"]["wall_s"])
        for name, value in res["cell"]["metrics"]["counters"].items():
            rec.count(name, value)

    return SweepReport(
        experiments=tuple(experiments),
        seeds=tuple(seeds),
        quick=bool(quick),
        workers=int(workers),
        cells=tuple(res["cell"] for res in results),
        profiles=tuple(res["profile"] for res in results),
    )
