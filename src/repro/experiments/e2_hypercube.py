"""E2 -- §3.1: greedy on diameter-d graphs (Hypercube, Butterfly, torus, ...).

The clique argument scaled by the diameter gives an ``O(k * d)``
approximation on any diameter-``d`` graph -- ``O(k log n)`` on hypercubes,
butterflies and log-dimensional grids, ``O(k sqrt(n))`` on tori.  Sweep
the dimension and ``k``; the ratio normalized by ``k * d`` should stay
bounded by a small constant across all families.
"""

from __future__ import annotations


from ..analysis.tables import Table
from ..core.greedy import DiameterScheduler
from ..network.topologies import butterfly, ddim_grid, hypercube, torus
from ..workloads.generators import random_k_subsets
from .common import trial_ratios
from ..obs.recorder import Recorder

EXP_ID = "e2"
TITLE = "E2 (§3.1): diameter-d greedy (hypercube/butterfly/torus), ratio vs k*d"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    dims = [3, 4, 5] if quick else [3, 4, 5, 6, 7]
    ks = [1, 2, 4] if quick else [1, 2, 4, 8]
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "family",
            "dim",
            "n",
            "diameter",
            "k",
            "makespan",
            "lower_bound",
            "ratio",
            "ratio_norm",
        ],
    )
    families = [
        ("hypercube", hypercube),
        ("butterfly", butterfly),
        ("log-dim-grid", lambda d: ddim_grid([2] * d)),
        # torus side 2^ceil(dim/2): diameter ~ side, n ~ side^2
        ("torus", lambda d: torus(max(3, 1 << ((d + 1) // 2)))),
    ]
    sched = DiameterScheduler()
    for family, build in families:
        for dim in dims:
            net = build(dim)
            w = max(2, net.n // 2)
            d = net.diameter()
            for k in ks:
                if k > w:
                    continue
                cell = trial_ratios(
                    EXP_ID,
                    seed,
                    (family, dim, k),
                    trials,
                    lambda rng: random_k_subsets(net, w, k, rng),
                    sched,
                    recorder=recorder,
                )
                table.add(
                    family=family,
                    dim=dim,
                    n=net.n,
                    diameter=d,
                    k=k,
                    makespan=cell["makespan"],
                    lower_bound=cell["lower_bound"],
                    ratio=cell["ratio"],
                    ratio_norm=cell["ratio"] / (k * max(d, 1)),
                )
    table.add_note(
        "§3.1 predicts ratio = O(k*d) (= O(k log n) on hypercube/"
        "butterfly/log-dim grids, O(k sqrt n) on tori); ratio_norm = "
        "ratio/(k*d) stays bounded across families and dimensions."
    )
    return table
