"""Shared helpers for the experiment suite.

Each experiment module exposes ``run(seed=None, quick=False) -> Table``.
``quick`` shrinks sweeps to bench-friendly sizes; the default sizes are
what EXPERIMENTS.md records.  All randomness is derived with
:func:`repro.workloads.seeds.spawn` keyed by experiment id, configuration,
and trial index, so tables are reproducible cell-by-cell.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..analysis.metrics import Evaluation, evaluate
from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..bounds.lower import makespan_lower_bound, object_report
from ..core.instance import Instance
from ..core.retime import compact_schedule
from ..core.schedule import Schedule
from ..core.scheduler import Scheduler
from ..obs.recorder import Recorder, active
from ..workloads.seeds import spawn

__all__ = [
    "trial_ratios",
    "mean_evaluation",
    "Compacted",
    "attach_metrics_note",
]


class Compacted(Scheduler):
    """Wrap any scheduler with the earliest-feasible retiming pass."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"{inner.name}+compact"

    def schedule(self, instance: Instance, rng=None) -> Schedule:
        return compact_schedule(self.inner.schedule(instance, rng))


def trial_ratios(
    exp_id: str,
    seed: int | None,
    config_key: tuple,
    trials: int,
    make_instance: Callable[[np.random.Generator], Instance],
    scheduler: Scheduler,
    recorder: Recorder | None = None,
) -> dict[str, float]:
    """Run ``trials`` independent instances; aggregate ratio and makespan.

    Returns mean makespan, mean lower bound, mean ratio and its 95% CI
    half-width -- the standard cell contents across experiment tables.
    ``recorder`` flows into every :func:`evaluate` call, so one recorder
    observes the whole sweep.
    """
    ratios: list[float] = []
    makespans: list[float] = []
    lbs: list[float] = []
    comms: list[float] = []
    for trial in range(trials):
        rng = spawn(seed, exp_id, *config_key, trial)
        inst = make_instance(rng)
        ev = evaluate(scheduler, inst, rng, recorder=recorder)
        ratios.append(ev.ratio)
        makespans.append(ev.makespan)
        lbs.append(ev.lower_bound)
        comms.append(ev.communication_cost)
    r = summarize(ratios)
    return {
        "makespan": summarize(makespans).mean,
        "lower_bound": summarize(lbs).mean,
        "ratio": r.mean,
        "ratio_ci95": r.ci95_half_width,
        "comm_cost": summarize(comms).mean,
    }


def mean_evaluation(
    schedulers: Sequence[Scheduler],
    instance: Instance,
    rng: np.random.Generator,
    recorder: Recorder | None = None,
) -> list[Evaluation]:
    """Evaluate several schedulers on one instance, sharing its lower bound."""
    lb = makespan_lower_bound(instance, object_report(instance))
    return [
        evaluate(s, instance, rng, lower_bound=lb, recorder=recorder)
        for s in schedulers
    ]


def attach_metrics_note(table: Table, recorder: Recorder | None) -> None:
    """Append the recorder's metric snapshot to ``table`` as a footnote.

    The note carries only the *deterministic* metric planes (counters and
    histogram counts -- phase timings are wall-clock and excluded), so a
    recorded table renders identically across same-seed runs.  A no-op
    when ``recorder`` is None or not recording, which keeps default
    experiment output byte-identical with or without the observability
    layer.
    """
    rec = active(recorder)
    if not rec.enabled:
        return
    snapshot = getattr(rec, "registry", None)
    if snapshot is None:  # recorder without a metrics registry
        return
    snap = snapshot.snapshot()
    parts = [f"{k}={v}" for k, v in snap["counters"].items()]
    parts += [
        f"{k}.count={h['count']}" for k, h in snap["histograms"].items()
    ]
    if parts:
        table.add_note("metrics: " + ", ".join(parts))
