"""Shared helpers for the experiment suite.

Each experiment module exposes ``run(seed=None, quick=False) -> Table``.
``quick`` shrinks sweeps to bench-friendly sizes; the default sizes are
what EXPERIMENTS.md records.  All randomness is derived with
:func:`repro.workloads.seeds.spawn` keyed by experiment id, configuration,
and trial index, so tables are reproducible cell-by-cell.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..analysis.metrics import Evaluation, evaluate
from ..analysis.stats import summarize
from ..bounds.lower import makespan_lower_bound, object_report
from ..core.instance import Instance
from ..core.retime import compact_schedule
from ..core.schedule import Schedule
from ..core.scheduler import Scheduler
from ..workloads.seeds import spawn

__all__ = ["trial_ratios", "mean_evaluation", "Compacted"]


class Compacted(Scheduler):
    """Wrap any scheduler with the earliest-feasible retiming pass."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"{inner.name}+compact"

    def schedule(self, instance: Instance, rng=None) -> Schedule:
        return compact_schedule(self.inner.schedule(instance, rng))


def trial_ratios(
    exp_id: str,
    seed: int | None,
    config_key: tuple,
    trials: int,
    make_instance: Callable[[np.random.Generator], Instance],
    scheduler: Scheduler,
) -> dict[str, float]:
    """Run ``trials`` independent instances; aggregate ratio and makespan.

    Returns mean makespan, mean lower bound, mean ratio and its 95% CI
    half-width -- the standard cell contents across experiment tables.
    """
    ratios: list[float] = []
    makespans: list[float] = []
    lbs: list[float] = []
    comms: list[float] = []
    for trial in range(trials):
        rng = spawn(seed, exp_id, *config_key, trial)
        inst = make_instance(rng)
        ev = evaluate(scheduler, inst, rng)
        ratios.append(ev.ratio)
        makespans.append(ev.makespan)
        lbs.append(ev.lower_bound)
        comms.append(ev.communication_cost)
    r = summarize(ratios)
    return {
        "makespan": summarize(makespans).mean,
        "lower_bound": summarize(lbs).mean,
        "ratio": r.mean,
        "ratio_ci95": r.ci95_half_width,
        "comm_cost": summarize(comms).mean,
    }


def mean_evaluation(
    schedulers: Sequence[Scheduler],
    instance: Instance,
    rng: np.random.Generator,
) -> list[Evaluation]:
    """Evaluate several schedulers on one instance, sharing its lower bound."""
    lb = makespan_lower_bound(instance, object_report(instance))
    return [evaluate(s, instance, rng, lower_bound=lb) for s in schedulers]
