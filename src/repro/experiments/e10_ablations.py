"""E10 -- design ablations called out in DESIGN.md.

Three knobs the paper's analysis fixes by constants, swept empirically:

* **grid subgrid side** -- Theorem 3's ``xi = 27 w ln(m)/k`` is so
  conservative that practical sizes collapse to one subgrid; sweeping the
  side shows the real makespan valley and that the theory side is safe
  but not tight;
* **cluster phase density** -- Algorithm 1 packs ``24 ln m`` expected
  clusters per phase; the ``ln_factor`` sweep shows the tradeoff between
  phase count (serialization) and per-phase contention (rounds needed);
* **cluster approach crossover** -- forcing Approach 1 vs Approach 2
  across ``beta`` at a fixed object spread locates the crossover that
  Theorem 4's ``min(k beta, 40^k ln^k m)`` envelope predicts.
"""

from __future__ import annotations

from ..analysis.metrics import evaluate
from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..core.cluster import ClusterScheduler
from ..core.grid import GridScheduler
from ..network.topologies import cluster, grid
from ..workloads.generators import partitioned_instance, random_k_subsets
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e10"
TITLE = "E10: ablations -- grid subgrid side, cluster phase density, approach crossover"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    table = Table(
        TITLE,
        columns=[
            "ablation",
            "config",
            "value",
            "makespan",
            "ratio",
            "extra",
        ],
    )

    # (a) grid subgrid side sweep
    side = 12 if quick else 16
    net = grid(side)
    w, k = side, 2
    sides = [2, 4, 8, side] if quick else [2, 4, 8, 16]
    for sg in sides:
        mks, ratios = [], []
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, "grid-side", sg, trial)
            inst = random_k_subsets(net, w, k, rng)
            ev = evaluate(GridScheduler(side=sg), inst, rng, recorder=recorder)
            mks.append(ev.makespan)
            ratios.append(ev.ratio)
        theory_side = GridScheduler().subgrid_side(
            random_k_subsets(net, w, k, spawn(seed, EXP_ID, "grid-probe"))
        )
        table.add(
            ablation="grid-side",
            config=f"{side}x{side},w={w},k={k}",
            value=sg,
            makespan=summarize(mks).mean,
            ratio=summarize(ratios).mean,
            extra=f"theory_side={theory_side}",
        )

    # (b) cluster phase density (ln_factor) sweep
    alpha, beta = (5, 8) if quick else (8, 8)
    net = cluster(alpha, beta, gamma=beta)
    groups = net.topology.require("clusters")
    for ln_factor in [3.0, 6.0, 24.0, 96.0]:
        mks, rounds = [], []
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, "ln-factor", ln_factor, trial)
            inst = partitioned_instance(
                net, groups, objects_per_group=4, k=2,
                cross_fraction=0.5, rng=rng,
            )
            ev = evaluate(
                ClusterScheduler(approach=2, ln_factor=ln_factor),
                inst,
                rng,
                recorder=recorder,
            )
            mks.append(ev.makespan)
            rounds.append(ev.meta.get("rounds_used", 0))
        table.add(
            ablation="cluster-ln-factor",
            config=f"alpha={alpha},beta={beta}",
            value=ln_factor,
            makespan=summarize(mks).mean,
            ratio=summarize(rounds).mean,
            extra="ratio column = mean rounds used",
        )

    # (c) approach crossover across beta: few heavily-shared objects make
    # Approach 1's dependency degree grow with beta while Approach 2's
    # round structure stays near-linear, flipping the envelope.
    betas = [8, 16, 32] if quick else [8, 16, 32, 64, 96, 128]
    for beta in betas:
        net = cluster(5, beta, gamma=beta)
        groups = net.topology.require("clusters")
        m1, m2 = [], []
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, "crossover", beta, trial)
            inst = partitioned_instance(
                net, groups, objects_per_group=2, k=2,
                cross_fraction=1.0, rng=rng,
            )
            m1.append(evaluate(ClusterScheduler(approach=1), inst, rng, recorder=recorder).makespan)
            m2.append(evaluate(ClusterScheduler(approach=2), inst, rng, recorder=recorder).makespan)
        a1, a2 = summarize(m1).mean, summarize(m2).mean
        table.add(
            ablation="approach-crossover",
            config=f"alpha=5,gamma=beta,cross=1.0",
            value=beta,
            makespan=min(a1, a2),
            ratio=a1 / a2,
            extra=f"mk1={a1:.1f},mk2={a2:.1f}",
        )
    table.add_note(
        "approach-crossover: ratio column = makespan(A1)/makespan(A2); "
        "values crossing 1.0 as beta grows reproduce Theorem 4's envelope."
    )

    # (d) compaction: how much of the colouring's spacing is slack
    from ..core.dispatch import schedule as schedule_auto
    from ..core.retime import compact_schedule
    from ..network.topologies import clique as _clique, star as _star

    for net in (_clique(32), grid(12), cluster(5, 8, gamma=8), _star(6, 15)):
        plain_mks, compact_mks = [], []
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, "compact", net.topology.name, trial)
            inst = random_k_subsets(net, max(4, net.n // 4), 2, rng)
            s = schedule_auto(inst, rng=rng)
            plain_mks.append(s.makespan)
            compact_mks.append(compact_schedule(s).makespan)
        plain = summarize(plain_mks).mean
        comp = summarize(compact_mks).mean
        table.add(
            ablation="compaction",
            config=net.topology.name,
            value=net.n,
            makespan=comp,
            ratio=plain / comp,
            extra=f"plain={plain:.1f}",
        )
    table.add_note(
        "compaction: ratio column = plain/compacted makespan; the factor "
        "above 1 is the spacing slack the worst-case colouring carries."
    )
    return table
