"""E20 (extension, robustness) -- the scheduling cluster under worker churn.

A distributed TM scheduler in production is not one process: it is a
fleet that crashes, stalls, and restarts.  E20 measures what that churn
costs.  Per topology it sweeps the injection rate and, at each rate,
runs the supervised multi-process cluster (:mod:`repro.cluster`) twice:
fault-free, and with an injected worker kill mid-run.  The kill run
restarts the dead worker from its write-ahead window journal, so its
merged :class:`~repro.cluster.ClusterReport` must be *bit-identical* in
outcome to the fault-free run -- the experiment asserts
``parity_key()`` equality on every pair, turning the crash-recovery
guarantee into a measured result rather than a claim.  The reported
load-vs-latency curves (p50/p99 sojourn against rate) therefore hold
with and without churn; only the supervision-path columns (restarts)
differ.
"""

from __future__ import annotations

from ..analysis.tables import Table
from ..cluster import ChaosPlan, ClusterConfig, StreamSpec, WorkerKill, run_cluster
from ..obs.recorder import Recorder
from ..service import ServiceConfig
from .common import attach_metrics_note

EXP_ID = "e20"
TITLE = "E20 (extension): cluster under churn -- load vs latency with crash recovery"
SUPPORTS_RECORDER = True

#: (topology, size) pairs swept in full mode
_TOPOLOGIES = [("grid", 3), ("clique", 9)]


def _row(rep, rate: float, chaos_name: str, parity: bool) -> dict:
    return {
        "topology": rep.topology,
        "rate": rate,
        "chaos": chaos_name,
        "workers": rep.workers,
        "released": rep.released,
        "committed": rep.committed,
        "commit_rate": round(rep.commit_rate, 4),
        "backlog": rep.final_backlog,
        "sojourn_p50": rep.sojourn_p50,
        "sojourn_p99": rep.sojourn_p99,
        "restarts": rep.restarts,
        "parity": "ok" if parity else "MISMATCH",
    }


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    windows = 10 if quick else 24
    workers = 3
    rates = [0.4, 0.9] if quick else [0.2, 0.4, 0.7, 1.0, 1.4]
    topologies = _TOPOLOGIES[:1] if quick else _TOPOLOGIES
    svc = ServiceConfig(window=8, high_water=48)
    config = ClusterConfig(
        workers=workers,
        windows=windows,
        checkpoint_every=4,
        restart_backoff_s=0.01,
    )
    kill = ChaosPlan([WorkerKill(worker=1, window=windows // 2)])
    table = Table(
        TITLE,
        columns=[
            "topology",
            "rate",
            "chaos",
            "workers",
            "released",
            "committed",
            "commit_rate",
            "backlog",
            "sojourn_p50",
            "sojourn_p99",
            "restarts",
            "parity",
        ],
    )
    mismatches = 0
    for topology, size in topologies:
        for rate in rates:
            stream = StreamSpec(
                kind="poisson", w=16, k=2, rate=rate,
                seed=(seed if seed is not None else 0),
            )
            baseline = run_cluster(
                topology, size, None, stream, svc, config,
                recorder=recorder,
            )
            crashed = run_cluster(
                topology, size, None, stream, svc, config, chaos=kill,
                recorder=recorder,
            )
            assert baseline.accounted and crashed.accounted, (
                "cluster lost track of a transaction"
            )
            parity = baseline.parity_key() == crashed.parity_key()
            mismatches += 0 if parity else 1
            table.add(**_row(baseline, rate, "none", parity))
            table.add(**_row(crashed, rate, "kill", parity))
    assert mismatches == 0, (
        f"{mismatches} kill-chaos runs diverged from their fault-free "
        f"baselines; journaled crash recovery is not deterministic"
    )
    table.add_note(
        f"Supervised multi-process cluster (repro.cluster): {workers} "
        f"workers, one residue class of transaction ids each, over the "
        f"identical deterministically sharded arrival stream; window "
        f"journal + checkpoint every 4 windows.  'kill' rows inject a "
        f"worker kill at window {windows // 2}; the supervisor restarts "
        f"the worker from its journal and the merged report's "
        f"parity_key() is asserted bit-identical to the fault-free row "
        f"above it ('parity' column).  Latency-vs-load curves "
        f"(sojourn_p50/p99 against rate) are therefore churn-invariant; "
        f"only the supervision path (restarts) differs."
    )
    attach_metrics_note(table, recorder)
    return table
