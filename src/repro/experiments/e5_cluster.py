"""E5 -- Theorem 4 + Algorithm 1 + Fig 3: cluster graph scheduling.

Sweep cluster count ``alpha``, cluster size ``beta`` (with ``gamma = beta``)
and the cross-cluster access fraction, which drives ``sigma`` (how many
clusters an object must visit).  For each configuration both approaches
run: Approach 1 (plain greedy, ``O(k beta)`` factor) and Approach 2
(Algorithm 1's randomized phases/rounds).  Theorem 4's envelope is their
minimum; the table shows who wins where (Approach 1 for small beta or
sigma <= 1; Approach 2 as beta grows with spread objects).
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.metrics import evaluate
from ..analysis.tables import Table
from ..core.cluster import ClusterScheduler, object_cluster_spread
from ..network.topologies import cluster
from ..workloads.generators import partitioned_instance
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e5"
TITLE = "E5 (Theorem 4, Alg 1, Fig 3): cluster approaches and their envelope"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    alphas = [5] if quick else [5, 10]
    betas = [4, 8] if quick else [4, 8, 16, 32]
    crosses = [0.0, 0.5] if quick else [0.0, 0.25, 0.5, 1.0]
    trials = 2 if quick else 5
    k = 2
    table = Table(
        TITLE,
        columns=[
            "alpha",
            "beta",
            "cross",
            "sigma",
            "mk_approach1",
            "mk_approach2",
            "mk_auto",
            "winner",
            "lower_bound",
            "ratio_auto",
        ],
    )
    for alpha in alphas:
        for beta in betas:
            net = cluster(alpha, beta, gamma=beta)
            groups = net.topology.require("clusters")
            for cross in crosses:
                mk1, mk2, mka, lbs, ratios, sigmas = [], [], [], [], [], []
                for trial in range(trials):
                    rng = spawn(seed, EXP_ID, alpha, beta, cross, trial)
                    inst = partitioned_instance(
                        net,
                        groups,
                        objects_per_group=max(k, beta // 2),
                        k=k,
                        cross_fraction=cross,
                        rng=rng,
                    )
                    sigmas.append(object_cluster_spread(inst))
                    e1 = evaluate(ClusterScheduler(approach=1), inst, rng, recorder=recorder)
                    # approach 2 and auto's internal approach 2 must see
                    # identical random streams so auto is exactly their min
                    rng_a2 = spawn(seed, EXP_ID, alpha, beta, cross, trial, "a2")
                    rng_auto = spawn(seed, EXP_ID, alpha, beta, cross, trial, "a2")
                    e2 = evaluate(
                        ClusterScheduler(approach=2),
                        inst,
                        rng_a2,
                        lower_bound=e1.lower_bound,
                        recorder=recorder,
                    )
                    ea = evaluate(
                        ClusterScheduler(approach="auto"),
                        inst,
                        rng_auto,
                        lower_bound=e1.lower_bound,
                        recorder=recorder,
                    )
                    mk1.append(e1.makespan)
                    mk2.append(e2.makespan)
                    mka.append(ea.makespan)
                    lbs.append(ea.lower_bound)
                    ratios.append(ea.ratio)
                a1, a2 = summarize(mk1).mean, summarize(mk2).mean
                table.add(
                    alpha=alpha,
                    beta=beta,
                    cross=cross,
                    sigma=summarize(sigmas).mean,
                    mk_approach1=a1,
                    mk_approach2=a2,
                    mk_auto=summarize(mka).mean,
                    winner="approach1" if a1 <= a2 else "approach2",
                    lower_bound=summarize(lbs).mean,
                    ratio_auto=summarize(ratios).mean,
                )
    table.add_note(
        "Theorem 4: the auto scheduler realizes min(kB, 40^k ln^k m). "
        "Approach 1 wins at these moderate sizes (sigma ~ 1 or small "
        "beta); E10's crossover ablation pushes beta until Approach 2 "
        "overtakes, as the envelope predicts."
    )
    table.add_note(
        "Fig 3's shape (5 cliques, bridge weight gamma) is the alpha=5 "
        "configuration family."
    )
    return table
