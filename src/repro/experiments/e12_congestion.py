"""E12 (extension, §9 open question 2) -- link congestion.

For each topology, measure how much the paper's schedules rely on
unbounded link capacity: the worst per-link concurrency, the capacity-1
makespan lower bound (max over edges of exclusive traffic time), and the
trivial capacity-1 upper bound (dilation by the peak concurrency).  Where
``congestion_gap <= 1`` the schedule is already effectively
capacity-feasible; gaps above 1 quantify how much the open question
actually bites on that topology.
"""

from __future__ import annotations

from ..analysis.stats import summarize
from ..analysis.tables import Table
from ..core.dispatch import schedule as schedule_auto
from ..network.topologies import clique, cluster, grid, hypercube, line, star
from ..sim.capacity import capacity_execute
from ..sim.congestion import congestion_report, serialized_edge_makespan
from ..sim.reroute import reroute_for_congestion
from ..workloads.generators import random_k_subsets
from ..workloads.seeds import spawn
from ..obs.recorder import Recorder

EXP_ID = "e12"
TITLE = "E12 (extension): link congestion under the paper's schedules"
SUPPORTS_RECORDER = True


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    trials = 2 if quick else 5
    networks = (
        [clique(24), line(48), grid(6)]
        if quick
        else [clique(48), hypercube(5), line(128), grid(10),
              cluster(6, 8, gamma=8), star(6, 15)]
    )
    table = Table(
        TITLE,
        columns=[
            "topology",
            "n",
            "makespan",
            "max_link_concurrency",
            "rerouted_peak",
            "cap1_lower_bound",
            "cap1_actual",
            "cap1_upper_bound",
            "congestion_gap",
        ],
    )
    for net in networks:
        w = max(4, net.n // 4)
        mks, peaks, repeaks, lbs, acts, ubs, gaps = [], [], [], [], [], [], []
        for trial in range(trials):
            rng = spawn(seed, EXP_ID, net.topology.name, trial)
            inst = random_k_subsets(net, w, 2, rng)
            sched = schedule_auto(inst, rng=rng)
            sched.validate()
            rep = congestion_report(sched, recorder=recorder)
            mks.append(rep.makespan)
            peaks.append(rep.max_peak)
            repeaks.append(reroute_for_congestion(sched).max_peak)
            lbs.append(rep.capacity1_lower_bound)
            acts.append(capacity_execute(sched, capacity=1).makespan)
            ubs.append(serialized_edge_makespan(sched))
            gaps.append(rep.congestion_gap)
        table.add(
            topology=net.topology.name,
            n=net.n,
            makespan=summarize(mks).mean,
            max_link_concurrency=summarize(peaks).mean,
            rerouted_peak=summarize(repeaks).mean,
            cap1_lower_bound=summarize(lbs).mean,
            cap1_actual=summarize(acts).mean,
            cap1_upper_bound=summarize(ubs).mean,
            congestion_gap=summarize(gaps).mean,
        )
    table.add_note(
        "congestion_gap = capacity-1 lower bound / uncapacitated makespan; "
        "values <= 1 mean capacity-1 links would not lengthen the "
        "schedule's critical path.  rerouted_peak applies slack-aware "
        "path diversity (repro.sim.reroute) without touching commit times; "
        "cap1_actual is a constructive capacity-1 execution "
        "(repro.sim.capacity) preserving the commit order -- it lands "
        "between the analytical lower and upper bounds, and can beat the "
        "uncapacitated *scheduled* makespan because it also compacts."
    )
    return table
