"""E19 (extension, stability) -- the service under continuous arrivals.

Stability theory for transactional memory schedulers (Busch et al.,
arXiv:2208.07359) predicts a saturation point: below a topology-dependent
injection rate a windowed greedy scheduler keeps queues bounded; above
it, queues and sojourn times diverge.  E19 measures that transition on
the live :class:`~repro.service.SchedulingService`: a rate sweep per
topology reports the mean/peak backlog, the backlog-growth slope, sojourn
latency percentiles (p50/p99), and the window at which the online
saturation detector tripped, locating the measured saturation point
between the last stable and first saturated rate.  Two robustness rows
ride along per topology: a bursty MMPP stream at a stable mean rate
(bounded queues despite storms) and a sub-saturation Poisson stream under
a live fault plan driven through the reactive engine (graceful
degradation: bounded losses, typed accounting intact).
"""

from __future__ import annotations

from ..analysis.tables import Table
from ..faults.plan import FaultPlan, LinkFailure, NodeCrash, ObjectStall
from ..network.topologies import clique, grid
from ..obs.recorder import Recorder
from ..service import ServiceConfig, run_service
from ..workloads.seeds import spawn
from ..workloads.streams import MMPPStream, PoissonStream
from .common import attach_metrics_note

EXP_ID = "e19"
TITLE = "E19 (extension): service stability -- backlog and sojourn vs rate"
SUPPORTS_RECORDER = True


def _config(window: int) -> ServiceConfig:
    return ServiceConfig(
        window=window,
        high_water=48,
        admission="defer",
        detector_horizon=6,
        slope_threshold=0.4,
        on_saturation="shed",
    )


def _row(rep, net, stream_name: str, rate: float) -> dict:
    return {
        "topology": net.topology.name,
        "stream": stream_name,
        "rate": rate,
        "released": rep.released,
        "commit_rate": round(rep.commit_rate, 4),
        "mean_backlog": round(rep.mean_backlog, 2),
        "peak_backlog": rep.peak_backlog,
        "slope": round(rep.final_slope, 3),
        "sojourn_p50": rep.sojourn_p50,
        "sojourn_p99": rep.sojourn_p99,
        "shed_frac": round(rep.shed_fraction, 4),
        "lost": rep.lost + rep.expired,
        "saturated_at": -1 if rep.saturated_at is None else rep.saturated_at,
    }


def run(
    seed: int | None = None,
    quick: bool = False,
    recorder: Recorder | None = None,
) -> Table:
    windows = 24 if quick else 60
    window_len = 8
    rates = [0.4, 2.5] if quick else [0.2, 0.5, 1.0, 1.5, 2.5]
    networks = [grid(4)] if quick else [grid(4), clique(16)]
    cfg = _config(window_len)
    table = Table(
        TITLE,
        columns=[
            "topology",
            "stream",
            "rate",
            "released",
            "commit_rate",
            "mean_backlog",
            "peak_backlog",
            "slope",
            "sojourn_p50",
            "sojourn_p99",
            "shed_frac",
            "lost",
            "saturated_at",
        ],
    )
    saturation_points: list[str] = []
    for net in networks:
        w = net.n  # object universe scales with the topology
        first_saturated: float | None = None
        last_stable: float | None = None
        for rate in rates:
            rng = spawn(seed, EXP_ID, net.topology.name, "poisson", rate)
            stream = PoissonStream(net, w=w, k=2, rate=rate, rng=rng)
            rep = run_service(
                stream, windows=windows, config=cfg,
                rng=spawn(seed, EXP_ID, net.topology.name, "svc", rate),
                recorder=recorder,
            )
            assert rep.accounted, "service lost track of a transaction"
            table.add(**_row(rep, net, "poisson", rate))
            if rep.saturated:
                if first_saturated is None:
                    first_saturated = rate
            else:
                last_stable = rate
        saturation_points.append(
            f"{net.topology.name}: stable at {last_stable}, saturated at "
            f"{first_saturated}"
            if first_saturated is not None
            else f"{net.topology.name}: stable at every swept rate"
        )
        # bursty arrivals at a stable mean rate: storms defer, queues drain
        rng = spawn(seed, EXP_ID, net.topology.name, "mmpp")
        mmpp = MMPPStream(
            net, w=w, k=2, rate_low=0.2, rate_high=1.5, switch=0.1, rng=rng
        )
        rep = run_service(
            mmpp, windows=windows, config=cfg,
            rng=spawn(seed, EXP_ID, net.topology.name, "svc-mmpp"),
            recorder=recorder,
        )
        assert rep.accounted
        table.add(**_row(rep, net, "mmpp", 0.85))
        # live faults at a sub-saturation rate: reactive engine, graceful
        horizon = windows * window_len
        plan = FaultPlan([
            NodeCrash(net.n - 1, horizon // 3),
            LinkFailure(0, 1, horizon // 4, horizon // 2),
            ObjectStall(0, horizon // 5, horizon // 5 + 2 * window_len),
        ])
        rng = spawn(seed, EXP_ID, net.topology.name, "faulty")
        stream = PoissonStream(net, w=w, k=2, rate=0.4, rng=rng)
        rep = run_service(
            stream, windows=windows, config=cfg, plan=plan,
            recorder=recorder,
        )
        assert rep.accounted
        table.add(**_row(rep, net, "poisson+faults", 0.4))
    table.add_note(
        "Continuous-arrival service (repro.service), defer backpressure at "
        "high-water 48, saturation detector horizon 6 / slope 0.4.  "
        "Below saturation the backlog stays bounded (slope ~0, finite "
        "p99 sojourn); above it the detector trips (saturated_at >= 0, "
        "-1 means never) and the service sheds load instead of diverging. "
        "Measured saturation points -- " + "; ".join(saturation_points) + ". "
        "'mmpp' is bursty traffic at a stable mean rate; 'poisson+faults' "
        "drives the reactive engine through a crash, a link failure, and "
        "an object stall (losses are typed and accounted, never silent)."
    )
    attach_metrics_note(table, recorder)
    return table
