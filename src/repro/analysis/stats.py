"""Small statistics helpers for aggregating repeated trials."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class Summary:
    """Mean / spread of a sample of trial measurements."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)

    def fmt(self, digits: int = 2) -> str:
        """``mean +/- ci`` rendering."""
        return f"{self.mean:.{digits}f}±{self.ci95_half_width:.{digits}f}"


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a non-empty sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci95_half_width=half,
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (ratios aggregate multiplicatively)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))
