"""The unified ``Report`` protocol: one shape for every measurement.

The repo produces three report dataclasses -- offline
:class:`~repro.analysis.metrics.Evaluation`, faulty-replay
:class:`~repro.faults.report.DegradationReport`, and live
:class:`~repro.online.report.OnlineDegradationReport`.  They grew
independently, so tooling (CLI export, benchmarks, tests) had to know
each one's quirks.  This module unifies them behind a structural
:class:`Report` protocol:

* ``as_dict()`` -- flat plain-data summary for table rendering,
* ``to_json()`` -- a *full-fidelity* JSON envelope
  (``{"schema_version", "kind", "report": {...}}``),
* ``from_json()`` -- classmethod inverse of ``to_json``.

Kinds are registered with the :func:`register_report` class decorator;
:func:`report_from_json` dispatches an envelope of any registered kind
back to the right class, so callers can round-trip a report without
knowing its concrete type.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, Protocol, TypeVar, runtime_checkable

from ..errors import ReproError

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "REPORT_KINDS",
    "Report",
    "register_report",
    "report_to_json",
    "report_payload",
    "report_from_json",
]

REPORT_SCHEMA_VERSION = 1

#: kind -> report class; populated by :func:`register_report`.
REPORT_KINDS: Dict[str, type] = {}

_ReportClass = TypeVar("_ReportClass", bound=type)


def register_report(kind: str) -> Callable[[_ReportClass], _ReportClass]:
    """Class decorator: register a report dataclass under ``kind``.

    The kind is the wire name used in JSON envelopes; it must be unique
    across the package (a duplicate registration is a programming error
    and raises immediately).  The decorated class gains a ``report_kind``
    class attribute; declare it ``ClassVar[str]`` on the dataclass so
    type checkers see it.
    """

    def decorate(cls: _ReportClass) -> _ReportClass:
        existing = REPORT_KINDS.get(kind)
        if existing is not None and existing is not cls:
            raise ReproError(
                f"report kind {kind!r} already registered to "
                f"{existing.__name__}"
            )
        setattr(cls, "report_kind", kind)
        REPORT_KINDS[kind] = cls
        return cls

    return decorate


@runtime_checkable
class Report(Protocol):
    """Structural interface every report satisfies.

    ``as_dict`` feeds tables (flat summary, may round), ``to_json`` /
    ``from_json`` round-trip the *complete* field set losslessly.
    """

    def as_dict(self) -> dict[str, object]: ...

    def to_json(self) -> str: ...

    @classmethod
    def from_json(cls, text: str) -> "Report": ...


def report_to_json(report: Any) -> str:
    """Serialize ``report`` into the versioned JSON envelope.

    The payload is ``dataclasses.asdict`` of the full field set (tuples
    become JSON arrays), wrapped with ``schema_version`` and ``kind`` so
    :func:`report_from_json` can dispatch it back.  Keys are sorted and
    the text is stable across runs.
    """
    kind = getattr(report, "report_kind", None)
    if kind is None or REPORT_KINDS.get(kind) is not type(report):
        raise ReproError(
            f"{type(report).__name__} is not a registered report class"
        )
    envelope = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": kind,
        "report": dataclasses.asdict(report),
    }
    return json.dumps(envelope, indent=2, sort_keys=True)


def report_payload(text: str, expected_kind: str | None = None) -> Dict[str, Any]:
    """Parse an envelope, validate it, and return the payload dict.

    Raises :class:`ReproError` on a malformed envelope, an unsupported
    schema version, an unknown kind, or (when ``expected_kind`` is
    given) a kind mismatch.
    """
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed report JSON: {exc}") from exc
    if not isinstance(envelope, dict) or "report" not in envelope:
        raise ReproError("report envelope missing 'report' payload")
    version = envelope.get("schema_version")
    if version != REPORT_SCHEMA_VERSION:
        raise ReproError(
            f"unsupported report schema_version {version!r} "
            f"(expected {REPORT_SCHEMA_VERSION})"
        )
    kind = envelope.get("kind")
    if kind not in REPORT_KINDS:
        raise ReproError(f"unknown report kind {kind!r}")
    if expected_kind is not None and kind != expected_kind:
        raise ReproError(
            f"expected report kind {expected_kind!r}, got {kind!r}"
        )
    return dict(envelope["report"])


def report_from_json(text: str) -> Any:
    """Deserialize any registered report kind from its JSON envelope."""
    _ensure_kinds_registered()
    report_payload(text)  # full envelope validation; raises on problems
    kind = json.loads(text)["kind"]
    return REPORT_KINDS[kind].from_json(text)


def _ensure_kinds_registered() -> None:
    """Import the modules that define report classes (idempotent)."""
    from . import metrics  # noqa: F401
    from ..cluster import report as _cluster_report  # noqa: F401
    from ..faults import report as _faults_report  # noqa: F401
    from ..online import report as _online_report  # noqa: F401
    from ..service import report as _service_report  # noqa: F401
