"""Measurement, aggregation, and reporting utilities."""

from .metrics import Evaluation, evaluate
from .stats import Summary, geometric_mean, summarize
from .tables import Table

__all__ = [
    "Evaluation",
    "evaluate",
    "Summary",
    "summarize",
    "geometric_mean",
    "Table",
]
