"""Measurement, aggregation, and reporting utilities."""

from .metrics import Evaluation, evaluate
from .report import (
    REPORT_KINDS,
    REPORT_SCHEMA_VERSION,
    Report,
    register_report,
    report_from_json,
    report_to_json,
)
from .stats import Summary, geometric_mean, summarize
from .tables import Table

__all__ = [
    "Evaluation",
    "evaluate",
    "Summary",
    "summarize",
    "geometric_mean",
    "Table",
    "Report",
    "REPORT_KINDS",
    "REPORT_SCHEMA_VERSION",
    "register_report",
    "report_to_json",
    "report_from_json",
]
