"""Evaluation metrics: run a scheduler on an instance, measure everything.

:func:`evaluate` is the single code path every experiment and benchmark
uses: schedule, statically validate, execute in the simulator (end-to-end
cross-check), and report makespan, the certified lower bound, the
approximation-ratio *upper bound* ``makespan / lower_bound`` (an upper
bound because OPT >= lower_bound), and communication cost.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from ..bounds.lower import makespan_lower_bound, object_report
from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.scheduler import Scheduler
from ..obs.recorder import Recorder, active
from ..sim.engine import execute
from .report import register_report, report_payload, report_to_json

__all__ = ["Evaluation", "evaluate"]


@register_report("evaluation")
@dataclass(frozen=True)
class Evaluation:
    """One scheduler-on-instance measurement."""

    scheduler: str
    makespan: int
    lower_bound: int
    communication_cost: int
    max_in_flight: int
    runtime_s: float
    meta: dict

    @property
    def ratio(self) -> float:
        """``makespan / lower_bound``: an upper bound on the true approximation ratio."""
        return self.makespan / self.lower_bound

    def as_dict(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "scheduler": self.scheduler,
            "makespan": self.makespan,
            "lower_bound": self.lower_bound,
            "ratio": round(self.ratio, 3),
            "comm_cost": self.communication_cost,
            "runtime_s": round(self.runtime_s, 4),
        }

    def as_row(self) -> dict[str, object]:
        """Deprecated alias for :meth:`as_dict` (kept for one release)."""
        warnings.warn(
            "Evaluation.as_row() is deprecated; use as_dict()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.as_dict()

    def to_json(self) -> str:
        """Full-fidelity JSON envelope (see :mod:`repro.analysis.report`)."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "Evaluation":
        """Inverse of :meth:`to_json`."""
        payload = report_payload(text, expected_kind="evaluation")
        return cls(
            scheduler=str(payload["scheduler"]),
            makespan=int(payload["makespan"]),
            lower_bound=int(payload["lower_bound"]),
            communication_cost=int(payload["communication_cost"]),
            max_in_flight=int(payload["max_in_flight"]),
            runtime_s=float(payload["runtime_s"]),
            meta=dict(payload["meta"]),
        )


def evaluate(
    scheduler: Scheduler,
    instance: Instance,
    rng: np.random.Generator | None = None,
    lower_bound: int | None = None,
    simulate: bool = True,
    recorder: Recorder | None = None,
) -> Evaluation:
    """Schedule, validate, simulate, and measure ``instance``.

    ``lower_bound`` may be supplied to avoid recomputing it when several
    schedulers are evaluated on the same instance.  ``recorder`` is an
    optional :class:`~repro.obs.Recorder`: the scheduling pass runs under
    a ``schedule`` phase timer and the simulation under the engine's
    ``route``/``execute`` timers, so one recording spans the whole
    schedule -> route -> execute pipeline.  Recording never changes the
    measured result.
    """
    rec = active(recorder)
    t0 = time.perf_counter()
    with rec.phase("schedule"):
        schedule: Schedule = scheduler.schedule(instance, rng)
    runtime = time.perf_counter() - t0
    schedule.validate()
    if lower_bound is None:
        lower_bound = makespan_lower_bound(instance, object_report(instance))
    max_in_flight = 0
    if simulate:
        trace = execute(schedule, record_commits=False, recorder=recorder)
        max_in_flight = trace.max_in_flight
        comm = trace.total_distance
    else:
        comm = schedule.communication_cost
    if rec.enabled:
        rec.count("eval.runs")
        rec.gauge("eval.makespan", schedule.makespan)
        rec.gauge("eval.lower_bound", max(lower_bound, 1))
        rec.observe("eval.ratio", schedule.makespan / max(lower_bound, 1))
    return Evaluation(
        scheduler=scheduler.name,
        makespan=schedule.makespan,
        lower_bound=max(lower_bound, 1),
        communication_cost=comm,
        max_in_flight=max_in_flight,
        runtime_s=runtime,
        meta=dict(schedule.meta),
    )
