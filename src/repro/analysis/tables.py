"""Fixed-width table rendering for experiment reports.

Experiments return a :class:`Table` (column order + row dicts); the CLI and
benches print it, and EXPERIMENTS.md embeds the rendered output verbatim,
so results stay greppable and diffable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["Table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """An ordered collection of result rows."""

    title: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        """Append a row; unknown keys are rejected to catch typos."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)} for {self.title!r}")
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        """Attach a free-form footnote."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column (missing cells skipped)."""
        return [r[name] for r in self.rows if name in r]

    def as_dict(self) -> dict[str, Any]:
        """Plain-data form for JSON export (title, columns, rows, notes)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Fixed-width text rendering."""
        widths = {c: len(c) for c in self.columns}
        rendered_rows = []
        for row in self.rows:
            cells = {c: _fmt(row.get(c, "")) for c in self.columns}
            for c, text in cells.items():
                widths[c] = max(widths[c], len(text))
            rendered_rows.append(cells)
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "  ".join("-" * widths[c] for c in self.columns)
        lines = [self.title, header, rule]
        for cells in rendered_rows:
            lines.append("  ".join(cells[c].ljust(widths[c]) for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        head = "| " + " | ".join(self.columns) + " |"
        rule = "| " + " | ".join("---" for _ in self.columns) + " |"
        lines = [head, rule]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_fmt(row.get(c, "")) for c in self.columns) + " |"
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
