"""The cluster worker process: shard service, journal, chaos, wire.

A worker is one forked process running a
:class:`~repro.service.SchedulingService` over its residue-class shard
of the shared arrival stream.  Everything it needs is in its
:class:`WorkerSpec` -- so a restarted incarnation rebuilds the *same*
deterministic world from the spec alone, recovers its progress from the
journal, and resumes as if nothing happened.

The loop per window is strictly ordered:

1. inject any chaos event pinned to this ``(worker, window)``
   (kill = ``os._exit`` with no goodbye; stall/delay = ``time.sleep``);
2. execute the window;
3. journal it (the durable commit point);
4. checkpoint every ``checkpoint_every`` windows;
5. send the ``cluster_window`` message -- the supervisor's heartbeat.

Because the journal append precedes the send, the supervisor's view can
lag the journal by at most one window; recovery always trusts the
journal, never the supervisor's memory.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import ClusterError, ReproError
from ..network.registry import network_from_sizes
from ..service import SchedulingService, ServiceConfig
from .chaos import ChaosEvent, WorkerDelay, WorkerKill, WorkerStall
from .journal import WindowJournal, accounting_digest
from .shard import ShardedStream, StreamSpec
from .wire import MSG_DONE, MSG_ERROR, MSG_HELLO, MSG_WINDOW, encode_message

__all__ = ["WorkerSpec", "worker_main"]

#: exit status of a chaos-killed worker (distinguishes injected kills
#: from genuine crashes in logs; the supervisor treats both the same)
KILL_EXIT_STATUS = 17


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker incarnation needs to rebuild its world.

    ``owned_from`` maps each owned residue class to the first stream
    step it is owned from (0 for original workers, the handoff step for
    replacements).  ``start_window`` is the first window this
    incarnation's *lineage* executes (0 unless it replaces a shed
    worker).  ``chaos`` holds only this worker's events, already
    stripped of anything that fired in a previous incarnation.
    """

    worker: int
    shards: int
    owned_from: Dict[int, int]
    topology: str
    size: int
    size2: Optional[int]
    stream: StreamSpec
    service: ServiceConfig
    windows: int
    start_window: int
    journal_path: str
    checkpoint_path: str
    checkpoint_every: int
    verify_replay: bool = True
    chaos: Tuple[ChaosEvent, ...] = field(default_factory=tuple)

    def build_service(self) -> SchedulingService:
        """Deterministically rebuild this worker's sharded service."""
        net = network_from_sizes(self.topology, self.size, self.size2)
        base = self.stream.build(net)
        sharded = ShardedStream(
            base, self.shards, dict(self.owned_from),
            assign=self.stream.assign,
        )
        return SchedulingService(sharded, self.service)


def _accounting(service: SchedulingService) -> Dict[str, int]:
    """The service's conservation counters plus the cross-shard tally.

    The single accounting view the worker journals, digests, and ships:
    journal digests in :func:`worker_main` and the replay verification
    in :func:`_recover` MUST both go through this helper, or a recovered
    worker's digest diverges from the one it journaled.
    """
    counters = service.accounting()
    counters["cross"] = int(getattr(service.stream, "cross_released", 0))
    return counters


def _recover(
    service: SchedulingService, journal: WindowJournal, spec: WorkerSpec
) -> int:
    """Restore checkpoint, replay journaled windows, verify digests.

    Returns the number of windows replayed (journal tail length).  The
    replay re-executes each journaled window deterministically; under
    ``verify_replay`` a digest mismatch means the rebuild diverged from
    the incarnation that journaled it -- a determinism bug -- and raises
    :class:`~repro.errors.ClusterError` rather than silently forking
    history.
    """
    ckpt, tail = journal.load(floor=spec.start_window)
    if ckpt is not None:
        service.restore_state(ckpt["state"])
    elif spec.start_window > 0:
        _fast_forward(service, spec)
    for rec in tail:
        window = int(rec["window"])
        if window != service.windows_run:
            raise ClusterError(
                f"worker {spec.worker}: journal replay expected window "
                f"{service.windows_run}, found {window}"
            )
        service.run_window(window)
        if spec.verify_replay:
            digest = accounting_digest(_accounting(service))
            if digest != rec["digest"]:
                raise ClusterError(
                    f"worker {spec.worker}: replay of window {window} "
                    f"diverged from the journal (digest {digest} != "
                    f"{rec['digest']}); deterministic recovery is broken"
                )
    return len(tail)


def _fast_forward(service: SchedulingService, spec: WorkerSpec) -> None:
    """Advance a fresh replacement worker to its handoff window.

    Draws (and discards) the stream prefix before ``start_window`` --
    nothing there is owned, since ``owned_from`` starts at the handoff
    step -- keeping the generator aligned with every other worker, then
    repositions the service clock.
    """
    service.stream.window(0, spec.start_window * spec.service.window)
    service.skip_to_window(spec.start_window)


def worker_main(conn: Any, spec: WorkerSpec) -> None:
    """Entry point of one worker process (also callable in-process).

    ``conn`` is the send end of the supervisor's pipe; every message is
    a versioned single-line JSON envelope from :mod:`repro.cluster.wire`.
    On any :class:`~repro.errors.ReproError` the worker sends a typed
    ``cluster_error`` notice before dying, so the supervisor can
    distinguish a logic failure (raise) from a crash (restart).
    """
    try:
        service = spec.build_service()
        journal = WindowJournal(spec.journal_path, spec.checkpoint_path)
        replayed = 0
        if journal.has_history():
            replayed = _recover(service, journal, spec)
        elif spec.start_window > 0:
            _fast_forward(service, spec)
        conn.send(encode_message(MSG_HELLO, {
            "worker": spec.worker,
            "pid": os.getpid(),
            "resumed_at": service.windows_run,
            "replayed": replayed,
        }))
        chaos_at = {e.window: e for e in spec.chaos}
        for window in range(service.windows_run, spec.windows):
            event = chaos_at.get(window)
            if isinstance(event, WorkerKill):
                os._exit(KILL_EXIT_STATUS)
            if isinstance(event, (WorkerStall, WorkerDelay)):
                time.sleep(event.seconds)
            service.run_window(window)
            cumulative = _accounting(service)
            digest = accounting_digest(cumulative)
            journal.append(window, digest, cumulative)
            if (window + 1) % spec.checkpoint_every == 0:
                journal.checkpoint(window + 1, service.snapshot_state())
            conn.send(encode_message(MSG_WINDOW, {
                "worker": spec.worker,
                "window": window,
                "digest": digest,
                "cumulative": cumulative,
            }))
        conn.send(encode_message(MSG_DONE, {
            "worker": spec.worker,
            "replayed": replayed,
            "report": service.report().to_json(),
            "sojourns": service.sojourn_samples(),
            "accounting": _accounting(service),
        }))
        conn.close()
    except ReproError as exc:
        try:
            conn.send(encode_message(MSG_ERROR, {
                "worker": spec.worker,
                "error": type(exc).__name__,
                "message": str(exc),
            }))
            conn.close()
        except (OSError, BrokenPipeError):  # pragma: no cover - dying pipe
            pass
        raise SystemExit(1)
