"""The one IPC schema: versioned JSON envelopes over process pipes.

Every byte that crosses a process boundary in this repo -- a sweep
cell's result (:mod:`repro.experiments.sweep`) or a cluster worker's
heartbeat, window result, and final report (:mod:`repro.cluster`) --
is a single-line JSON document in the standard
``{"schema_version", "kind", "body"}`` envelope from
:func:`repro.io.serialize.json_payload`.  Centralizing the build/parse
pair here means there is exactly one wire schema, tested once, instead
of each multiprocess subsystem growing its own framing quirks.

Messages are strings (not pickled objects) on purpose: the payload is
inspectable in journals and logs, a version bump is an explicit schema
change, and a corrupted frame fails with a typed
:class:`~repro.errors.ClusterError` naming the problem instead of an
unpickling traceback.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from ..errors import ClusterError
from ..io.serialize import SCHEMA_VERSION, dumps_line, json_payload

__all__ = [
    "CELL_KIND",
    "MSG_HELLO",
    "MSG_WINDOW",
    "MSG_DONE",
    "MSG_ERROR",
    "WIRE_KINDS",
    "encode_message",
    "decode_message",
]

#: one sweep worker's enveloped cell result (``experiments/sweep.py``)
CELL_KIND = "sweep_cell"

#: cluster worker start/recovery announcement (doubles as first heartbeat)
MSG_HELLO = "cluster_hello"
#: one committed window's result -- the cluster's per-window heartbeat
MSG_WINDOW = "cluster_window"
#: a worker's final :class:`~repro.service.ServiceReport`
MSG_DONE = "cluster_done"
#: a worker's typed failure notice (sent before the process dies)
MSG_ERROR = "cluster_error"

#: every kind that may legally appear on a pipe
WIRE_KINDS = (CELL_KIND, MSG_HELLO, MSG_WINDOW, MSG_DONE, MSG_ERROR)


def encode_message(kind: str, body: Dict[str, Any]) -> str:
    """Envelope ``body`` as a single-line wire message of ``kind``."""
    if kind not in WIRE_KINDS:
        raise ClusterError(
            f"unknown wire kind {kind!r}; choose from {WIRE_KINDS}"
        )
    return dumps_line(json_payload(kind, body))


def decode_message(
    text: str, expected_kind: str | None = None
) -> Tuple[str, Dict[str, Any]]:
    """Parse and validate one wire message; returns ``(kind, body)``.

    Raises :class:`~repro.errors.ClusterError` on malformed JSON, an
    unsupported ``schema_version``, an unknown kind, a missing body, or
    (when ``expected_kind`` is given) a kind mismatch.
    """
    try:
        payload = json.loads(text)
    except (TypeError, json.JSONDecodeError) as exc:
        raise ClusterError(f"malformed wire message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ClusterError(
            f"wire message must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ClusterError(
            f"unsupported wire schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    kind = payload.get("kind")
    if kind not in WIRE_KINDS:
        raise ClusterError(
            f"unknown wire kind {kind!r}; choose from {WIRE_KINDS}"
        )
    if expected_kind is not None and kind != expected_kind:
        raise ClusterError(
            f"expected wire kind {expected_kind!r}, got {kind!r}"
        )
    if "body" not in payload:
        raise ClusterError(f"wire message of kind {kind!r} missing 'body'")
    return kind, payload["body"]
