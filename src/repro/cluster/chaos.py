"""Deterministic chaos injection for the worker cluster.

A :class:`ChaosPlan` is the process-level sibling of the runtime
:class:`~repro.faults.plan.FaultPlan`: a declarative list of events,
each pinned to a ``(worker, window)`` coordinate, validated up front,
and injected at a deterministic point in the worker's loop (immediately
before it executes that window).  Because every event fires at a known
window boundary, the *outcome* of recovery is deterministic even though
the supervisor's detection latency is wall-clock: a killed worker always
restarts from its journal at exactly the window it died on, so the
cluster commits the same transaction set as the fault-free run.

Three event kinds cover the failure modes the supervisor must survive:

* :class:`WorkerKill` -- the process dies instantly (``os._exit``), no
  goodbye message, simulating a crash/OOM-kill;
* :class:`WorkerStall` -- the process sleeps past the heartbeat timeout,
  simulating a livelocked or GC-wedged worker (straggler);
* :class:`WorkerDelay` -- a short sleep *below* the heartbeat timeout,
  simulating transient slowness that must NOT trigger recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Tuple, Union

from ..errors import ClusterError

__all__ = ["WorkerKill", "WorkerStall", "WorkerDelay", "ChaosPlan"]


@dataclass(frozen=True)
class WorkerKill:
    """Kill worker ``worker`` immediately before it executes ``window``."""

    worker: int
    window: int

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data form for reports and CLI echoes."""
        return {"kind": "kill", "worker": self.worker, "window": self.window}


@dataclass(frozen=True)
class WorkerStall:
    """Stall worker ``worker`` for ``seconds`` before window ``window``.

    Pick ``seconds`` well above the supervisor's heartbeat timeout (the
    default effectively means "forever") so the straggler detector is
    guaranteed to fire and the handling path is exercised.
    """

    worker: int
    window: int
    seconds: float = 3600.0

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data form for reports and CLI echoes."""
        return {
            "kind": "stall",
            "worker": self.worker,
            "window": self.window,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class WorkerDelay:
    """Delay worker ``worker`` by ``seconds`` before window ``window``.

    Must stay below the heartbeat timeout: the point of a delay event is
    proving the supervisor does *not* overreact to transient slowness.
    """

    worker: int
    window: int
    seconds: float = 0.1

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data form for reports and CLI echoes."""
        return {
            "kind": "delay",
            "worker": self.worker,
            "window": self.window,
            "seconds": self.seconds,
        }


ChaosEvent = Union[WorkerKill, WorkerStall, WorkerDelay]


class ChaosPlan:
    """A validated, ordered set of chaos events for one cluster run.

    Events are stored sorted by ``(window, worker, kind)`` so the plan's
    serialized form is stable regardless of construction order.  At most
    one event may target a given ``(worker, window)`` coordinate --
    overlapping injections would make the fired/unfired bookkeeping on
    restart ambiguous.
    """

    def __init__(self, events: Iterable[ChaosEvent] = ()) -> None:
        evts = list(events)
        for e in evts:
            if not isinstance(e, (WorkerKill, WorkerStall, WorkerDelay)):
                raise ClusterError(
                    f"unknown chaos event type {type(e).__name__}"
                )
            if e.worker < 0:
                raise ClusterError(f"chaos worker must be >= 0, got {e.worker}")
            if e.window < 0:
                raise ClusterError(f"chaos window must be >= 0, got {e.window}")
            if isinstance(e, (WorkerStall, WorkerDelay)) and e.seconds <= 0:
                raise ClusterError(
                    f"chaos seconds must be positive, got {e.seconds}"
                )
        coords = [(e.worker, e.window) for e in evts]
        if len(set(coords)) != len(coords):
            dupes = sorted({c for c in coords if coords.count(c) > 1})
            raise ClusterError(
                f"chaos plan targets (worker, window) {dupes} more than once"
            )
        self.events: Tuple[ChaosEvent, ...] = tuple(
            sorted(evts, key=lambda e: (e.window, e.worker, type(e).__name__))
        )

    def __len__(self) -> int:
        return len(self.events)

    def validate_against(self, workers: int, windows: int) -> None:
        """Check every event targets a real worker and a real window."""
        for e in self.events:
            if e.worker >= workers:
                raise ClusterError(
                    f"chaos event targets worker {e.worker}, but the "
                    f"cluster has workers 0..{workers - 1}"
                )
            if e.window >= windows:
                raise ClusterError(
                    f"chaos event targets window {e.window}, but the run "
                    f"has windows 0..{windows - 1}"
                )

    def for_worker(self, worker: int) -> Tuple[ChaosEvent, ...]:
        """The events aimed at one worker, in window order."""
        return tuple(e for e in self.events if e.worker == worker)

    def as_dicts(self) -> Tuple[Dict[str, Any], ...]:
        """Plain-data form of every event (stable order)."""
        return tuple(e.as_dict() for e in self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChaosPlan({list(self.events)!r})"
