"""The cluster supervisor: fork, watch, restart, merge.

:func:`run_cluster` forks one worker process per residue class of the
shared arrival stream, then runs a single event loop over the workers'
pipes and process sentinels:

* every ``cluster_window`` message is both a result and a heartbeat --
  it advances the worker's journaled-progress watermark and resets its
  liveness clock;
* a dead process (sentinel fired, no ``cluster_done``) is a **crash**:
  within the per-worker :class:`~repro.faults.backoff.RetryPolicy`
  budget the worker is restarted -- after a deterministic backoff --
  from its journal, with already-fired chaos events stripped so an
  injected kill cannot re-fire after replay; past the budget it is
  retired with its queued work counted ``lost`` (or, under
  ``on_crash="strict"``, :class:`~repro.errors.WorkerCrashError`);
* a silent-but-alive process past ``heartbeat_timeout_s`` is a
  **straggler**: killed and restarted from its journal
  (``on_straggler="restart"``), or shed -- its journaled backlog counted
  ``shed`` and a replacement worker spawned owning its residue class
  from the stall window onward (``"shed"``), or escalated
  (``"strict"``, :class:`~repro.errors.HeartbeatTimeoutError`).

Recovery acts at window boundaries and replays a deterministic journal,
so although *detection* is wall-clock, the recovered *outcome* is not:
a kill-chaos run produces a :class:`~repro.cluster.ClusterReport` whose
:meth:`~repro.cluster.ClusterReport.parity_key` is bit-identical to the
fault-free run's.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ClusterError, HeartbeatTimeoutError, WorkerCrashError
from ..obs.recorder import Recorder, active
from ..service import ServiceConfig, ServiceReport
from .chaos import ChaosPlan
from .config import ClusterConfig
from .report import ClusterReport
from .shard import StreamSpec
from .wire import MSG_DONE, MSG_ERROR, MSG_HELLO, MSG_WINDOW, decode_message
from .worker import WorkerSpec, worker_main

__all__ = ["run_cluster"]


def _percentile(sorted_values: List[int], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return float(sorted_values[rank])


_EMPTY_ACCOUNTING = {
    "released": 0, "committed": 0, "shed": 0,
    "expired": 0, "lost": 0, "backlog": 0, "cross": 0,
}


@dataclass
class _Worker:
    """One worker slot's live supervision state (spans incarnations)."""

    spec: WorkerSpec
    proc: Any = None
    conn: Any = None
    restarts: int = 0
    last_heard: float = 0.0
    last_window: int = -1  # highest window the supervisor saw journaled
    cumulative: Dict[str, int] = field(
        default_factory=lambda: dict(_EMPTY_ACCOUNTING)
    )
    replayed: int = 0
    end: Optional[str] = None  # None while live; "done"|"retired"|"shed"
    report: Optional[ServiceReport] = None
    sojourns: List[int] = field(default_factory=list)
    final: Optional[Dict[str, int]] = None

    @property
    def live(self) -> bool:
        return self.end is None


class _Supervisor:
    """Implementation of :func:`run_cluster` (one instance per call)."""

    def __init__(
        self,
        topology: str,
        size: int,
        size2: Optional[int],
        stream: StreamSpec,
        service: ServiceConfig,
        config: ClusterConfig,
        chaos: ChaosPlan,
        recorder: Optional[Recorder],
    ) -> None:
        chaos.validate_against(config.workers, config.windows)
        self.topology, self.size, self.size2 = topology, size, size2
        self.stream, self.service, self.config = stream, service, config
        self.chaos = chaos
        self.rec = active(recorder)
        self.ctx = mp.get_context("fork")
        self.workers: List[_Worker] = []
        self.total_restarts = 0
        self.stragglers = 0
        self._next_slot = config.workers  # ids for replacement workers

    # ------------------------------------------------------------------ #
    # spawning
    # ------------------------------------------------------------------ #

    def _initial_spec(self, worker: int, journal_dir: Path) -> WorkerSpec:
        return WorkerSpec(
            worker=worker,
            shards=self.config.workers,
            owned_from={worker: 0},
            topology=self.topology,
            size=self.size,
            size2=self.size2,
            stream=self.stream,
            service=self.service,
            windows=self.config.windows,
            start_window=0,
            journal_path=str(journal_dir / f"worker-{worker}.journal.jsonl"),
            checkpoint_path=str(journal_dir / f"worker-{worker}.ckpt.json"),
            checkpoint_every=self.config.checkpoint_every,
            verify_replay=self.config.verify_replay,
            chaos=self.chaos.for_worker(worker),
        )

    def _spawn(self, state: _Worker) -> None:
        recv, send = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(
            target=worker_main,
            args=(send, state.spec),
            name=f"cluster-worker-{state.spec.worker}",
            daemon=True,
        )
        proc.start()
        send.close()  # the child holds the send end now
        state.proc, state.conn = proc, recv
        state.last_heard = time.monotonic()

    def _respawn(self, state: _Worker, crash_window: int) -> None:
        """Restart a slot from its journal, stripping fired chaos.

        ``crash_window`` is the window the dead incarnation was on;
        events at or before it already fired (the kill that killed it
        fired *at* it) and must not re-fire after replay reaches that
        window again.
        """
        state.spec = replace(
            state.spec,
            chaos=tuple(
                e for e in state.spec.chaos if e.window > crash_window
            ),
        )
        wait = self.config.retry.wait(min(
            state.restarts, self.config.retry.max_retries
        ))
        time.sleep(wait * self.config.restart_backoff_s)
        state.restarts += 1
        self.total_restarts += 1
        self.rec.count("cluster.restarts")
        self._spawn(state)

    # ------------------------------------------------------------------ #
    # failure handling
    # ------------------------------------------------------------------ #

    def _reap(self, state: _Worker) -> None:
        if state.conn is not None:
            state.conn.close()
            state.conn = None
        if state.proc is not None:
            state.proc.join(timeout=5.0)
            state.proc = None

    def _on_crash(self, state: _Worker) -> None:
        """A worker process died without sending ``cluster_done``."""
        self._reap(state)
        worker = state.spec.worker
        if self.config.on_crash == "strict":
            raise WorkerCrashError(
                f"worker {worker} died at window {state.last_window + 1} "
                f"(crash policy is strict)"
            )
        if state.restarts >= self.config.retry.max_retries:
            # budget exhausted: retire the slot, queued work becomes loss
            state.end = "retired"
            state.final = dict(state.cumulative)
            state.final["lost"] += state.final.pop("backlog")
            state.final["backlog"] = 0
            self.rec.count("cluster.retired")
            return
        self._respawn(state, crash_window=state.last_window + 1)

    def _on_straggler(self, state: _Worker) -> None:
        """A live worker went silent past the heartbeat timeout."""
        self.stragglers += 1
        self.rec.count("cluster.stragglers")
        worker = state.spec.worker
        stall_window = state.last_window + 1
        if self.config.on_straggler == "strict":
            raise HeartbeatTimeoutError(
                f"worker {worker} sent nothing for "
                f"{self.config.heartbeat_timeout_s:.1f}s (stalled before "
                f"window {stall_window}; straggler policy is strict)"
            )
        state.proc.kill()
        self._reap(state)
        if self.config.on_straggler == "restart":
            self._respawn(state, crash_window=stall_window)
            return
        # shed: retire the stalled worker (its queued work is typed shed
        # load) and hand its residue classes to a fresh replacement that
        # owns them from the stall window onward.
        state.end = "shed"
        state.final = dict(state.cumulative)
        state.final["shed"] += state.final.pop("backlog")
        state.final["backlog"] = 0
        handoff_step = stall_window * self.service.window
        replacement = _Worker(spec=replace(
            state.spec,
            worker=self._next_slot,
            owned_from={
                c: max(s, handoff_step)
                for c, s in state.spec.owned_from.items()
            },
            start_window=stall_window,
            journal_path=str(
                Path(state.spec.journal_path).with_name(
                    f"worker-{self._next_slot}.journal.jsonl"
                )
            ),
            checkpoint_path=str(
                Path(state.spec.journal_path).with_name(
                    f"worker-{self._next_slot}.ckpt.json"
                )
            ),
            chaos=tuple(
                e for e in state.spec.chaos if e.window > stall_window
            ),
        ))
        replacement.last_window = stall_window - 1
        self._next_slot += 1
        self.workers.append(replacement)
        self._spawn(replacement)

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #

    def _on_message(self, state: _Worker, text: str) -> None:
        kind, body = decode_message(text)
        state.last_heard = time.monotonic()
        if kind == MSG_HELLO:
            state.replayed += int(body["replayed"])
        elif kind == MSG_WINDOW:
            state.last_window = max(state.last_window, int(body["window"]))
            state.cumulative = {
                k: int(v) for k, v in body["cumulative"].items()
            }
            self.rec.count("cluster.windows")
        elif kind == MSG_DONE:
            state.end = "done"
            state.report = ServiceReport.from_json(body["report"])
            state.sojourns = [int(s) for s in body["sojourns"]]
            state.final = {k: int(v) for k, v in body["accounting"].items()}
            self._reap(state)
        elif kind == MSG_ERROR:
            self._reap(state)
            raise ClusterError(
                f"worker {body['worker']} failed with {body['error']}: "
                f"{body['message']}"
            )

    # ------------------------------------------------------------------ #
    # the event loop
    # ------------------------------------------------------------------ #

    def _drain(self, state: _Worker) -> bool:
        """Read every buffered message from one pipe; False on EOF."""
        while state.conn is not None and state.conn.poll():
            try:
                text = state.conn.recv()
            except EOFError:
                return False
            self._on_message(state, text)
        return True

    def run(self, journal_dir: Path) -> None:
        self.workers = [
            _Worker(spec=self._initial_spec(i, journal_dir))
            for i in range(self.config.workers)
        ]
        for state in self.workers:
            self._spawn(state)
        try:
            while any(w.live for w in self.workers):
                live = [w for w in self.workers if w.live]
                waitables = [w.conn for w in live if w.conn is not None]
                waitables += [
                    w.proc.sentinel for w in live if w.proc is not None
                ]
                connection_wait(waitables, timeout=self.config.poll_interval_s)
                now = time.monotonic()
                for state in list(live):
                    if not state.live:
                        continue
                    eof = not self._drain(state)
                    if not state.live:
                        continue
                    dead = state.proc is not None and not state.proc.is_alive()
                    if eof or dead:
                        # the pipe may have delivered DONE between the
                        # drain and the exit; drain once more to be sure
                        self._drain(state)
                        if state.live:
                            self._on_crash(state)
                        continue
                    if (
                        now - state.last_heard
                        > self.config.heartbeat_timeout_s
                    ):
                        self._on_straggler(state)
        finally:
            for state in self.workers:
                if state.proc is not None and state.proc.is_alive():
                    state.proc.kill()
                self._reap(state)

    # ------------------------------------------------------------------ #
    # merging
    # ------------------------------------------------------------------ #

    def merge(self, wall_s: float) -> ClusterReport:
        totals = dict(_EMPTY_ACCOUNTING)
        sojourns: List[int] = []
        per_worker: List[Dict[str, Any]] = []
        for state in self.workers:
            final = state.final if state.final is not None else dict(
                state.cumulative
            )
            for key, value in final.items():
                totals[key] += value
            sojourns.extend(state.sojourns)
            per_worker.append({
                "worker": state.spec.worker,
                "classes": sorted(state.spec.owned_from),
                "start_window": state.spec.start_window,
                "released": final["released"],
                "committed": final["committed"],
                "shed": final["shed"],
                "expired": final["expired"],
                "lost": final["lost"],
                "final_backlog": final["backlog"],
                "cross": final.get("cross", 0),
                "end": state.end or "lost",
                "restarts": state.restarts,
                "replayed": state.replayed,
            })
        sojourns.sort()
        if totals["cross"]:
            self.rec.count("cluster.cross_shard", totals["cross"])
        engine = (
            self.service.engine if self.service.engine != "auto" else "batch"
        )
        return ClusterReport(
            topology=self.topology,
            engine=engine,
            stream=self.stream.kind,
            workers=self.config.workers,
            windows=self.config.windows,
            window_len=self.service.window,
            seed=self.stream.seed,
            released=totals["released"],
            committed=totals["committed"],
            shed=totals["shed"],
            expired=totals["expired"],
            lost=totals["lost"],
            final_backlog=totals["backlog"],
            sojourn_p50=_percentile(sojourns, 0.50),
            sojourn_p99=_percentile(sojourns, 0.99),
            sojourn_mean=(
                sum(sojourns) / len(sojourns) if sojourns else 0.0
            ),
            sojourn_max=max(sojourns, default=0),
            per_worker=tuple(per_worker),
            chaos=self.chaos.as_dicts(),
            restarts=self.total_restarts,
            stragglers=self.stragglers,
            wall_s=round(wall_s, 6),
            cross_shard=totals["cross"],
        )


def run_cluster(
    topology: str = "grid",
    size: int = 3,
    size2: Optional[int] = None,
    stream: StreamSpec | None = None,
    service: ServiceConfig | None = None,
    config: ClusterConfig | None = None,
    chaos: ChaosPlan | None = None,
    recorder: Optional[Recorder] = None,
) -> ClusterReport:
    """Run a supervised multi-process scheduling cluster to completion.

    Forks ``config.workers`` processes, each serving one residue class
    of the arrival stream described by ``stream`` on the named topology,
    supervises them (heartbeats, bounded restarts, journaled recovery,
    optional ``chaos`` injection), and merges their accounting into one
    :class:`~repro.cluster.ClusterReport`.  The cluster-wide identity
    ``committed + shed + expired + lost + final_backlog == released``
    holds on the returned report regardless of how many workers crashed,
    stalled, or were shed along the way.
    """
    stream = stream if stream is not None else StreamSpec()
    service = service if service is not None else ServiceConfig()
    config = config if config is not None else ClusterConfig()
    chaos = chaos if chaos is not None else ChaosPlan()
    sup = _Supervisor(
        topology, size, size2, stream, service, config, chaos, recorder
    )
    owns_dir = config.journal_dir is None
    journal_dir = Path(
        tempfile.mkdtemp(prefix="repro-cluster-")
        if owns_dir else config.journal_dir
    )
    journal_dir.mkdir(parents=True, exist_ok=True)
    start = time.monotonic()
    try:
        sup.run(journal_dir)
    finally:
        if owns_dir:
            shutil.rmtree(journal_dir, ignore_errors=True)
    report = sup.merge(time.monotonic() - start)
    if not report.accounted:
        raise ClusterError(
            f"cluster accounting identity violated: committed "
            f"{report.committed} + shed {report.shed} + expired "
            f"{report.expired} + lost {report.lost} + backlog "
            f"{report.final_backlog} != released {report.released}"
        )
    return report
