"""Crash-tolerant multi-process scheduling cluster.

A supervisor (:func:`run_cluster`) forks N worker processes, each
running a :class:`~repro.service.SchedulingService` over a deterministic
residue-class shard of the shared arrival stream, and keeps the fleet
healthy: heartbeat liveness detection, bounded deterministic restarts
(:class:`~repro.faults.backoff.RetryPolicy`), per-worker write-ahead
window journals with checkpoints so a crashed worker replays exactly
where it left off, straggler shedding with ownership handoff, and
deterministic chaos injection (:class:`ChaosPlan`) to prove all of it.

The headline guarantee: a run with injected kills commits the same
transaction set as the fault-free run -- the merged
:class:`ClusterReport`'s :meth:`~ClusterReport.parity_key` is
bit-identical -- and the cluster-wide conservation identity
``committed + shed + expired + lost + final_backlog == released``
holds exactly under every supported failure mode.
"""

from ..service.config import LoadControl
from .chaos import ChaosPlan, WorkerDelay, WorkerKill, WorkerStall
from .config import ClusterConfig, build_network
from .journal import WindowJournal, accounting_digest
from .report import ClusterReport
from .shard import ShardedStream, StreamSpec
from .supervisor import run_cluster
from .worker import WorkerSpec, worker_main

__all__ = [
    "ChaosPlan",
    "ClusterConfig",
    "ClusterReport",
    "LoadControl",
    "ShardedStream",
    "StreamSpec",
    "WindowJournal",
    "WorkerDelay",
    "WorkerKill",
    "WorkerSpec",
    "WorkerStall",
    "accounting_digest",
    "build_network",
    "run_cluster",
    "worker_main",
]
