"""Per-worker write-ahead window journal and checkpoint.

Recovery contract: a worker's execution is fully deterministic given
its spec (stream seed, shard, service config), so its *state* never
needs to cross a process boundary -- only its *progress* does.  The
journal records that progress durably:

* after every committed window, one append-only JSONL record
  ``{window, digest, cumulative}`` -- the window index, a SHA-256
  digest of the service's cumulative accounting, and the accounting
  counters themselves;
* every ``checkpoint_every`` windows, a full
  :meth:`~repro.service.SchedulingService.snapshot_state` checkpoint,
  written atomically (temp file + rename) so a crash mid-checkpoint
  leaves the previous one intact.

A restarted worker loads the newest checkpoint, re-executes the
journaled windows after it (deterministic, so bit-identical), verifies
each re-executed window's digest against the journal -- divergence is a
determinism bug and raises :class:`~repro.errors.ClusterError` rather
than silently corrupting the run -- and resumes live at the first
un-journaled window.  The cluster therefore commits exactly the same
transaction set with or without the crash.

Both files use the standard versioned JSON envelopes
(:func:`repro.io.serialize.json_payload`); a torn tail record from a
crash mid-append is dropped by :func:`repro.io.serialize.read_jsonl`,
which is precisely write-ahead semantics: the window either journaled
completely or never happened.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ClusterError
from ..io.serialize import (
    append_jsonl,
    dumps_canonical,
    dumps_line,
    json_payload,
    read_json,
    read_jsonl,
)

__all__ = ["WindowJournal", "accounting_digest"]

#: envelope kind of one journaled window record
JOURNAL_KIND = "cluster_journal"
#: envelope kind of a checkpoint document
CHECKPOINT_KIND = "cluster_checkpoint"


def accounting_digest(cumulative: Dict[str, Any]) -> str:
    """Short stable digest of one window's cumulative accounting."""
    return hashlib.sha256(
        dumps_line(dict(cumulative)).encode("utf-8")
    ).hexdigest()[:16]


class WindowJournal:
    """Append-only window WAL plus an atomically-replaced checkpoint.

    One journal belongs to one worker id for the lifetime of a cluster
    run; successive incarnations of the worker (after crashes) reopen
    the same files.  ``append`` must be called *after* the window's
    effects are final -- the record is the commit point.
    """

    def __init__(self, journal_path: str | Path, checkpoint_path: str | Path) -> None:
        self.journal_path = Path(journal_path)
        self.checkpoint_path = Path(checkpoint_path)

    def has_history(self) -> bool:
        """True iff a previous incarnation journaled anything."""
        return self.journal_path.exists() or self.checkpoint_path.exists()

    def append(
        self, window: int, digest: str, cumulative: Dict[str, Any]
    ) -> None:
        """Durably record one committed window (the WAL commit point)."""
        append_jsonl(
            self.journal_path,
            JOURNAL_KIND,
            {"window": int(window), "digest": digest,
             "cumulative": dict(cumulative)},
        )

    def checkpoint(self, window: int, state: Dict[str, Any]) -> None:
        """Atomically replace the checkpoint with state *after* ``window``.

        ``state`` is a full service snapshot taken at the boundary after
        window ``window`` committed; the temp-file + ``os.replace`` dance
        guarantees a crash mid-write preserves the previous checkpoint.
        """
        doc = dumps_canonical(
            json_payload(
                CHECKPOINT_KIND,
                {"window": int(window), "state": state},
            )
        )
        tmp = self.checkpoint_path.with_suffix(".tmp")
        tmp.write_text(doc, encoding="utf-8")
        os.replace(tmp, self.checkpoint_path)

    def load(
        self, floor: int = 0
    ) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
        """Read ``(checkpoint_body | None, journal records past it)``.

        Records are returned sorted by window, de-duplicated (replays
        re-verify rather than re-append, but a crash between append and
        send may leave the same window journaled once -- never twice with
        different digests), and filtered to windows at or beyond the
        checkpoint.  ``floor`` is the worker's start window, used only
        when no checkpoint exists yet (a replacement worker's journal
        legitimately begins mid-run).  A contiguity gap means the journal
        was externally mutilated and raises
        :class:`~repro.errors.ClusterError`.
        """
        ckpt: Optional[Dict[str, Any]] = None
        if self.checkpoint_path.exists():
            ckpt = read_json(self.checkpoint_path, CHECKPOINT_KIND)
        records: List[Dict[str, Any]] = []
        if self.journal_path.exists():
            records = read_jsonl(self.journal_path, JOURNAL_KIND)
        by_window: Dict[int, Dict[str, Any]] = {}
        for rec in records:
            w = int(rec["window"])
            prev = by_window.get(w)
            if prev is not None and prev["digest"] != rec["digest"]:
                raise ClusterError(
                    f"journal {self.journal_path} has conflicting records "
                    f"for window {w}: {prev['digest']} != {rec['digest']}"
                )
            by_window[w] = rec
        if ckpt is not None:
            floor = int(ckpt["window"])
        tail = [by_window[w] for w in sorted(by_window) if w >= floor]
        expect = floor
        for rec in tail:
            if int(rec["window"]) != expect:
                raise ClusterError(
                    f"journal {self.journal_path} has a gap: expected "
                    f"window {expect}, found {rec['window']}"
                )
            expect += 1
        return ckpt, tail
