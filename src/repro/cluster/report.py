"""Cluster reports: what N supervised workers jointly committed.

:class:`ClusterReport` merges the per-worker
:class:`~repro.service.ServiceReport` accounting into cluster-wide
totals and latency percentiles, and carries the supervision story on
the side: which chaos events were planned, how many restarts the
supervisor performed, which workers were retired or shed.  The
cluster-wide conservation identity ``committed + shed + expired + lost
+ final_backlog == released`` holds exactly -- recovery may *move*
transactions between outcome buckets (a shed straggler's queue becomes
typed loss) but never drops one.

Parity is the crash-tolerance proof: :meth:`ClusterReport.parity_key`
covers only the *outcome* fields (totals, per-worker accounting,
latency percentiles) and excludes the chaos plan, restart counts, and
wall timings, so a kill-chaos run compares bit-equal to the fault-free
run -- the same split the sweep report makes between results and
``profiles``.

Registered as report kind ``"cluster"`` in the unified Report protocol
(:mod:`repro.analysis.report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Tuple

from ..analysis.report import register_report, report_payload, report_to_json

__all__ = ["ClusterReport"]


@register_report("cluster")
@dataclass(frozen=True)
class ClusterReport:
    """Merged accounting for one supervised multi-process run.

    ``per_worker`` holds one outcome summary per worker slot (final
    incarnation): its residue class ownership, full accounting, and
    how it ended (``"done"``, ``"retired"``, or ``"shed"``).
    ``restarts``, ``stragglers``, ``chaos``, and ``wall_s`` describe
    the *path* taken, not the outcome, and are excluded from parity.
    """

    report_kind: ClassVar[str]  # set by @register_report

    topology: str
    engine: str
    stream: str
    workers: int
    windows: int
    window_len: int
    seed: int
    released: int
    committed: int
    shed: int
    expired: int
    lost: int
    final_backlog: int
    sojourn_p50: float
    sojourn_p99: float
    sojourn_mean: float
    sojourn_max: int
    per_worker: Tuple[Dict[str, Any], ...]
    chaos: Tuple[Dict[str, Any], ...]
    restarts: int
    stragglers: int
    wall_s: float
    # cross-shard coordination traffic under StreamSpec(assign="shard")
    # (0 otherwise); defaulted so pre-1.1.0 report JSON still loads
    cross_shard: int = 0

    @property
    def accounted(self) -> bool:
        """The cluster-wide conservation identity: nothing silently dropped."""
        return (
            self.committed + self.shed + self.expired + self.lost
            + self.final_backlog
            == self.released
        )

    @property
    def commit_rate(self) -> float:
        """Fraction of released transactions that committed."""
        return self.committed / self.released if self.released else 1.0

    def parity_key(self) -> Dict[str, Any]:
        """Outcome-only view for bit-parity comparisons across fault plans.

        Excludes ``chaos``, ``restarts``, ``stragglers``, and ``wall_s``:
        a run that crashed and recovered must produce the same key as the
        run that never crashed.  Per-worker entries keep their accounting
        but drop their own path fields (restart counts, end states).
        """
        return {
            "topology": self.topology,
            "engine": self.engine,
            "stream": self.stream,
            "workers": self.workers,
            "windows": self.windows,
            "window_len": self.window_len,
            "seed": self.seed,
            "released": self.released,
            "committed": self.committed,
            "shed": self.shed,
            "expired": self.expired,
            "lost": self.lost,
            "final_backlog": self.final_backlog,
            "sojourn_p50": self.sojourn_p50,
            "sojourn_p99": self.sojourn_p99,
            "sojourn_mean": self.sojourn_mean,
            "sojourn_max": self.sojourn_max,
            "cross_shard": self.cross_shard,
            "per_worker": tuple(
                {
                    k: v
                    for k, v in w.items()
                    if k not in ("restarts", "end", "replayed")
                }
                for w in self.per_worker
            ),
        }

    def as_dict(self) -> Dict[str, Any]:
        """Plain-data summary for tables."""
        return {
            "topology": self.topology,
            "workers": self.workers,
            "windows": self.windows,
            "released": self.released,
            "committed": self.committed,
            "shed": self.shed,
            "expired": self.expired,
            "lost": self.lost,
            "final_backlog": self.final_backlog,
            "cross_shard": self.cross_shard,
            "commit_rate": self.commit_rate,
            "sojourn_p50": self.sojourn_p50,
            "sojourn_p99": self.sojourn_p99,
            "restarts": self.restarts,
            "stragglers": self.stragglers,
            "chaos_events": len(self.chaos),
        }

    def to_json(self) -> str:
        """Full-fidelity JSON envelope (see :mod:`repro.analysis.report`)."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "ClusterReport":
        """Inverse of :meth:`to_json`."""
        payload = report_payload(text, expected_kind="cluster")
        payload["per_worker"] = tuple(payload["per_worker"])
        payload["chaos"] = tuple(payload["chaos"])
        return cls(**payload)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        path = (
            f"{len(self.chaos)} chaos events, {self.restarts} restarts, "
            f"{self.stragglers} stragglers"
            if self.chaos or self.restarts or self.stragglers
            else "no faults"
        )
        lines = [
            f"cluster[{self.engine}] on {self.topology}: {self.workers} "
            f"workers x {self.windows} windows ({self.stream} stream, "
            f"seed {self.seed}); {path}",
            f"committed {self.committed}/{self.released} "
            f"(shed {self.shed}, expired {self.expired}, lost {self.lost}, "
            f"queued {self.final_backlog}, cross-shard {self.cross_shard}) "
            f"[{'accounted' if self.accounted else 'LEAK'}]",
            f"sojourn: p50 {self.sojourn_p50:.1f}, p99 "
            f"{self.sojourn_p99:.1f}, mean {self.sojourn_mean:.1f}, "
            f"max {self.sojourn_max}; wall {self.wall_s:.2f}s",
        ]
        for w in self.per_worker:
            lines.append(
                f"  worker {w['worker']}: committed {w['committed']}, "
                f"shed {w['shed']}, expired {w['expired']}, "
                f"lost {w['lost']}, queued {w['final_backlog']} "
                f"({w['end']}, {w['restarts']} restarts)"
            )
        return "\n".join(lines)
