"""Deterministic arrival-stream sharding for cluster workers.

Every worker owns a residue class of *assignment classes*: worker ``i``
of ``N`` processes exactly the arrivals whose class is ``i (mod N)``.
Rather than have the supervisor generate and ship arrivals (a bandwidth
and ordering headache), each worker builds the *identical* base stream
from the shared :class:`StreamSpec` -- same seed, same generator, same
arrival sequence -- and filters it down to its residue classes with a
:class:`ShardedStream`.  The shards are therefore disjoint, their union
is exactly the unsharded sequence, and a restarted worker re-derives
its slice from the spec alone (no arrival replay traffic).

Two assignment modes (``StreamSpec.assign``):

* ``"tid"`` (default) -- the class is ``tid`` itself: round-robin over
  workers, topology-agnostic.
* ``"shard"`` -- the class is the transaction's **coordinator shard**:
  the smallest network shard homing any of its objects (its host node's
  shard when it touches none).  On a sharded topology family
  (``shard-cluster``/``fog-hierarchy``/``cluster``) this is the
  blockchain-sharding handoff: every cross-shard transaction is routed
  to exactly one deterministic coordinator, each worker's ``cross``
  counter tallies the cross-shard traffic it owns, and the supervisor's
  merge reconstructs the cluster-wide cross-shard volume.

Ownership is windowed: ``owned_from`` maps each owned residue class to
the first stream *step* the worker owns it from.  A replacement worker
spawned after a straggler is shed takes over the retired worker's class
from the handoff window onward (``owned_from = {c: handoff_step}``),
so every arrival is owned by exactly one worker across the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ClusterError
from ..network.graph import Network
from ..network.sharding import node_shards
from ..online.arrivals import TimedTransaction
from ..workloads.seeds import spawn
from ..workloads.streams import (
    AdversarialStream,
    ArrivalStream,
    MMPPStream,
    PoissonStream,
)

__all__ = ["StreamSpec", "ShardedStream"]

_STREAM_KINDS = ("poisson", "mmpp", "adversarial")
_ASSIGN_MODES = ("tid", "shard")


@dataclass(frozen=True)
class StreamSpec:
    """A picklable recipe for one arrival process.

    Workers rebuild their streams from this spec in their own process,
    so it carries everything but the network: the process kind, the
    object universe ``w`` and per-transaction object count ``k``, the
    rate parameters, and the seed.  :meth:`build` is deterministic --
    every call yields a stream producing the identical sequence.
    """

    kind: str = "poisson"
    w: int = 16
    k: int = 2
    rate: float = 0.5
    rate_low: float = 0.125
    rate_high: float = 1.0
    switch: float = 0.1
    burst: int = 4
    seed: int = 0
    limit: Optional[int] = None
    assign: str = "tid"

    def __post_init__(self) -> None:
        if self.kind not in _STREAM_KINDS:
            raise ClusterError(
                f"unknown stream kind {self.kind!r}; choose from "
                f"{_STREAM_KINDS}"
            )
        if self.assign not in _ASSIGN_MODES:
            raise ClusterError(
                f"unknown assignment mode {self.assign!r}; choose from "
                f"{_ASSIGN_MODES}"
            )

    def build(self, net: Network) -> ArrivalStream:
        """Construct the base (unsharded) stream on ``net``."""
        rng = spawn(self.seed, "cluster-stream", self.kind)
        if self.kind == "poisson":
            return PoissonStream(
                net, w=self.w, k=self.k, rate=self.rate, rng=rng,
                limit=self.limit,
            )
        if self.kind == "mmpp":
            return MMPPStream(
                net, w=self.w, k=self.k, rate_low=self.rate_low,
                rate_high=self.rate_high, switch=self.switch, rng=rng,
                limit=self.limit,
            )
        return AdversarialStream(
            net, w=self.w, k=self.k, rho=self.rate, burst=self.burst,
            rng=rng, limit=self.limit,
        )


class ShardedStream:
    """A residue-class filter over a base :class:`ArrivalStream`.

    Duck-types the stream surface the
    :class:`~repro.service.SchedulingService` consumes (``network``,
    ``object_homes``, ``limit``, ``exhausted``, ``window``,
    ``released``); generation is delegated to the base stream so the
    underlying draw order -- and hence determinism -- is untouched.
    ``released`` counts only *owned* arrivals: a worker's service
    accounts exactly its shard, and the supervisor's cross-worker sum
    reconstructs the full stream's accounting identity.
    """

    def __init__(
        self,
        base: ArrivalStream,
        shards: int,
        owned_from: Dict[int, int],
        assign: str = "tid",
    ) -> None:
        if shards < 1:
            raise ClusterError(f"shards must be >= 1, got {shards}")
        if assign not in _ASSIGN_MODES:
            raise ClusterError(
                f"unknown assignment mode {assign!r}; choose from "
                f"{_ASSIGN_MODES}"
            )
        for residue, step in owned_from.items():
            if not 0 <= residue < shards:
                raise ClusterError(
                    f"owned residue {residue} outside 0..{shards - 1}"
                )
            if step < 0:
                raise ClusterError(
                    f"ownership start step must be >= 0, got {step}"
                )
        self.base = base
        self.shards = int(shards)
        self.owned_from = {int(c): int(s) for c, s in owned_from.items()}
        self.assign = assign
        # shard assignment needs the network's shard partition up front;
        # raising TopologyError here fails the cluster before any fork
        self._shard_of = (
            node_shards(base.network) if assign == "shard" else None
        )
        self._released = 0
        self._cross = 0

    # ------------------------------------------------------------------ #
    # the stream surface the service consumes
    # ------------------------------------------------------------------ #

    @property
    def network(self) -> Network:
        """The base stream's network."""
        return self.base.network

    @property
    def object_homes(self) -> Dict[int, int]:
        """The base stream's object homes (identical across workers)."""
        return self.base.object_homes

    @property
    def limit(self) -> Optional[int]:
        """The base stream's total-arrival limit (shared, not per-shard)."""
        return self.base.limit

    @property
    def exhausted(self) -> bool:
        """True iff the base stream has released its full limit."""
        return self.base.exhausted

    @property
    def released(self) -> int:
        """Owned arrivals released through this shard so far."""
        return self._released

    @property
    def cross_released(self) -> int:
        """Owned cross-shard arrivals so far (0 under ``assign="tid"``)."""
        return self._cross

    def _home_shards(self, txn) -> set:
        """Network shards homing ``txn``'s objects (empty when object-free)."""
        homes = self.base.object_homes
        return {self._shard_of[homes[obj]] for obj in txn.objects}

    def class_of(self, txn) -> int:
        """Deterministic assignment class of one transaction.

        ``"tid"`` mode is the plain residue class.  ``"shard"`` mode is
        the coordinator handoff: the smallest network shard homing any
        of the transaction's objects (its host node's shard when it has
        none), folded mod ``shards`` -- every worker computes the same
        coordinator from the spec alone, so cross-shard transactions are
        owned by exactly one worker with no supervisor traffic.
        """
        if self.assign == "tid":
            return txn.tid % self.shards
        shards = self._home_shards(txn)
        coordinator = min(shards) if shards else self._shard_of[txn.node]
        return coordinator % self.shards

    def owns(self, txn, release: int) -> bool:
        """True iff this shard owns ``txn`` released at step ``release``."""
        start = self.owned_from.get(self.class_of(txn))
        return start is not None and release >= start

    def window(self, start: int, end: int) -> List[TimedTransaction]:
        """Owned arrivals in ``[start, end)``; unowned draws are discarded.

        The base stream still generates every arrival (keeping the
        generator aligned across all workers); this shard keeps only the
        residue classes it owns at each release step.  Under
        ``assign="shard"`` the owned cross-shard arrivals (objects homed
        in >= 2 network shards) are tallied in :attr:`cross_released`.
        """
        kept = [
            tt
            for tt in self.base.window(start, end)
            if self.owns(tt.txn, tt.release)
        ]
        self._released += len(kept)
        if self._shard_of is not None:
            self._cross += sum(
                1 for tt in kept if len(self._home_shards(tt.txn)) >= 2
            )
        return kept

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot: base stream state plus shard bookkeeping."""
        return {
            "base": self.base.state_dict(),
            "released": self._released,
            "cross": self._cross,
            "shards": self.shards,
            "owned_from": {str(c): s for c, s in self.owned_from.items()},
            "assign": self.assign,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        self.base.load_state(state["base"])  # type: ignore[arg-type]
        self._released = int(state["released"])  # type: ignore[arg-type]
        # pre-1.1.0 snapshots predate the cross counter and assign mode
        self._cross = int(state.get("cross", 0))  # type: ignore[arg-type]
        self.shards = int(state["shards"])  # type: ignore[arg-type]
        self.owned_from = {
            int(c): int(s)
            for c, s in state["owned_from"].items()  # type: ignore[union-attr]
        }
        assign = str(state.get("assign", self.assign))
        if assign != self.assign:
            raise ClusterError(
                f"snapshot assignment mode {assign!r} does not match this "
                f"stream's {self.assign!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedStream(shards={self.shards}, assign={self.assign!r}, "
            f"owned_from={self.owned_from}, released={self._released})"
        )
