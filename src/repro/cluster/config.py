"""Cluster configuration: supervision, liveness, and recovery knobs.

:class:`ClusterConfig` bundles every policy the supervisor applies --
worker count, run length, heartbeat liveness deadlines, the bounded
restart budget (the shared :class:`~repro.faults.backoff.RetryPolicy`),
checkpoint cadence, and what to do about crashes and stragglers.
Validation happens at construction, so a bad cluster fails before the
first fork, not after three workers have already journaled state.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from ..errors import ClusterError
from ..faults.backoff import RetryPolicy
from ..network.graph import Network
from ..service.config import LoadControl

__all__ = ["ClusterConfig", "build_network"]

_CRASH_POLICIES = ("restart", "strict")
_STRAGGLER_POLICIES = ("restart", "shed", "strict")


def build_network(topology: str, size: int, size2: int | None = None) -> Network:
    """Deprecated: use :func:`repro.network.network_from_sizes`.

    The hard-coded builder table this function used to hold moved into
    the :data:`~repro.network.registry.TOPOLOGY_INFO` registry; this
    wrapper forwards to :func:`~repro.network.registry.network_from_sizes`
    for one release (deprecated since 1.1.0, removal scheduled for
    1.2.0; see ``docs/API.md``).
    """
    from ..network import network_from_sizes

    warnings.warn(
        "cluster.build_network() is deprecated since 1.1.0 and will be "
        "removed in 1.2.0; use repro.network.network_from_sizes(name, "
        "size, size2) or repro.network.make_network(name, **params) "
        "(docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return network_from_sizes(topology, size, size2)


@dataclass(frozen=True)
class ClusterConfig:
    """Validated configuration for :func:`~repro.cluster.run_cluster`.

    Parameters
    ----------
    workers:
        Worker processes forked at start; each owns one residue class of
        transaction ids (worker ``i`` owns ``tid % workers == i``).
    windows:
        Arrival windows every worker runs (the cluster's logical length).
    heartbeat_timeout_s:
        Wall-clock liveness deadline: a worker that produces no message
        for this long while its process is alive is declared a
        straggler.  Detection timing is wall-clock, but because chaos
        and recovery act at window boundaries the recovered *outcome*
        is deterministic.
    poll_interval_s:
        Supervisor event-loop tick (upper bound on detection latency
        added to the timeout).
    retry:
        Bounded deterministic restart budget per worker -- the same
        :class:`~repro.faults.backoff.RetryPolicy` every fault path in
        the repo shares (and the same field name
        :class:`~repro.service.ServiceConfig` uses; supply both at once
        through a shared :class:`~repro.service.LoadControl` via
        ``control=``).  Restart ``i`` waits
        ``retry.wait(i) * restart_backoff_s`` seconds; a worker
        crashing more than ``retry.max_retries`` times is retired
        (queued work counted ``lost``) or, under ``on_crash="strict"``,
        raises :class:`~repro.errors.WorkerCrashError`.  (``restart=``
        is the pre-1.1.0 spelling: accepted with a
        :class:`DeprecationWarning` for one release, removal scheduled
        for 1.2.0.)
    restart_backoff_s:
        Wall-seconds per backoff unit (small in tests, larger in
        production runs).
    checkpoint_every:
        Windows between full state checkpoints; recovery replays at most
        this many journaled windows.
    on_crash:
        ``"restart"`` (default) restarts from the journal within budget;
        ``"strict"`` raises :class:`~repro.errors.WorkerCrashError` on
        the first crash.
    on_straggler:
        ``"restart"`` kills and restarts the stalled worker from its
        journal (nothing lost); ``"shed"`` retires it, counts its queued
        work as shed, and spawns a replacement worker owning the class
        from the stall window onward; ``"strict"`` raises
        :class:`~repro.errors.HeartbeatTimeoutError`.
    verify_replay:
        Verify each replayed window's accounting digest against the
        journal (determinism self-check); disable only for benchmarks.
    journal_dir:
        Directory for journals/checkpoints; ``None`` uses a fresh
        temporary directory removed after the run.
    control:
        Optional shared :class:`~repro.service.LoadControl` supplying
        the ``retry`` budget when not explicitly set (the same object a
        :class:`~repro.service.ServiceConfig` consumes).
    """

    workers: int = 2
    windows: int = 12
    heartbeat_timeout_s: float = 5.0
    poll_interval_s: float = 0.05
    restart: Optional[RetryPolicy] = None  # deprecated alias for ``retry``
    restart_backoff_s: float = 0.02
    checkpoint_every: int = 8
    on_crash: str = "restart"
    on_straggler: str = "restart"
    verify_replay: bool = True
    journal_dir: Optional[str] = None
    retry: Optional[RetryPolicy] = None
    control: Optional[LoadControl] = None

    def __post_init__(self) -> None:
        retry = self.retry
        if self.restart is not None:
            if retry is None:
                warnings.warn(
                    "ClusterConfig(restart=...) is deprecated since 1.1.0 "
                    "and will be removed in 1.2.0; use retry=... (or a "
                    "shared LoadControl)",
                    DeprecationWarning,
                    stacklevel=3,
                )
                retry = self.restart
            elif self.restart != retry:
                raise ClusterError(
                    f"conflicting restart budgets: restart={self.restart!r} "
                    f"(deprecated alias) vs retry={retry!r}"
                )
        if retry is None:
            retry = (
                self.control.retry if self.control is not None
                else RetryPolicy(max_retries=3, max_wait=4)
            )
        object.__setattr__(self, "retry", retry)
        object.__setattr__(self, "restart", retry)  # alias stays readable
        if self.workers < 1:
            raise ClusterError(f"workers must be >= 1, got {self.workers}")
        if self.windows < 1:
            raise ClusterError(f"windows must be >= 1, got {self.windows}")
        if self.heartbeat_timeout_s <= 0:
            raise ClusterError(
                f"heartbeat_timeout_s must be positive, got "
                f"{self.heartbeat_timeout_s}"
            )
        if self.poll_interval_s <= 0:
            raise ClusterError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.restart_backoff_s < 0:
            raise ClusterError(
                f"restart_backoff_s must be >= 0, got {self.restart_backoff_s}"
            )
        if self.checkpoint_every < 1:
            raise ClusterError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.on_crash not in _CRASH_POLICIES:
            raise ClusterError(
                f"unknown crash policy {self.on_crash!r}; choose from "
                f"{_CRASH_POLICIES}"
            )
        if self.on_straggler not in _STRAGGLER_POLICIES:
            raise ClusterError(
                f"unknown straggler policy {self.on_straggler!r}; choose "
                f"from {_STRAGGLER_POLICIES}"
            )
