"""Sharded topology families and shard-membership helpers.

The blockchain-sharding model of Adhikari/Busch/Popovic (arXiv:2405.15015)
recasts the paper's scheduling problem for a cluster of *shards*: each
shard is a tightly-coupled committee (a clique of unit-weight edges) and
shards communicate through designated leader nodes over expensive
inter-shard links.  The fog-cloud hierarchy of Adhikari/Busch/Poudel
(arXiv:2511.09776) extends the same move to a multi-tier tree of
shard committees (cloud -> fog -> edge).

Both builders tag the returned :class:`~repro.network.graph.Network`
with *shard-membership metadata* -- the exact node partition, one tuple
per shard -- so downstream layers (the sharded scheduler, the cluster
workers, the certificate checker) can classify transactions as intra-
vs cross-shard without re-detecting structure from edge weights:

* ``members`` -- tuple of per-shard node tuples (a disjoint, covering
  partition of ``0..n-1``);
* ``leaders`` -- the designated inter-shard gateway node of each shard.

:func:`shard_cluster` additionally carries the cluster-family aliases
(``alpha``/``beta``/``gamma``/``clusters``/``bridges``) because a shard
cluster *is* a §6 cluster graph with shard semantics layered on top --
so the Theorem 4 :class:`~repro.core.cluster.ClusterScheduler` runs on
it unchanged, which is exactly the baseline E21 compares against.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import GraphError, TopologyError
from .graph import Network, Topology

__all__ = [
    "shard_cluster",
    "fog_hierarchy",
    "shard_members",
    "node_shards",
    "SHARDED_FAMILIES",
]

#: topology family names that carry shard-membership metadata
SHARDED_FAMILIES: Tuple[str, ...] = ("shard-cluster", "fog-hierarchy", "cluster")


def shard_cluster(
    shards: int, shard_size: int, gamma: int | None = None
) -> Network:
    """``shards`` committee cliques of ``shard_size`` nodes each.

    Shard ``j`` occupies node ids ``[j*shard_size, (j+1)*shard_size)``;
    its leader is the base node ``j*shard_size``.  Intra-shard edges have
    unit weight; every pair of leaders is joined by an inter-shard edge
    of weight ``gamma`` (default ``shard_size``; requires
    ``gamma >= shard_size`` as in the §6 cluster model, so the expensive
    hop is always the inter-shard one).
    """
    if shards < 1 or shard_size < 1:
        raise GraphError(
            f"shard_cluster needs shards,shard_size >= 1, got "
            f"{shards},{shard_size}"
        )
    if gamma is None:
        gamma = max(shard_size, 1)
    if gamma < shard_size:
        raise GraphError(
            f"shard_cluster requires gamma >= shard_size, got "
            f"{gamma} < {shard_size}"
        )
    edges = []
    members = []
    leaders = []
    for j in range(shards):
        base = j * shard_size
        members.append(tuple(range(base, base + shard_size)))
        leaders.append(base)
        for a in range(shard_size):
            for b in range(a + 1, shard_size):
                edges.append((base + a, base + b, 1))
    for i in range(shards):
        for j in range(i + 1, shards):
            edges.append((leaders[i], leaders[j], gamma))
    topo = Topology(
        "shard-cluster",
        {
            "shards": shards,
            "shard_size": shard_size,
            "gamma": gamma,
            "members": tuple(members),
            "leaders": tuple(leaders),
            # cluster-family aliases: a shard cluster is a §6 cluster
            # graph, so the Theorem 4 scheduler runs on it unchanged.
            "alpha": shards,
            "beta": shard_size,
            "clusters": tuple(members),
            "bridges": tuple(leaders),
        },
    )
    return Network(shards * shard_size, edges, topo)


def fog_hierarchy(
    tiers: int,
    fanout: int = 2,
    shard_size: int = 4,
    gamma: int | None = None,
) -> Network:
    """Multi-tier fog/cloud hierarchy of shard committees.

    Tier ``t`` (``0 <= t < tiers``) holds ``fanout**t`` shards -- one
    cloud shard at the root, fanning out toward the edge tier.  Every
    shard is a clique of ``shard_size`` nodes with unit weights; each
    non-root shard's leader links to its parent shard's leader with an
    uplink of weight ``gamma * (tiers - t)`` -- uplinks grow toward the
    cloud, mirroring the fog model's cheap edge-to-fog / expensive
    fog-to-cloud communication (``gamma`` defaults to ``shard_size``
    and must be at least ``shard_size``).

    Shards are indexed in BFS order (shard 0 = cloud; children of shard
    ``s`` are ``s*fanout + 1 .. s*fanout + fanout``); shard ``s``
    occupies node ids ``[s*shard_size, (s+1)*shard_size)`` with its
    leader at the base id.
    """
    if tiers < 1:
        raise GraphError(f"fog_hierarchy needs tiers >= 1, got {tiers}")
    if fanout < 1:
        raise GraphError(f"fog_hierarchy needs fanout >= 1, got {fanout}")
    if shard_size < 1:
        raise GraphError(
            f"fog_hierarchy needs shard_size >= 1, got {shard_size}"
        )
    if gamma is None:
        gamma = max(shard_size, 1)
    if gamma < shard_size:
        raise GraphError(
            f"fog_hierarchy requires gamma >= shard_size, got "
            f"{gamma} < {shard_size}"
        )
    if fanout == 1:
        num_shards = tiers
    else:
        num_shards = (fanout ** tiers - 1) // (fanout - 1)
    edges = []
    members = []
    leaders = []
    tier_of = []
    tier, next_tier_start = 0, 1
    for s in range(num_shards):
        if s >= next_tier_start:
            tier += 1
            next_tier_start += fanout ** tier
        tier_of.append(tier)
        base = s * shard_size
        members.append(tuple(range(base, base + shard_size)))
        leaders.append(base)
        for a in range(shard_size):
            for b in range(a + 1, shard_size):
                edges.append((base + a, base + b, 1))
        if s > 0:
            parent = (s - 1) // fanout
            uplink = gamma * (tiers - tier_of[s])
            edges.append((leaders[parent], leaders[s], max(uplink, gamma)))
    topo = Topology(
        "fog-hierarchy",
        {
            "tiers": tiers,
            "fanout": fanout,
            "shard_size": shard_size,
            "gamma": gamma,
            "shards": num_shards,
            "members": tuple(members),
            "leaders": tuple(leaders),
            "tier_of": tuple(tier_of),
        },
    )
    return Network(num_shards * shard_size, edges, topo)


def shard_members(net: Network) -> Tuple[Tuple[int, ...], ...]:
    """The shard partition carried on ``net``'s topology metadata.

    Accepts any :data:`SHARDED_FAMILIES` member: the native sharded
    topologies expose ``members``; the §6 ``cluster`` family's
    ``clusters`` partition doubles as its shard partition.  Raises
    :class:`~repro.errors.TopologyError` for unsharded families.
    """
    params = net.topology.params
    shards = params.get("members", params.get("clusters"))
    if shards is None:
        raise TopologyError(
            f"topology {net.topology.name!r} carries no shard membership "
            f"metadata; sharded families are {SHARDED_FAMILIES}"
        )
    return tuple(tuple(int(v) for v in group) for group in shards)


def node_shards(net: Network) -> Dict[int, int]:
    """Map every node id to its shard index (the inverse of the partition)."""
    shard_of: Dict[int, int] = {}
    for sid, group in enumerate(shard_members(net)):
        for node in group:
            shard_of[node] = sid
    return shard_of
