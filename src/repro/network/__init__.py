"""Network substrate: weighted graphs and specialized topology builders."""

from .graph import Network, Topology
from .masked import MaskedNetwork, masked_csr
from .topologies import (
    butterfly,
    clique,
    cluster,
    ddim_grid,
    grid,
    grid_coords,
    grid_node,
    hypercube,
    line,
    lower_bound_grid,
    lower_bound_tree,
    star,
    torus,
)

__all__ = [
    "Network",
    "MaskedNetwork",
    "masked_csr",
    "Topology",
    "clique",
    "line",
    "grid",
    "grid_node",
    "grid_coords",
    "cluster",
    "hypercube",
    "butterfly",
    "star",
    "torus",
    "ddim_grid",
    "lower_bound_grid",
    "lower_bound_tree",
]
