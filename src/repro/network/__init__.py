"""Network substrate: weighted graphs and specialized topology builders.

Families are enumerated by the :data:`~repro.network.registry.TOPOLOGY_INFO`
registry and built uniformly via :func:`~repro.network.registry.make_network`;
the direct constructors below remain the registry's factories and stay
importable.
"""

from .graph import Network, Topology
from .masked import MaskedNetwork, masked_csr
from .registry import (
    TOPOLOGY_INFO,
    TopologyInfo,
    TopologyParam,
    make_network,
    network_from_sizes,
    topology_names,
)
from .sharding import (
    SHARDED_FAMILIES,
    fog_hierarchy,
    node_shards,
    shard_cluster,
    shard_members,
)
from .topologies import (
    butterfly,
    clique,
    cluster,
    ddim_grid,
    grid,
    grid_coords,
    grid_node,
    hypercube,
    line,
    lower_bound_grid,
    lower_bound_tree,
    star,
    torus,
)

__all__ = [
    "Network",
    "MaskedNetwork",
    "masked_csr",
    "Topology",
    "TopologyInfo",
    "TopologyParam",
    "TOPOLOGY_INFO",
    "make_network",
    "network_from_sizes",
    "topology_names",
    "clique",
    "line",
    "grid",
    "grid_node",
    "grid_coords",
    "cluster",
    "hypercube",
    "butterfly",
    "star",
    "torus",
    "ddim_grid",
    "lower_bound_grid",
    "lower_bound_tree",
    "shard_cluster",
    "fog_hierarchy",
    "shard_members",
    "node_shards",
    "SHARDED_FAMILIES",
]
