"""Structural predicates and measurements over networks.

These are used by tests (to assert the builders produce the intended
structure) and by :mod:`repro.core.dispatch` (to sanity-check that a
scheduler matches the network it is given).
"""

from __future__ import annotations

import math

from .graph import Network

__all__ = [
    "is_clique",
    "is_line",
    "is_grid",
    "is_tree",
    "has_unit_weights",
    "max_degree",
    "average_degree",
]


def has_unit_weights(net: Network) -> bool:
    """True iff every edge has weight 1."""
    return all(w == 1 for _, _, w in net.edges())


def max_degree(net: Network) -> int:
    """Maximum node degree."""
    return max(net.degree(u) for u in net.nodes())


def average_degree(net: Network) -> float:
    """Average node degree (``2 * |E| / n``)."""
    return 2.0 * net.num_edges / net.n


def is_clique(net: Network) -> bool:
    """True iff the network is a complete graph with unit weights."""
    n = net.n
    return net.num_edges == n * (n - 1) // 2 and has_unit_weights(net)


def is_line(net: Network) -> bool:
    """True iff the network is a path ``0-1-...-(n-1)`` with unit weights."""
    if net.num_edges != net.n - 1:
        return False
    return all(net.has_edge(i, i + 1) for i in range(net.n - 1)) and (
        has_unit_weights(net)
    )


def is_grid(net: Network, rows: int, cols: int) -> bool:
    """True iff the network is the ``rows x cols`` unit-weight mesh."""
    if net.n != rows * cols:
        return False
    expected = rows * (cols - 1) + cols * (rows - 1)
    if net.num_edges != expected or not has_unit_weights(net):
        return False
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols and not net.has_edge(v, v + 1):
                return False
            if r + 1 < rows and not net.has_edge(v, v + cols):
                return False
    return True


def is_tree(net: Network) -> bool:
    """True iff the network is acyclic (connectivity is guaranteed)."""
    return net.num_edges == net.n - 1


def expected_hypercube_diameter(dim: int) -> int:
    """Diameter of the ``dim``-hypercube (``dim`` itself)."""
    return dim


def expected_grid_diameter(rows: int, cols: int) -> int:
    """Diameter of the unit-weight mesh (``rows + cols - 2``)."""
    return rows + cols - 2


def log2_ceil(x: int) -> int:
    """Smallest ``k`` with ``2**k >= x`` (``x >= 1``)."""
    return max(0, math.ceil(math.log2(x))) if x > 1 else 0
