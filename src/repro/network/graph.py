"""Weighted communication graph substrate.

The paper models the system as a weighted graph ``G`` whose nodes host
transactions, whose edges are communication links, and whose integer edge
weights are communication delays (an object crossing an edge of weight ``w``
needs ``w`` time steps).  :class:`Network` wraps that model with:

* O(1) shortest-path distance lookups backed by a cached all-pairs matrix
  computed once with :func:`scipy.sparse.csgraph.dijkstra` on a CSR adjacency
  (per the HPC guides: build the heavy structure once, then do array reads in
  hot loops instead of repeated graph traversals);
* shortest-path reconstruction for object routing in the simulator;
* a :class:`Topology` metadata tag so topology-specific schedulers
  (grid/cluster/star/...) can recover structural parameters without
  re-detecting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np
from scipy.sparse import csr_array
from scipy.sparse.csgraph import connected_components, dijkstra

from ..errors import GraphError

__all__ = ["Topology", "Network"]


@dataclass(frozen=True)
class Topology:
    """Structural metadata attached to a :class:`Network`.

    ``name`` identifies the family (``"clique"``, ``"line"``, ``"grid"``,
    ``"cluster"``, ``"hypercube"``, ``"butterfly"``, ``"star"``,
    ``"lb-grid"``, ``"lb-tree"``, or ``"generic"``); ``params`` carries the
    family-specific construction parameters (e.g. ``rows``/``cols`` for a
    grid, ``clusters``/``bridges``/``gamma`` for a cluster graph).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Return ``params[key]`` or ``default``."""
        return self.params.get(key, default)

    def require(self, key: str) -> Any:
        """Return ``params[key]`` or raise :class:`KeyError` with context."""
        try:
            return self.params[key]
        except KeyError:
            raise KeyError(
                f"topology {self.name!r} is missing required parameter {key!r}"
            ) from None


GENERIC = Topology("generic")


class Network:
    """An undirected, connected, positively integer-weighted graph.

    Nodes are the integers ``0 .. n-1``.  Construction validates weights and
    connectivity; all-pairs shortest-path distances (and, lazily,
    predecessors for path reconstruction) are computed on first use and
    cached for the lifetime of the object.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Duplicate edges must agree
        on weight; self-loops are rejected.
    topology:
        Optional :class:`Topology` metadata (defaults to ``"generic"``).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int, int]],
        topology: Topology | None = None,
    ) -> None:
        if n <= 0:
            raise GraphError(f"network must have at least one node, got n={n}")
        self._n = int(n)
        self.topology = topology if topology is not None else GENERIC

        adj: dict[int, dict[int, int]] = {}
        for u, v, w in edges:
            u, v = int(u), int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop at node {u} is not allowed")
            wi = int(w)
            if wi != w or wi <= 0:
                raise GraphError(
                    f"edge ({u}, {v}) weight {w!r} must be a positive integer"
                )
            prev = adj.setdefault(u, {}).get(v)
            if prev is not None and prev != wi:
                raise GraphError(
                    f"conflicting weights for edge ({u}, {v}): {prev} vs {wi}"
                )
            adj.setdefault(u, {})[v] = wi
            adj.setdefault(v, {})[u] = wi
        self._adj = adj

        rows, cols, data = [], [], []
        for u, nbrs in adj.items():
            for v, w in nbrs.items():
                rows.append(u)
                cols.append(v)
                data.append(w)
        self._csr = csr_array(
            (np.asarray(data, dtype=np.int64), (rows, cols)), shape=(n, n)
        )
        if n > 1:
            ncomp, _ = connected_components(self._csr, directed=False)
            if ncomp != 1:
                raise GraphError(
                    f"network must be connected; found {ncomp} components"
                )

        self._dist: np.ndarray | None = None
        self._pred: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # basic structure
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._csr.nnz // 2

    def nodes(self) -> range:
        """All node identifiers, ``range(0, n)``."""
        return range(self._n)

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for u in sorted(self._adj):
            for v, w in sorted(self._adj[u].items()):
                if u < v:
                    yield u, v, w

    def neighbors(self, u: int) -> tuple[int, ...]:
        """Nodes adjacent to ``u``, sorted."""
        return tuple(sorted(self._adj.get(u, ())))

    def degree(self, u: int) -> int:
        """Number of edges incident to ``u``."""
        return len(self._adj.get(u, ()))

    def edge_weight(self, u: int, v: int) -> int:
        """Weight of edge ``(u, v)``; raises :class:`GraphError` if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``(u, v)`` is an edge."""
        return v in self._adj.get(u, ())

    # ------------------------------------------------------------------ #
    # shortest paths
    # ------------------------------------------------------------------ #

    def _ensure_dist(self) -> np.ndarray:
        if self._dist is None:
            if self._n == 1:
                self._dist = np.zeros((1, 1), dtype=np.int64)
            else:
                d = dijkstra(self._csr, directed=False)
                self._dist = d.astype(np.int64)
        return self._dist

    def _ensure_pred(self) -> np.ndarray:
        if self._pred is None:
            if self._n == 1:
                self._pred = np.full((1, 1), -9999, dtype=np.int32)
            else:
                d, pred = dijkstra(
                    self._csr, directed=False, return_predecessors=True
                )
                self._dist = d.astype(np.int64)
                self._pred = pred
        return self._pred

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest path distances as an ``(n, n)`` int64 array.

        The returned array is the internal cache; treat it as read-only.
        """
        return self._ensure_dist()

    def dist(self, u: int, v: int) -> int:
        """Shortest-path distance between ``u`` and ``v``."""
        return int(self._ensure_dist()[u, v])

    def pair_distances(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched distance gather: ``result[i] = dist(us[i], vs[i])``.

        The vectorized kernels call this instead of per-pair :meth:`dist`;
        subclasses with partial distance caches override it to compute
        only the rows the gather actually touches.
        """
        return self._ensure_dist()[us, vs]

    def shortest_path(self, u: int, v: int) -> list[int]:
        """A shortest path from ``u`` to ``v`` as a list of nodes (inclusive)."""
        if u == v:
            return [u]
        pred = self._ensure_pred()
        path = [v]
        cur = v
        while cur != u:
            cur = int(pred[u, cur])
            if cur < 0:  # pragma: no cover - connectivity validated at init
                raise GraphError(f"no path between {u} and {v}")
            path.append(cur)
        path.reverse()
        return path

    def diameter(self) -> int:
        """Maximum shortest-path distance between any pair of nodes."""
        return int(self._ensure_dist().max())

    def eccentricity(self, u: int) -> int:
        """Maximum distance from ``u`` to any node."""
        return int(self._ensure_dist()[u].max())

    def subset_diameter(self, nodes: Sequence[int]) -> int:
        """Maximum pairwise distance among ``nodes`` (0 for fewer than 2)."""
        idx = np.fromiter(nodes, dtype=np.intp)
        if idx.size < 2:
            return 0
        sub = self._ensure_dist()[np.ix_(idx, idx)]
        return int(sub.max())

    # ------------------------------------------------------------------ #
    # degraded views
    # ------------------------------------------------------------------ #

    def masked(self, down: Iterable[tuple[int, int]]) -> "Network":
        """This network with the ``down`` edges removed, resolved lazily.

        Returns ``self`` when ``down`` is empty; otherwise a
        :class:`~repro.network.masked.MaskedNetwork` view that reuses this
        network's cached distance rows wherever the removed edges lie on
        no shortest path, and recomputes only the affected sources.
        Raises :class:`GraphError` if the removal disconnects the graph
        or names a non-existent edge.
        """
        from .masked import MaskedNetwork

        down = frozenset((u, v) if u < v else (v, u) for u, v in down)
        if not down:
            return self
        return MaskedNetwork(self, down)

    # ------------------------------------------------------------------ #
    # interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Export as a :class:`networkx.Graph` with ``weight`` attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_weighted_edges_from(self.edges())
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(n={self._n}, edges={self.num_edges}, "
            f"topology={self.topology.name!r})"
        )
