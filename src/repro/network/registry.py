"""The topology registry: one :class:`TopologyInfo` per network family.

Mirrors the scheduler registry (``SCHEDULER_INFO`` in
:mod:`repro.core.dispatch`): each entry names a topology family, its
constructor, its parameter schema (with defaults and per-parameter
docs), the scheduler algorithm auto-dispatch routes to, and how the
certificate checker treats the family's theorem bound (``"enforced"``
exactly, ``"recorded"`` measured-but-not-enforced for the w.h.p.
results, ``"none"`` for substrates without a scheduler guarantee).

:func:`make_network` is the uniform construction facade --
``repro.make_network("shard-cluster", shards=4, shard_size=6)`` -- and
:func:`network_from_sizes` adapts the CLI's positional ``--size`` /
``--size2`` convention onto the same registry, so the CLI, the cluster
workers, and the experiments all dispatch off one table instead of
hard-coded builder dicts.  Direct constructor imports
(``repro.network.clique`` etc.) keep working; they are the factories
the registry points at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from ..errors import GraphError
from .graph import Network
from .sharding import fog_hierarchy, shard_cluster
from .topologies import (
    butterfly,
    clique,
    cluster,
    ddim_grid,
    grid,
    hypercube,
    line,
    lower_bound_grid,
    lower_bound_tree,
    star,
    torus,
)

__all__ = [
    "TopologyParam",
    "TopologyInfo",
    "TOPOLOGY_INFO",
    "make_network",
    "network_from_sizes",
    "topology_names",
]

_REQUIRED = object()


@dataclass(frozen=True)
class TopologyParam:
    """Schema entry for one constructor parameter.

    ``default`` is the value substituted when the caller omits the
    parameter; the ``_REQUIRED`` sentinel marks parameters the caller
    must supply (reported as a :class:`~repro.errors.GraphError`).
    """

    name: str
    doc: str
    default: object = _REQUIRED

    @property
    def required(self) -> bool:
        """True iff the caller must supply this parameter."""
        return self.default is _REQUIRED


@dataclass(frozen=True)
class TopologyInfo:
    """Static metadata describing one topology family.

    ``default_algo`` names the :data:`~repro.core.dispatch.SCHEDULER_INFO`
    entry that ``algo="auto"`` dispatch routes this family to;
    ``bound_kind`` is how :mod:`repro.staticcheck.certify` treats the
    family's theorem bound; ``sizes`` adapts the CLI's ``(size, size2)``
    convention to constructor keywords (see :func:`network_from_sizes`).
    """

    name: str
    doc: str
    params: Tuple[TopologyParam, ...]
    factory: Callable[..., Network]
    default_algo: str
    bound_kind: str
    sizes: Callable[[int, Optional[int]], Dict[str, object]] = field(
        repr=False, default=lambda size, size2: {"n": size}
    )

    def make(self, **params) -> Network:
        """Instantiate the family, validating names and filling defaults."""
        known = {p.name for p in self.params}
        unknown = sorted(set(params) - known)
        if unknown:
            raise GraphError(
                f"unknown parameter(s) {unknown} for topology "
                f"{self.name!r}; expected {sorted(known)}"
            )
        kwargs = dict(params)
        missing = []
        for p in self.params:
            if p.name in kwargs:
                continue
            if p.required:
                missing.append(p.name)
            else:
                kwargs[p.name] = p.default
        if missing:
            raise GraphError(
                f"topology {self.name!r} requires parameter(s) {missing}"
            )
        net = self.factory(**kwargs)
        if net.topology.name != self.name:
            raise GraphError(
                f"topology registry drift: factory for {self.name!r} built "
                f"a network tagged {net.topology.name!r}"
            )
        return net


def _info(
    name: str,
    doc: str,
    params: Tuple[TopologyParam, ...],
    factory: Callable[..., Network],
    default_algo: str,
    bound_kind: str,
    sizes: Callable[[int, Optional[int]], Dict[str, object]],
) -> TopologyInfo:
    return TopologyInfo(name, doc, params, factory, default_algo,
                        bound_kind, sizes)


TOPOLOGY_INFO: Mapping[str, TopologyInfo] = {
    info.name: info
    for info in (
        _info(
            "clique",
            "complete graph, unit weights (§3)",
            (TopologyParam("n", "number of nodes"),),
            clique,
            "clique",
            "enforced",
            lambda size, size2: {"n": size},
        ),
        _info(
            "line",
            "path graph, unit weights (§4)",
            (TopologyParam("n", "number of nodes"),),
            line,
            "line",
            "enforced",
            lambda size, size2: {"n": size},
        ),
        _info(
            "grid",
            "rows x cols mesh, unit weights (§5)",
            (
                TopologyParam("rows", "grid rows"),
                TopologyParam("cols", "grid cols (default: rows)", None),
            ),
            grid,
            "grid",
            "recorded",
            lambda size, size2: {"rows": size, "cols": size2},
        ),
        _info(
            "cluster",
            "alpha cliques of beta nodes, bridge weight gamma (§6)",
            (
                TopologyParam("alpha", "number of cliques"),
                TopologyParam("beta", "nodes per clique"),
                TopologyParam("gamma", "bridge weight (default: beta)", None),
            ),
            cluster,
            "cluster",
            "recorded",
            lambda size, size2: {"alpha": size, "beta": size2 or 4},
        ),
        _info(
            "hypercube",
            "2^dim nodes, unit weights (§3.1)",
            (TopologyParam("dim", "hypercube dimension"),),
            hypercube,
            "diameter",
            "enforced",
            lambda size, size2: {"dim": size},
        ),
        _info(
            "butterfly",
            "(dim+1) * 2^dim unwrapped butterfly (§3.1)",
            (TopologyParam("dim", "butterfly dimension"),),
            butterfly,
            "diameter",
            "enforced",
            lambda size, size2: {"dim": size},
        ),
        _info(
            "star",
            "alpha rays of beta nodes around a center (§7)",
            (
                TopologyParam("alpha", "number of rays"),
                TopologyParam("beta", "nodes per ray"),
            ),
            star,
            "star",
            "recorded",
            lambda size, size2: {"alpha": size, "beta": size2 or 7},
        ),
        _info(
            "torus",
            "rows x cols wraparound mesh, unit weights (§3.1)",
            (
                TopologyParam("rows", "torus rows (>= 3)"),
                TopologyParam("cols", "torus cols (default: rows)", None),
            ),
            torus,
            "diameter",
            "enforced",
            lambda size, size2: {"rows": size, "cols": size2},
        ),
        _info(
            "ddim-grid",
            "general d-dimensional mesh, unit weights (§3.1)",
            (TopologyParam("dims", "side length per axis (sequence)"),),
            ddim_grid,
            "diameter",
            "enforced",
            lambda size, size2: {
                "dims": (size, size2) if size2 else (size, size)
            },
        ),
        _info(
            "lb-grid",
            "the §8.1 grid-of-blocks lower-bound substrate",
            (TopologyParam("s", "block count (sqrt(s) integral)"),),
            lower_bound_grid,
            "greedy",
            "none",
            lambda size, size2: {"s": size},
        ),
        _info(
            "lb-tree",
            "the §8.2 tree-of-blocks lower-bound substrate",
            (TopologyParam("s", "block count (sqrt(s) integral)"),),
            lower_bound_tree,
            "greedy",
            "none",
            lambda size, size2: {"s": size},
        ),
        _info(
            "shard-cluster",
            "blockchain shard committees: cliques + leader mesh "
            "(arXiv:2405.15015)",
            (
                TopologyParam("shards", "number of shard committees"),
                TopologyParam("shard_size", "nodes per shard"),
                TopologyParam(
                    "gamma", "inter-shard leader-link weight "
                    "(default: shard_size)", None,
                ),
            ),
            shard_cluster,
            "sharded",
            "recorded",
            lambda size, size2: {"shards": size, "shard_size": size2 or 4},
        ),
        _info(
            "fog-hierarchy",
            "cloud/fog/edge tree of shard committees (arXiv:2511.09776)",
            (
                TopologyParam("tiers", "hierarchy depth (cloud = tier 0)"),
                TopologyParam("fanout", "children per shard", 2),
                TopologyParam("shard_size", "nodes per shard", 4),
                TopologyParam(
                    "gamma", "base uplink weight, scaled by tier "
                    "(default: shard_size)", None,
                ),
            ),
            fog_hierarchy,
            "sharded",
            "recorded",
            lambda size, size2: {"tiers": size, "shard_size": size2 or 4},
        ),
    )
}


def topology_names() -> Tuple[str, ...]:
    """Registered family names, in registry order."""
    return tuple(TOPOLOGY_INFO)


def make_network(name: str, **params) -> Network:
    """Build a registered topology by family name.

    The uniform construction facade: validates the family name and the
    parameter names against the registry schema, fills defaults, and
    calls the family constructor.  ``repro.make_network("grid", rows=8)``
    is equivalent to ``repro.network.grid(8)``.
    """
    try:
        info = TOPOLOGY_INFO[name]
    except KeyError:
        raise GraphError(
            f"unknown topology {name!r}; choose from "
            f"{sorted(TOPOLOGY_INFO)}"
        ) from None
    return info.make(**params)


def network_from_sizes(
    name: str, size: int, size2: Optional[int] = None
) -> Network:
    """Build a registered topology from CLI-style size parameters.

    ``size`` is n / side / dim / alpha / shards / tiers depending on the
    family; ``size2`` is cols / beta / shard size where applicable.
    Each registry entry's ``sizes`` adapter maps the pair onto the
    constructor's keywords, preserving the historical CLI defaults
    (e.g. ``cluster`` falls back to ``beta=4``, ``star`` to ``beta=7``).
    """
    try:
        info = TOPOLOGY_INFO[name]
    except KeyError:
        raise GraphError(
            f"unknown topology {name!r}; choose from "
            f"{sorted(TOPOLOGY_INFO)}"
        ) from None
    return info.make(**info.sizes(size, size2))
