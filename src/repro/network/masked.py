"""Degraded-network views with lazy per-source shortest paths.

Removing a handful of failed links used to mean rebuilding a full
:class:`~repro.network.graph.Network` and recomputing its all-pairs
Dijkstra from scratch -- ``O(n)`` single-source solves for a failure that
typically perturbs a few rows.  :class:`MaskedNetwork` instead *views*
the parent network minus a set of down edges:

* structure (adjacency, CSR) is derived by masking the parent's cached
  arrays, not by re-validating edge lists;
* distances are resolved per source row, on demand.  A row whose source
  has **no** shortest path through any down edge (checked against the
  parent's cached matrix: ``D[u,a] + w > D[u,b]`` and symmetrically for
  every down edge ``(a, b, w)``) reuses the parent's row outright; only
  the genuinely affected rows pay a Dijkstra solve on the masked graph.

:attr:`MaskedNetwork.dijkstra_solves` counts the single-source solves
actually performed, which the tests use to pin down the laziness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Tuple

import numpy as np
from scipy.sparse import csr_array
from scipy.sparse.csgraph import connected_components, dijkstra

from ..errors import GraphError
from .graph import Network

__all__ = ["MaskedNetwork", "masked_csr"]

Edge = Tuple[int, int]


def _normalize(down: Iterable[Edge]) -> FrozenSet[Edge]:
    return frozenset((u, v) if u < v else (v, u) for u, v in down)


def masked_csr(net: Network, down: Iterable[Edge]) -> csr_array:
    """The network's CSR adjacency with the ``down`` edges zeroed out.

    Vectorized mask over the cached CSR's COO triplets (both directions
    of each down edge), replacing the per-edge Python rebuild the fault
    router used to do on every blocked-path query.
    """
    norm = _normalize(down)
    if not norm:
        return net._csr
    coo = net._csr.tocoo()
    n = net.n
    down_keys = np.asarray(
        [u * n + v for u, v in norm] + [v * n + u for u, v in norm],
        dtype=np.int64,
    )
    keep = ~np.isin(coo.row.astype(np.int64) * n + coo.col, down_keys)
    return csr_array(
        (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=(n, n)
    )


class MaskedNetwork(Network):
    """A :class:`Network` minus a set of down edges, resolved lazily.

    Construct via :meth:`Network.masked`.  Same public surface as
    :class:`Network`; raises :class:`~repro.errors.GraphError` at
    construction if the removal disconnects the graph (or names a
    non-existent edge).
    """

    def __init__(self, parent: Network, down: Iterable[Edge]) -> None:
        norm = _normalize(down)
        for u, v in sorted(norm):
            parent.edge_weight(u, v)  # GraphError if the edge is absent
        self._parent = parent
        self.down = norm
        self._n = parent.n
        self.topology = parent.topology
        self._adj = {
            u: {
                v: w
                for v, w in nbrs.items()
                if ((u, v) if u < v else (v, u)) not in norm
            }
            for u, nbrs in parent._adj.items()
        }
        self._csr = masked_csr(parent, norm)
        if self._n > 1:
            ncomp, _ = connected_components(self._csr, directed=False)
            if ncomp != 1:
                raise GraphError(
                    f"removing {sorted(norm)} disconnects the network: "
                    f"found {ncomp} components"
                )
        self._dist: np.ndarray | None = None
        self._pred: np.ndarray | None = None
        self._dist_rows: Dict[int, np.ndarray] = {}
        self._pred_rows: Dict[int, np.ndarray] = {}
        self._reusable_rows: np.ndarray | None = None
        #: single-source Dijkstra solves performed so far (laziness probe)
        self.dijkstra_solves = 0

    # ------------------------------------------------------------------ #
    # lazy row resolution
    # ------------------------------------------------------------------ #

    def _reusable(self) -> np.ndarray:
        """Boolean mask of sources whose parent distance row still holds.

        Source ``u``'s row is reusable iff no down edge is an edge of
        ``u``'s shortest-path tree in the parent (edge ``(a, b)`` is in
        the tree iff ``pred[u, b] == a`` or ``pred[u, a] == b``).  An
        intact tree means every parent distance from ``u`` is still
        achieved by a surviving path, so the distance row -- and the pred
        row itself -- carry over unchanged.
        """
        if self._reusable_rows is None:
            P = self._parent._ensure_pred()
            ok = np.ones(self._n, dtype=bool)
            for a, b in self.down:
                ok &= (P[:, b] != a) & (P[:, a] != b)
            self._reusable_rows = ok
        return self._reusable_rows

    def _row(self, u: int) -> np.ndarray:
        if self._dist is not None:
            return self._dist[u]
        row = self._dist_rows.get(u)
        if row is None:
            if self._reusable()[u]:
                row = self._parent._ensure_dist()[u]
            else:
                row = self._solve(u)
            self._dist_rows[u] = row
        return row

    def _solve(self, u: int) -> np.ndarray:
        self.dijkstra_solves += 1
        d, p = dijkstra(
            self._csr, directed=False, indices=u, return_predecessors=True
        )
        if not np.isfinite(d).all():  # pragma: no cover - checked at init
            raise GraphError(f"node {u} is disconnected in the masked graph")
        self._pred_rows[u] = p
        return d.astype(np.int64)

    # ------------------------------------------------------------------ #
    # Network surface, rerouted through the row cache
    # ------------------------------------------------------------------ #

    def dist(self, u: int, v: int) -> int:
        """Shortest-path distance in the degraded graph."""
        return int(self._row(u)[v])

    def pair_distances(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched gather computing only the source rows it touches."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if self._dist is not None:
            return self._dist[us, vs]
        out = np.empty(len(us), dtype=np.int64)
        for u in np.unique(us).tolist():
            sel = us == u
            out[sel] = self._row(u)[vs[sel]]
        return out

    def shortest_path(self, u: int, v: int) -> list[int]:
        """A shortest path avoiding the down edges."""
        if u == v:
            return [u]
        self._row(u)
        pred_row = self._pred_rows.get(u)
        if pred_row is None:
            if self._pred is not None:
                pred_row = self._pred[u]
            else:
                # row was reused from the parent: no shortest path from u
                # touches a down edge, so the parent's tree is valid here
                pred_row = self._parent._ensure_pred()[u]
            self._pred_rows[u] = pred_row
        path = [v]
        cur = v
        while cur != u:
            cur = int(pred_row[cur])
            if cur < 0:  # pragma: no cover - connectivity checked at init
                raise GraphError(f"no path between {u} and {v}")
            path.append(cur)
        path.reverse()
        return path

    def _ensure_dist(self) -> np.ndarray:
        if self._dist is None:
            D = np.array(self._parent._ensure_dist(), copy=True)
            stale = np.flatnonzero(~self._reusable())
            for u, row in self._dist_rows.items():
                D[u] = row
                stale = stale[stale != u]
            if len(stale):
                self.dijkstra_solves += len(stale)
                d = dijkstra(self._csr, directed=False, indices=stale)
                if not np.isfinite(d).all():  # pragma: no cover
                    raise GraphError("masked graph is disconnected")
                D[stale] = d.astype(np.int64)
            self._dist = D
        return self._dist

    def _ensure_pred(self) -> np.ndarray:
        if self._pred is None:
            self.dijkstra_solves += self._n
            d, pred = dijkstra(
                self._csr, directed=False, return_predecessors=True
            )
            self._dist = d.astype(np.int64)
            self._pred = pred
        return self._pred

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaskedNetwork(n={self._n}, down={sorted(self.down)}, "
            f"topology={self.topology.name!r})"
        )
