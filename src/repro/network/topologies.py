"""Builders for the specialized topologies studied in the paper.

Each builder returns a :class:`~repro.network.graph.Network` tagged with
:class:`~repro.network.graph.Topology` metadata that the corresponding
scheduler consumes (e.g. the cluster scheduler reads the cluster membership
and bridge nodes straight from the metadata instead of re-detecting them).

Families (paper section in parentheses):

* :func:`clique` -- complete graph, unit weights (§3)
* :func:`line` -- path graph, unit weights (§4)
* :func:`grid` -- ``rows x cols`` mesh, unit weights (§5)
* :func:`cluster` -- ``alpha`` cliques of ``beta`` nodes joined by
  bridge edges of weight ``gamma >= beta`` (§6)
* :func:`hypercube` -- ``2^dim`` nodes, unit weights (§3.1)
* :func:`butterfly` -- ``(dim+1) * 2^dim`` nodes, unit weights (§3.1)
* :func:`star` -- ``alpha`` rays of ``beta`` nodes around a center (§7)
* :func:`ddim_grid` -- general d-dimensional mesh (§3.1)
* :func:`lower_bound_grid` / :func:`lower_bound_tree` -- the §8 hard-instance
  substrates (``s`` blocks of ``s x sqrt(s)`` nodes, inter-block weight ``s``)
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import GraphError
from .graph import Network, Topology

__all__ = [
    "clique",
    "line",
    "grid",
    "grid_node",
    "grid_coords",
    "cluster",
    "hypercube",
    "butterfly",
    "star",
    "torus",
    "ddim_grid",
    "lower_bound_grid",
    "lower_bound_tree",
]


def clique(n: int) -> Network:
    """Complete graph on ``n`` nodes with unit edge weights (§3)."""
    if n < 1:
        raise GraphError(f"clique needs n >= 1, got {n}")
    edges = [(u, v, 1) for u in range(n) for v in range(u + 1, n)]
    return Network(n, edges, Topology("clique", {"n": n}))


def line(n: int) -> Network:
    """Path graph ``v_0 - v_1 - ... - v_{n-1}`` with unit weights (§4)."""
    if n < 1:
        raise GraphError(f"line needs n >= 1, got {n}")
    edges = [(i, i + 1, 1) for i in range(n - 1)]
    return Network(n, edges, Topology("line", {"n": n}))


def grid_node(r: int, c: int, cols: int) -> int:
    """Node id of grid cell ``(r, c)`` in row-major order."""
    return r * cols + c


def grid_coords(v: int, cols: int) -> tuple[int, int]:
    """Inverse of :func:`grid_node`: ``(row, col)`` of node ``v``."""
    return divmod(v, cols)


def grid(rows: int, cols: int | None = None) -> Network:
    """``rows x cols`` mesh with unit weights (§5; cols defaults to rows).

    Node ``(r, c)`` has id ``r * cols + c``; border nodes have degree 3 and
    corners degree 2, exactly as in the paper's model.
    """
    if cols is None:
        cols = rows
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dims, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = grid_node(r, c, cols)
            if c + 1 < cols:
                edges.append((v, v + 1, 1))
            if r + 1 < rows:
                edges.append((v, v + cols, 1))
    topo = Topology("grid", {"rows": rows, "cols": cols})
    return Network(rows * cols, edges, topo)


def cluster(alpha: int, beta: int, gamma: int | None = None) -> Network:
    """Cluster graph: ``alpha`` cliques of ``beta`` nodes (§6, Fig 3).

    Cluster ``j`` occupies node ids ``[j*beta, (j+1)*beta)``; its bridge node
    is ``j*beta``.  Every pair of bridge nodes is joined by a bridge edge of
    weight ``gamma`` (default ``beta``; the paper assumes ``gamma >= beta``).
    """
    if alpha < 1 or beta < 1:
        raise GraphError(f"cluster needs alpha,beta >= 1, got {alpha},{beta}")
    if gamma is None:
        gamma = max(beta, 1)
    if gamma < beta:
        raise GraphError(f"cluster requires gamma >= beta, got {gamma} < {beta}")
    edges = []
    clusters = []
    bridges = []
    for j in range(alpha):
        base = j * beta
        members = tuple(range(base, base + beta))
        clusters.append(members)
        bridges.append(base)
        for a in range(beta):
            for b in range(a + 1, beta):
                edges.append((base + a, base + b, 1))
    for i in range(alpha):
        for j in range(i + 1, alpha):
            edges.append((bridges[i], bridges[j], gamma))
    topo = Topology(
        "cluster",
        {
            "alpha": alpha,
            "beta": beta,
            "gamma": gamma,
            "clusters": tuple(clusters),
            "bridges": tuple(bridges),
        },
    )
    return Network(alpha * beta, edges, topo)


def hypercube(dim: int) -> Network:
    """``dim``-dimensional hypercube on ``2^dim`` nodes, unit weights (§3.1)."""
    if dim < 0:
        raise GraphError(f"hypercube needs dim >= 0, got {dim}")
    n = 1 << dim
    edges = []
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                edges.append((u, v, 1))
    return Network(n, edges, Topology("hypercube", {"dim": dim, "n": n}))


def butterfly(dim: int) -> Network:
    """(Unwrapped) butterfly network of dimension ``dim`` (§3.1).

    Nodes are ``(level, row)`` with ``level in 0..dim`` and
    ``row in 0..2^dim - 1``; id = ``level * 2^dim + row``.  Straight edges
    connect ``(l, r)-(l+1, r)``; cross edges connect
    ``(l, r)-(l+1, r XOR 2^l)``.
    """
    if dim < 1:
        raise GraphError(f"butterfly needs dim >= 1, got {dim}")
    width = 1 << dim
    n = (dim + 1) * width
    edges = []
    for level in range(dim):
        for row in range(width):
            u = level * width + row
            edges.append((u, (level + 1) * width + row, 1))
            edges.append((u, (level + 1) * width + (row ^ (1 << level)), 1))
    topo = Topology("butterfly", {"dim": dim, "width": width, "levels": dim + 1})
    return Network(n, edges, topo)


def star(alpha: int, beta: int) -> Network:
    """Star graph: ``alpha`` rays of ``beta`` nodes around center 0 (§7, Fig 4).

    Ray ``r`` occupies ids ``1 + r*beta .. 1 + (r+1)*beta - 1`` ordered from
    the tip (adjacent to the center) outward; every edge has weight 1.
    """
    if alpha < 1 or beta < 1:
        raise GraphError(f"star needs alpha,beta >= 1, got {alpha},{beta}")
    edges = []
    rays = []
    for r in range(alpha):
        base = 1 + r * beta
        ray_nodes = tuple(range(base, base + beta))
        rays.append(ray_nodes)
        edges.append((0, base, 1))
        for i in range(beta - 1):
            edges.append((base + i, base + i + 1, 1))
    topo = Topology(
        "star",
        {"alpha": alpha, "beta": beta, "center": 0, "rays": tuple(rays)},
    )
    return Network(1 + alpha * beta, edges, topo)


def ddim_grid(dims: Sequence[int]) -> Network:
    """General d-dimensional mesh with unit weights (§3.1).

    ``dims`` gives the side length along each axis; node ids enumerate the
    lattice in mixed-radix order with the last axis fastest.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise GraphError(f"ddim_grid needs positive dims, got {dims}")
    n = math.prod(dims)
    strides = [1] * len(dims)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]

    edges = []

    def _walk(prefix: list[int]) -> None:
        if len(prefix) == len(dims):
            v = sum(p * s for p, s in zip(prefix, strides))
            for axis, d in enumerate(dims):
                if prefix[axis] + 1 < d:
                    edges.append((v, v + strides[axis], 1))
            return
        for x in range(dims[len(prefix)]):
            _walk(prefix + [x])

    _walk([])
    topo = Topology("ddim-grid", {"dims": dims, "strides": tuple(strides)})
    return Network(n, edges, topo)


def torus(rows: int, cols: int | None = None) -> Network:
    """``rows x cols`` torus (wraparound mesh) with unit weights (§3.1).

    A diameter-``(rows + cols) / 2`` member of the d-dimensional-grid
    family; scheduled by the same diameter-scaled greedy algorithm.
    Wraparound edges require side lengths of at least 3 (a length-2 ring
    would duplicate edges).
    """
    if cols is None:
        cols = rows
    if rows < 3 or cols < 3:
        raise GraphError(f"torus needs dims >= 3, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = grid_node(r, c, cols)
            edges.append((v, grid_node(r, (c + 1) % cols, cols), 1))
            edges.append((v, grid_node((r + 1) % rows, c, cols), 1))
    topo = Topology("torus", {"rows": rows, "cols": cols})
    return Network(rows * cols, edges, topo)


def _require_square(s: int) -> int:
    root = math.isqrt(s)
    if root * root != s:
        raise GraphError(
            f"lower-bound constructions need sqrt(s) integral, got s={s}"
        )
    return root


def lower_bound_grid(s: int) -> Network:
    """The §8.1 grid-of-blocks substrate (Fig 5).

    An ``s x (s * sqrt(s))`` grid of ``n = s^{5/2}`` nodes partitioned into
    ``s`` blocks ``H_1..H_s`` of ``s`` rows by ``sqrt(s)`` columns.  Edges
    within a block have weight 1; horizontal edges that cross a block
    boundary have weight ``s``.
    """
    if s < 1:
        raise GraphError(f"lower_bound_grid needs s >= 1, got {s}")
    root = _require_square(s)
    rows, cols = s, s * root
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = grid_node(r, c, cols)
            if c + 1 < cols:
                w = s if (c + 1) % root == 0 else 1
                edges.append((v, v + 1, w))
            if r + 1 < rows:
                edges.append((v, v + cols, 1))
    blocks = tuple(
        tuple(
            grid_node(r, c, cols)
            for r in range(rows)
            for c in range(j * root, (j + 1) * root)
        )
        for j in range(s)
    )
    topo = Topology(
        "lb-grid",
        {"s": s, "root_s": root, "rows": rows, "cols": cols, "blocks": blocks},
    )
    return Network(rows * cols, edges, topo)


def lower_bound_tree(s: int) -> Network:
    """The §8.2 tree-of-blocks substrate (Fig 6).

    Same node layout as :func:`lower_bound_grid`, but each block is a comb
    tree: the leftmost column is a vertical path and each row is a horizontal
    path hanging off it.  Adjacent blocks are joined by a single weight-``s``
    edge along the topmost row, keeping the whole graph a tree.
    """
    if s < 1:
        raise GraphError(f"lower_bound_tree needs s >= 1, got {s}")
    root = _require_square(s)
    rows, cols = s, s * root
    edges = []
    for j in range(s):
        left = j * root
        for r in range(rows):
            for c in range(left, left + root - 1):
                edges.append((grid_node(r, c, cols), grid_node(r, c + 1, cols), 1))
            if r + 1 < rows:
                edges.append(
                    (grid_node(r, left, cols), grid_node(r + 1, left, cols), 1)
                )
        if j + 1 < s:
            edges.append(
                (
                    grid_node(0, left + root - 1, cols),
                    grid_node(0, left + root, cols),
                    s,
                )
            )
    blocks = tuple(
        tuple(
            grid_node(r, c, cols)
            for r in range(rows)
            for c in range(j * root, (j + 1) * root)
        )
        for j in range(s)
    )
    topo = Topology(
        "lb-tree",
        {"s": s, "root_s": root, "rows": rows, "cols": cols, "blocks": blocks},
    )
    return Network(rows * cols, edges, topo)
