"""Command-line interface.

Subcommands::

    repro-dtm run e1 e7 --quick      # rerun experiment tables (default)
    repro-dtm run all --seed 7
    repro-dtm run e1 --quick --trace-out e1.json   # record a trace
    repro-dtm sweep e1 e3 --seeds 1 2 3 --workers 4 --quick  # parallel sweep
    repro-dtm trace summarize e1.json              # digest a saved trace
    repro-dtm trace export e1.json --csv e1.csv
    repro-dtm schedule --topology clique --size 32 --objects 16 --k 2
    repro-dtm schedulers             # list schedulers, bounds, capabilities
    repro-dtm figures                # regenerate the paper's figures (ASCII)
    repro-dtm validate sched.json    # check a saved schedule end to end
    repro-dtm lint src/repro         # static determinism/invariant lint
    repro-dtm lint --rules           # print the rule catalogue
    repro-dtm --list                 # list experiments

``run``/``validate`` accept ``--json FILE`` to additionally write their
results as a versioned JSON document (stable key order, ``schema_version``
field).  Bare experiment ids (``python -m repro e1 --quick``) are accepted
without the ``run`` keyword for convenience.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .experiments.registry import TITLES, experiment_ids, run_experiment

__all__ = ["main"]


def _insert_eid(path: str, eid: str) -> str:
    """``e1.json`` stays put for one target; multi-target runs get
    ``trace-e1.json``-style names so traces don't overwrite each other."""
    p = Path(path)
    return str(p.with_name(f"{p.stem}-{eid}{p.suffix or '.json'}"))


def _cmd_run(args) -> int:
    targets = (
        experiment_ids() if "all" in args.experiments else list(args.experiments)
    )
    tables = {}
    for eid in targets:
        recorder = None
        if args.trace_out:
            from .obs import MemoryRecorder

            recorder = MemoryRecorder(
                meta={"experiment": eid, "quick": args.quick,
                      "seed": args.seed}
            )
        t0 = time.perf_counter()
        table = run_experiment(
            eid, seed=args.seed, quick=args.quick, recorder=recorder
        )
        dt = time.perf_counter() - t0
        tables[eid] = table
        print(table.to_markdown() if args.markdown else table.render())
        print(f"[{eid} finished in {dt:.1f}s]")
        print()
        if recorder is not None:
            from .io import save_trace

            out = (
                args.trace_out
                if len(targets) == 1
                else _insert_eid(args.trace_out, eid)
            )
            save_trace(recorder.trace(), out)
            print(f"trace written to {out}")
            print()
    if args.json:
        from .io import write_json

        write_json(
            args.json,
            "experiment_tables",
            {
                "seed": args.seed,
                "quick": args.quick,
                "tables": {eid: t.as_dict() for eid, t in tables.items()},
            },
        )
        print(f"tables written to {args.json}")
    return 0


def _cmd_trace(args) -> int:
    from .io import load_trace, save_trace_csv

    trace = load_trace(args.path)
    if args.trace_command == "summarize":
        print(trace.summarize())
    else:  # export
        save_trace_csv(trace, args.csv)
        print(f"csv written to {args.csv}")
    return 0


def _build_network(args):
    from .network import network_from_sizes

    return network_from_sizes(args.topology, args.size, args.size2)


def _cmd_schedule(args) -> int:
    import numpy as np

    from .analysis.metrics import evaluate
    from .core import resolve_scheduler
    from .viz import render_gantt
    from .workloads import hot_object_instance, random_k_subsets, zipf_k_subsets

    net = _build_network(args)
    rng = np.random.default_rng(args.seed)
    gen = {
        "random": random_k_subsets,
        "zipf": zipf_k_subsets,
        "hot": hot_object_instance,
    }[args.workload]
    inst = gen(net, args.objects, args.k, rng)
    sched_algo = resolve_scheduler(
        args.scheduler, topology=net.topology.name, kernel=args.kernel
    )
    ev = evaluate(sched_algo, inst, rng)
    print(
        f"{net.topology.name} n={net.n} m={inst.m} w={inst.num_objects} "
        f"k={args.k} workload={args.workload}"
    )
    print(
        f"scheduler={ev.scheduler} makespan={ev.makespan} "
        f"lower_bound={ev.lower_bound} ratio<={ev.ratio:.3f} "
        f"comm_cost={ev.communication_cost}"
    )
    schedule = None
    if args.save or args.gantt or args.certify:
        schedule = sched_algo.schedule(inst, np.random.default_rng(args.seed))
    if args.save:
        from .io import save_schedule

        save_schedule(schedule, args.save)
        print(f"schedule written to {args.save}")
    if args.certify:
        from .staticcheck import certify_schedule

        cert = certify_schedule(schedule, strict=False)
        print(cert.render())
        if args.certificate:
            from .io import save_certificate

            save_certificate(cert, args.certificate)
            print(f"certificate written to {args.certificate}")
    if args.gantt:
        print(render_gantt(schedule))
    return 0


def _cmd_session(args) -> int:
    import json
    import time

    import numpy as np

    from .core import open_session
    from .core.transaction import Transaction

    net = _build_network(args)
    if args.window >= net.n:
        print(f"error: --window must be < n={net.n} (one txn per node)",
              file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    homes = {
        obj: int(node)
        for obj, node in enumerate(rng.integers(0, net.n, size=args.objects))
    }
    total = args.window + args.batch * args.epochs
    txns = [
        Transaction(
            tid,
            tid % net.n,
            rng.choice(args.objects, size=args.k, replace=False),
        )
        for tid in range(total)
    ]
    latencies = []
    with open_session(
        net, algo=args.algo, kernel=args.kernel,
        object_homes=homes, home_policy=args.home_policy,
    ) as sess:
        sess.submit(txns[:args.window])
        sched = sess.current_schedule()
        print(
            f"{net.topology.name} n={net.n} mode={sess.mode} "
            f"algo={sess.algo} window={args.window} batch={args.batch} "
            f"epochs={args.epochs}"
        )
        next_tid = args.window
        for epoch in range(args.epochs):
            oldest = sess.active_ids()[:args.batch]
            batch = txns[next_tid:next_tid + args.batch]
            t0 = time.perf_counter()
            sess.commit(oldest)
            sess.submit(batch)
            sched = sess.current_schedule()
            latencies.append(time.perf_counter() - t0)
            next_tid += args.batch
            if args.verbose:
                print(
                    f"  epoch {epoch:4d}: makespan={sched.makespan:4d} "
                    f"colors={sched.meta['colors_used']:3d} "
                    f"{latencies[-1] * 1e3:7.3f} ms"
                )
        stats = sess.stats
    lat = np.asarray(latencies)
    committed = args.batch * args.epochs
    summary = {
        "committed": committed,
        "throughput_txn_s": committed / float(lat.sum()),
        "p50_latency_s": float(np.percentile(lat, 50)),
        "p99_latency_s": float(np.percentile(lat, 99)),
        "stats": stats,
    }
    print(
        f"committed={committed} "
        f"throughput={summary['throughput_txn_s']:.0f} txn/s "
        f"p50={summary['p50_latency_s'] * 1e3:.3f} ms "
        f"p99={summary['p99_latency_s'] * 1e3:.3f} ms"
    )
    print(
        f"repairs examined={stats.get('repairs_examined', 0)} "
        f"changed={stats.get('repairs_changed', 0)} "
        f"full_rebuilds={stats.get('full_rebuilds', 0)} "
        f"memo hits={stats.get('memo_hits', 0)} "
        f"misses={stats.get('memo_misses', 0)}"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"session summary written to {args.json}")
    return 0


def _cmd_service(args) -> int:
    import numpy as np

    from .service import ServiceConfig, run_service
    from .workloads import spawn
    from .workloads.streams import AdversarialStream, MMPPStream, PoissonStream

    net = _build_network(args)
    rng = spawn(args.seed, "cli-service", args.stream)
    if args.stream == "poisson":
        stream = PoissonStream(net, w=args.objects, k=args.k, rate=args.rate,
                               rng=rng)
    elif args.stream == "mmpp":
        stream = MMPPStream(net, w=args.objects, k=args.k,
                            rate_low=args.rate / 4, rate_high=args.rate * 2,
                            switch=0.1, rng=rng)
    else:  # adversarial
        stream = AdversarialStream(net, w=args.objects, k=args.k,
                                   rho=args.rate, burst=args.burst, rng=rng)
    plan = None
    if args.plan:
        from .io import load_fault_plan

        plan = load_fault_plan(args.plan, network=net)
    config = ServiceConfig(
        window=args.window,
        high_water=args.high_water,
        admission=args.policy,
        deadline=args.deadline,
    )
    report = run_service(
        stream, windows=args.windows, config=config, plan=plan,
        rng=np.random.default_rng(args.seed or 0),
    )
    print(report.render())
    if args.json:
        from .io import save_report

        save_report(report, args.json)
        print(f"service report written to {args.json}")
    return 0


def _cmd_cluster(args) -> int:
    from .cluster import (
        ChaosPlan,
        ClusterConfig,
        StreamSpec,
        WorkerDelay,
        WorkerKill,
        WorkerStall,
        run_cluster,
    )
    from .errors import ReproError
    from .faults.backoff import RetryPolicy
    from .service import ServiceConfig

    events = []
    for spec in args.chaos or []:
        parts = spec.split(":")
        kind = parts[0]
        worker = int(parts[1]) if len(parts) > 1 else min(1, args.workers - 1)
        window = int(parts[2]) if len(parts) > 2 else max(1, args.windows // 2)
        if kind == "kill":
            events.append(WorkerKill(worker, window))
        elif kind == "stall":
            events.append(WorkerStall(
                worker, window, seconds=args.heartbeat_timeout * 20
            ))
        elif kind == "delay":
            events.append(WorkerDelay(
                worker, window, seconds=args.heartbeat_timeout / 10
            ))
        else:
            raise ReproError(
                f"unknown chaos spec {spec!r}; use kind[:worker[:window]] "
                f"with kind in kill/stall/delay"
            )
    stream = StreamSpec(
        kind=args.stream, w=args.objects, k=args.k, rate=args.rate,
        rate_low=args.rate / 4, rate_high=args.rate * 2, burst=args.burst,
        seed=args.seed, assign=args.assign,
    )
    svc = ServiceConfig(window=args.window, high_water=args.high_water)
    config = ClusterConfig(
        workers=args.workers,
        windows=args.windows,
        heartbeat_timeout_s=args.heartbeat_timeout,
        retry=RetryPolicy(max_retries=args.max_restarts, max_wait=4),
        restart_backoff_s=0.02,
        checkpoint_every=args.checkpoint_every,
        on_crash=args.on_crash,
        on_straggler=args.on_straggler,
    )
    report = run_cluster(
        args.topology, args.size, args.size2, stream, svc, config,
        chaos=ChaosPlan(events),
    )
    print(report.render())
    status = 0
    if args.parity:
        baseline = run_cluster(
            args.topology, args.size, args.size2, stream, svc, config,
        )
        match = baseline.parity_key() == report.parity_key()
        print(
            "parity with fault-free run: " + ("OK" if match else "MISMATCH")
        )
        status = 0 if match else 1
    if args.json:
        from .io import save_report

        save_report(report, args.json)
        print(f"cluster report written to {args.json}")
    return status


def _cmd_figures(args) -> int:
    from .core import GridScheduler
    from .network import cluster, grid, lower_bound_grid, lower_bound_tree, star
    from .viz import (
        render_block_graph,
        render_cluster,
        render_line_blocks,
        render_object_path,
        render_star_rings,
        render_subgrid_order,
    )
    from .workloads import random_k_subsets, root_rng

    print("Fig 1:", render_line_blocks(32, 8), sep="\n")
    print("\nFig 2:", render_subgrid_order(16, 16, 4), sep="\n")
    inst = random_k_subsets(grid(16), w=16, k=2, rng=root_rng(args.seed))
    sched = GridScheduler(side=4).schedule(inst)
    hot = max(inst.objects, key=inst.load)
    print(render_object_path(sched, hot, cols=16))
    print("\nFig 3:", render_cluster(cluster(5, 6, gamma=8)), sep="\n")
    print("\nFig 4:", render_star_rings(star(8, 7)), sep="\n")
    print("\nFig 5:", render_block_graph(lower_bound_grid(4)), sep="\n")
    print("\nFig 6:", render_block_graph(lower_bound_tree(4)), sep="\n")
    return 0


def _cmd_validate(args) -> int:
    from .bounds import makespan_lower_bound
    from .io import load_fault_plan, load_schedule
    from .sim import execute

    from .staticcheck import certify_schedule

    schedule = load_schedule(args.path)
    schedule.validate()
    trace = execute(schedule)
    lb = makespan_lower_bound(schedule.instance)
    print(
        f"OK: {len(schedule.commit_times)} commits, makespan "
        f"{schedule.makespan} (lower bound {lb}), communication "
        f"{trace.total_distance}, peak in-flight {trace.max_in_flight}"
    )
    cert = certify_schedule(schedule, strict=False)
    print(cert.render())
    result = {
        "path": str(args.path),
        "valid": True,
        "commits": len(schedule.commit_times),
        "makespan": schedule.makespan,
        "lower_bound": lb,
        "communication": trace.total_distance,
        "max_in_flight": trace.max_in_flight,
        "certificate": cert.as_dict(),
    }
    if args.certificate:
        from .io import save_certificate

        save_certificate(cert, args.certificate)
        print(f"certificate written to {args.certificate}")
    if args.plan:
        from .faults import degradation_report, faulty_execute

        plan = load_fault_plan(args.plan, network=schedule.instance.network)
        ftrace = faulty_execute(schedule, plan)
        print(f"fault plan OK: {len(plan)} events validated against the "
              f"network; replay:")
        rep = degradation_report(schedule, plan, ftrace)
        print(rep.render())
        result["degradation"] = rep.as_dict()
    if args.json:
        from .io import write_json

        write_json(args.json, "validation", result)
        print(f"validation written to {args.json}")
    return 0


def _cmd_lint(args) -> int:
    from .staticcheck import rule_catalog, run_lint, run_typing_gate

    if args.rules:
        for entry in rule_catalog():
            print(
                f"{entry['rule']:8s} [{entry['severity']:7s}] "
                f"{entry['title']} (scope: {entry['scope']})"
            )
            print(f"{'':8s} fix: {entry['fix_hint']}")
        return 0
    paths = args.paths or [str(Path(__file__).parent)]
    select = args.select.split(",") if args.select else None
    report = run_lint(paths, select=select)
    gate_steps = run_typing_gate() if args.gate else []
    if args.json:
        from .io import dumps_canonical, json_payload, write_json

        body = report.as_dict()
        if gate_steps:
            body["gate"] = [step.as_dict() for step in gate_steps]
        if args.json == "-":
            print(dumps_canonical(json_payload("lint", body)))
        else:
            write_json(args.json, "lint", body)
            print(f"lint report written to {args.json}")
    if args.json != "-":
        print(report.render())
        for step in gate_steps:
            print(step.render())
    gate_ok = all(step.ok for step in gate_steps)
    return 0 if (report.ok and gate_ok) else 1


def _cmd_report(args) -> int:
    from .experiments.report import generate_report

    out = generate_report(
        args.output,
        seed=args.seed,
        quick=not args.full,
        experiments=args.experiments or None,
        json_out=args.json,
    )
    print(f"report written to {out}")
    if args.json:
        print(f"tables written to {args.json}")
    return 0


def _list_experiments() -> int:
    for eid in experiment_ids():
        print(f"{eid:4s} {TITLES[eid]}")
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.sweep import run_sweep

    targets = (
        experiment_ids() if "all" in args.experiments else list(args.experiments)
    )
    t0 = time.perf_counter()
    report = run_sweep(
        targets,
        seeds=args.seeds,
        quick=args.quick,
        workers=args.workers,
    )
    dt = time.perf_counter() - t0
    for cell, prof in zip(report.cells, report.profiles):
        rows = len(cell["table"]["rows"])
        print(
            f"{cell['experiment']:4s} seed={cell['seed']:<4d} "
            f"rows={rows:<3d} wall={prof['wall_s']:.2f}s"
        )
    print(
        f"[{len(report.cells)} cells, workers={report.workers}, "
        f"{dt:.1f}s wall]"
    )
    if args.json:
        Path(args.json).write_text(report.to_json())
        print(f"sweep report written to {args.json}")
    return 0


def _cmd_schedulers(args) -> int:
    from .core import SCHEDULER_INFO

    for info in SCHEDULER_INFO.values():
        topos = ",".join(info.topologies) or "-"
        caps = ",".join(sorted(info.capabilities)) or "-"
        print(f"{info.name:9s} topo={topos:38s} caps={caps}")
        print(f"{'':9s} bound: {info.bound}")
    return 0


def _cmd_topologies(args) -> int:
    from .network import TOPOLOGY_INFO

    for info in TOPOLOGY_INFO.values():
        params = ", ".join(
            p.name if p.required else f"{p.name}={p.default!r}"
            for p in info.params
        )
        print(
            f"{info.name:14s} algo={info.default_algo:9s} "
            f"bound={info.bound_kind:9s} params=({params})"
        )
        print(f"{'':14s} {info.doc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # convenience: bare experiment ids imply `run`
    if argv and (argv[0] in experiment_ids() or argv[0] == "all"):
        argv.insert(0, "run")

    parser = argparse.ArgumentParser(
        prog="repro-dtm",
        description=(
            "Reproduction of 'Fast Scheduling in Distributed Transactional "
            "Memory' (SPAA 2017)."
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    sub = parser.add_subparsers(dest="command")

    p_run = sub.add_parser("run", help="run experiment tables")
    p_run.add_argument("experiments", nargs="+", help="e1..e21 or 'all'")
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--quick", action="store_true")
    p_run.add_argument("--markdown", action="store_true")
    p_run.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record an observability trace per experiment "
                            "and write it as JSON")
    p_run.add_argument("--json", default=None, metavar="FILE",
                       help="also write the result tables as JSON")
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run experiments x seeds across worker processes"
    )
    p_sweep.add_argument("experiments", nargs="+", help="e1..e21 or 'all'")
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=[0],
                         metavar="S", help="seeds to sweep (default: 0)")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (default: 1; result is "
                              "identical for any count)")
    p_sweep.add_argument("--quick", action="store_true")
    p_sweep.add_argument("--json", default=None, metavar="FILE",
                         help="write the merged sweep report as JSON")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_trace = sub.add_parser("trace", help="inspect a saved trace JSON")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tsum = trace_sub.add_parser(
        "summarize", help="print a digest of a saved trace"
    )
    p_tsum.add_argument("path")
    p_tsum.set_defaults(func=_cmd_trace)
    p_texp = trace_sub.add_parser(
        "export", help="export a saved trace's events as CSV"
    )
    p_texp.add_argument("path")
    p_texp.add_argument("--csv", required=True, metavar="OUT")
    p_texp.set_defaults(func=_cmd_trace)

    p_sched = sub.add_parser("schedule", help="schedule an ad-hoc instance")
    p_sched.add_argument("--topology", required=True)
    p_sched.add_argument("--size", type=int, required=True,
                         help="n / side / dim / alpha (per topology)")
    p_sched.add_argument("--size2", type=int, default=None,
                         help="cols / beta / ray length where applicable")
    p_sched.add_argument("--objects", type=int, default=16)
    p_sched.add_argument("--k", type=int, default=2)
    p_sched.add_argument("--workload", default="random",
                         choices=["random", "zipf", "hot"])
    p_sched.add_argument("--scheduler", default="auto")
    p_sched.add_argument("--kernel", default="auto",
                         choices=["auto", "reference", "vectorized"],
                         help="implementation switch for supporting "
                              "schedulers")
    p_sched.add_argument("--seed", type=int, default=0)
    p_sched.add_argument("--save", default=None, help="write schedule JSON")
    p_sched.add_argument("--certify", action="store_true",
                         help="statically certify the schedule and print "
                              "the signed certificate")
    p_sched.add_argument("--certificate", default=None, metavar="FILE",
                         help="with --certify, also write the certificate "
                              "JSON envelope")
    p_sched.add_argument("--gantt", action="store_true")
    p_sched.set_defaults(func=_cmd_schedule)

    p_sess = sub.add_parser(
        "session",
        help="drive a rolling scheduler session (incremental engine demo)",
    )
    p_sess.add_argument("--topology", default="grid")
    p_sess.add_argument("--size", type=int, default=8,
                        help="n / side / dim / alpha (per topology)")
    p_sess.add_argument("--size2", type=int, default=None,
                        help="cols / beta / ray length where applicable")
    p_sess.add_argument("--algo", default="auto",
                        help="scheduler algo (auto routes by topology)")
    p_sess.add_argument("--kernel", default="auto")
    p_sess.add_argument("--window", type=int, default=48,
                        help="live transactions kept in flight")
    p_sess.add_argument("--batch", type=int, default=8,
                        help="transactions committed+admitted per epoch")
    p_sess.add_argument("--epochs", type=int, default=50)
    p_sess.add_argument("--objects", type=int, default=64)
    p_sess.add_argument("--k", type=int, default=2)
    p_sess.add_argument("--home-policy", default="static",
                        choices=["static", "follow"])
    p_sess.add_argument("--seed", type=int, default=0)
    p_sess.add_argument("--verbose", action="store_true",
                        help="print per-epoch makespan and latency")
    p_sess.add_argument("--json", default=None, metavar="FILE",
                        help="write the session summary JSON")
    p_sess.set_defaults(func=_cmd_session)

    p_svc = sub.add_parser(
        "service", help="run the continuous-arrival scheduling service"
    )
    p_svc.add_argument("--topology", required=True)
    p_svc.add_argument("--size", type=int, required=True,
                       help="n / side / dim / alpha (per topology)")
    p_svc.add_argument("--size2", type=int, default=None,
                       help="cols / beta / ray length where applicable")
    p_svc.add_argument("--stream", default="poisson",
                       choices=["poisson", "mmpp", "adversarial"])
    p_svc.add_argument("--rate", type=float, default=0.5,
                       help="arrival rate (poisson/mmpp mean; rho for "
                            "adversarial)")
    p_svc.add_argument("--burst", type=int, default=4,
                       help="adversarial burst bound b")
    p_svc.add_argument("--objects", type=int, default=16)
    p_svc.add_argument("--k", type=int, default=2)
    p_svc.add_argument("--windows", type=int, default=50,
                       help="arrival windows to run")
    p_svc.add_argument("--window", type=int, default=16,
                       help="window length in steps")
    p_svc.add_argument("--high-water", type=int, default=64,
                       help="backpressure high-water mark")
    p_svc.add_argument("--policy", default="defer",
                       choices=["defer", "shed", "strict"])
    p_svc.add_argument("--deadline", type=int, default=None,
                       help="max sojourn before a queued transaction expires")
    p_svc.add_argument("--plan", default=None,
                       help="fault plan JSON to inject live")
    p_svc.add_argument("--seed", type=int, default=0)
    p_svc.add_argument("--json", default=None, metavar="FILE",
                       help="write the service report JSON envelope")
    p_svc.set_defaults(func=_cmd_service)

    p_cl = sub.add_parser(
        "cluster",
        help="run the supervised multi-process scheduling cluster",
    )
    p_cl.add_argument("--topology", default="grid")
    p_cl.add_argument("--size", type=int, default=3,
                      help="n / side / dim / alpha (per topology)")
    p_cl.add_argument("--size2", type=int, default=None,
                      help="cols / beta / ray length where applicable")
    p_cl.add_argument("--workers", type=int, default=2,
                      help="worker processes (one tid residue class each)")
    p_cl.add_argument("--stream", default="poisson",
                      choices=["poisson", "mmpp", "adversarial"])
    p_cl.add_argument("--rate", type=float, default=0.5,
                      help="arrival rate (poisson/mmpp mean; rho for "
                           "adversarial)")
    p_cl.add_argument("--burst", type=int, default=4,
                      help="adversarial burst bound b")
    p_cl.add_argument("--objects", type=int, default=16)
    p_cl.add_argument("--k", type=int, default=2)
    p_cl.add_argument("--assign", default="tid",
                      choices=["tid", "shard"],
                      help="worker ownership: 'tid' residue classes, or "
                           "'shard' coordinator-shard handoff (sharded "
                           "topology families only)")
    p_cl.add_argument("--windows", type=int, default=12,
                      help="arrival windows each worker runs")
    p_cl.add_argument("--window", type=int, default=16,
                      help="window length in steps")
    p_cl.add_argument("--high-water", type=int, default=64,
                      help="backpressure high-water mark")
    p_cl.add_argument("--chaos", action="append", default=None,
                      metavar="KIND[:WORKER[:WINDOW]]",
                      help="inject a chaos event (kill/stall/delay); "
                           "repeatable; defaults: worker 1, mid-run window")
    p_cl.add_argument("--heartbeat-timeout", type=float, default=2.0,
                      help="seconds of silence before a worker is a "
                           "straggler")
    p_cl.add_argument("--max-restarts", type=int, default=3,
                      help="per-worker restart budget before retirement")
    p_cl.add_argument("--checkpoint-every", type=int, default=8,
                      help="windows between full state checkpoints")
    p_cl.add_argument("--on-crash", default="restart",
                      choices=["restart", "strict"])
    p_cl.add_argument("--on-straggler", default="restart",
                      choices=["restart", "shed", "strict"])
    p_cl.add_argument("--parity", action="store_true",
                      help="also run fault-free and verify the chaos run's "
                           "parity_key matches (exit 1 on mismatch)")
    p_cl.add_argument("--seed", type=int, default=0)
    p_cl.add_argument("--json", default=None, metavar="FILE",
                      help="write the cluster report JSON envelope")
    p_cl.set_defaults(func=_cmd_cluster)

    p_lint = sub.add_parser(
        "lint", help="static determinism/invariant lint over source trees"
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--select", default=None, metavar="RULE,...",
                        help="comma-separated rule ids to run "
                             "(default: all rules)")
    p_lint.add_argument("--json", default=None, metavar="FILE",
                        help="write the findings as an enveloped JSON "
                             "document ('-' for stdout)")
    p_lint.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--gate", action="store_true",
                        help="additionally run ruff and mypy --strict "
                             "when installed")
    p_lint.set_defaults(func=_cmd_lint)

    p_list = sub.add_parser(
        "schedulers", help="list the paper's schedulers and their bounds"
    )
    p_list.set_defaults(func=_cmd_schedulers)

    p_topo = sub.add_parser(
        "topologies",
        help="list the registered topology families and their parameters",
    )
    p_topo.set_defaults(func=_cmd_topologies)

    p_fig = sub.add_parser("figures", help="regenerate the paper's figures")
    p_fig.add_argument("--seed", type=int, default=7)
    p_fig.set_defaults(func=_cmd_figures)

    p_val = sub.add_parser("validate", help="validate a saved schedule JSON")
    p_val.add_argument("path")
    p_val.add_argument("--plan", default=None,
                       help="fault plan JSON to validate and replay "
                            "against the schedule")
    p_val.add_argument("--json", default=None, metavar="FILE",
                       help="also write the validation verdict as JSON")
    p_val.add_argument("--certificate", default=None, metavar="FILE",
                       help="also write the signed static certificate")
    p_val.set_defaults(func=_cmd_validate)

    p_rep = sub.add_parser(
        "report", help="write a full reproduction report (tables + figures)"
    )
    p_rep.add_argument("-o", "--output", default="REPRODUCTION_REPORT.md")
    p_rep.add_argument("--seed", type=int, default=None)
    p_rep.add_argument("--full", action="store_true",
                       help="full sweeps (default: quick)")
    p_rep.add_argument("--json", default=None, metavar="FILE",
                       help="also write every table as JSON")
    p_rep.add_argument("experiments", nargs="*", help="subset of e1..e21")
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    if args.list or args.command is None:
        return _list_experiments()
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
