"""Control-flow schedulers: RPC, migration, and the lease-style hybrid.

All three are priority list schedulers over per-object lock availability
(feasible by construction): each transaction starts as soon as every lock
it needs can be granted in sequence-order, and the lock release times
become the next requester's availability.

* **RPC** ([31]'s remote-call flavour): acquisitions are round trips from
  the transaction's node, overlappable, so the service time is
  ``2 * max_o dist``.
* **Migration** ([31]'s thread-migration flavour): the thread walks a
  nearest-neighbour+2-opt tour of its objects' homes, acquiring on
  arrival; service time is the walk length, but early-acquired locks stay
  held for the whole walk.
* **Hybrid** ([15]'s lease-style decision): per transaction, take
  whichever of the two completes earlier against the current lock
  availability.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..bounds.walks import nearest_neighbor_path, two_opt_path
from ..core.instance import Instance
from .model import ControlFlowSchedule, LockInterval

__all__ = ["ControlFlowScheduler"]

_Candidate = Tuple[int, int, Dict[int, LockInterval], int, int]
# (start, commit, locks-by-obj, commit_node, walk_cost)


class ControlFlowScheduler:
    """List scheduler for the control-flow model.

    Parameters
    ----------
    mode:
        ``"rpc"``, ``"migration"``, or ``"hybrid"``.
    """

    def __init__(self, mode: str = "rpc") -> None:
        if mode not in ("rpc", "migration", "hybrid"):
            raise ValueError(f"mode must be rpc/migration/hybrid, got {mode!r}")
        self.mode = mode
        self.name = f"control-flow-{mode}"

    # ------------------------------------------------------------------ #

    def _rpc_candidate(
        self, instance: Instance, t, free: Dict[int, int]
    ) -> _Candidate:
        dist = instance.network.dist
        ds = {o: dist(t.node, instance.home(o)) for o in t.objects}
        start = max(
            [0] + [free.get(o, 0) - d for o, d in ds.items()]
        )
        service = max(1, 2 * max(ds.values()))
        commit = start + service
        # the hold must strictly contain the commit step (release news
        # takes d steps back to the home, at least one step)
        locks = {
            o: LockInterval(t.tid, o, start + d, commit + max(d, 1))
            for o, d in ds.items()
        }
        return start, commit, locks, t.node, 2 * sum(ds.values())

    def _migration_candidate(
        self, instance: Instance, t, free: Dict[int, int]
    ) -> _Candidate:
        dist_m = instance.network.distance_matrix
        homes = sorted({instance.home(o) for o in t.objects})
        nodes = [t.node] + [h for h in homes if h != t.node]
        idx = np.asarray(nodes, dtype=np.intp)
        sub = dist_m[np.ix_(idx, idx)]
        order = two_opt_path(sub, nearest_neighbor_path(sub, 0))
        # cumulative arrival offset at each visited node
        offsets = {nodes[order[0]]: 0}
        cum = 0
        for a, b in zip(order, order[1:]):
            cum += int(sub[a, b])
            offsets[nodes[b]] = cum
        walk = cum
        obj_offset = {o: offsets[instance.home(o)] for o in t.objects}
        start = max(
            [0] + [free.get(o, 0) - off for o, off in obj_offset.items()]
        )
        commit = start + max(1, walk)
        commit_node = nodes[order[-1]]
        dist = instance.network.dist
        locks = {}
        for o, off in obj_offset.items():
            release = commit + max(dist(commit_node, instance.home(o)), 1)
            locks[o] = LockInterval(t.tid, o, start + off, release)
        return start, commit, locks, commit_node, walk

    # ------------------------------------------------------------------ #

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> ControlFlowSchedule:
        free: Dict[int, int] = {}
        starts: Dict[int, int] = {}
        commits: Dict[int, int] = {}
        locks: Dict[tuple[int, int], LockInterval] = {}
        walk_cost = 0
        choices: List[str] = []
        for t in sorted(instance.transactions, key=lambda t: t.tid):
            if self.mode == "rpc":
                cand = self._rpc_candidate(instance, t, free)
                choices.append("rpc")
            elif self.mode == "migration":
                cand = self._migration_candidate(instance, t, free)
                choices.append("migration")
            else:
                rpc = self._rpc_candidate(instance, t, free)
                mig = self._migration_candidate(instance, t, free)
                cand = rpc if rpc[1] <= mig[1] else mig
                choices.append("rpc" if cand is rpc else "migration")
            start, commit, obj_locks, _node, cost = cand
            starts[t.tid] = start
            commits[t.tid] = commit
            walk_cost += cost
            for o, iv in obj_locks.items():
                locks[(t.tid, o)] = iv
                free[o] = iv.release
        meta = {
            "scheduler": self.name,
            "walk_cost": walk_cost,
            "migration_fraction": (
                choices.count("migration") / max(len(choices), 1)
            ),
        }
        return ControlFlowSchedule(
            instance, starts, commits, locks, self.mode, meta
        )
