"""Control-flow execution model (§1.2): immobile objects, mobile work."""

from .model import ControlFlowSchedule, LockInterval
from .scheduler import ControlFlowScheduler

__all__ = ["LockInterval", "ControlFlowSchedule", "ControlFlowScheduler"]
