"""The control-flow execution model (§1.2; [31], [15], [27]).

In the control-flow model shared objects are **immobile** at their home
nodes; transactions reach them instead of the other way around, either by

* **RPC**: the transaction stays home and acquires each object's lock by
  a request/grant round trip (``2 * dist`` per object, overlappable), or
* **migration**: the transaction's thread physically walks through its
  objects' homes, acquiring each lock on arrival, and commits at the end
  of the walk.

Either way, an object's lock is held for an interval of real time and two
transactions sharing an object must hold it in **disjoint intervals** --
that is the feasibility condition, replacing the base model's mobile-copy
itineraries.  Palmieri et al. [27] study exactly this data-flow vs
control-flow trade-off in partially-replicated TMs; experiment E15
reproduces the comparison on this library's substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..core.instance import Instance
from ..errors import InfeasibleScheduleError

__all__ = ["LockInterval", "ControlFlowSchedule"]


@dataclass(frozen=True)
class LockInterval:
    """One transaction's exclusive hold of one object's lock.

    Held during ``[acquire, release)`` at the object's home node.
    """

    tid: int
    obj: int
    acquire: int
    release: int

    def overlaps(self, other: "LockInterval") -> bool:
        """True iff the two holds intersect in time."""
        return self.acquire < other.release and other.acquire < self.release


class ControlFlowSchedule:
    """Start/commit times plus per-object lock intervals.

    Parameters
    ----------
    instance:
        The (base-model) instance being executed control-flow style; its
        ``object_homes`` are the immobile lock locations.
    start_times / commit_times:
        Per-transaction execution window.
    locks:
        ``(tid, obj) -> LockInterval``; must cover every access.
    mode:
        Free-form label (``"rpc"``, ``"migration"``, ``"hybrid"``).
    """

    def __init__(
        self,
        instance: Instance,
        start_times: Mapping[int, int],
        commit_times: Mapping[int, int],
        locks: Mapping[tuple[int, int], LockInterval],
        mode: str = "rpc",
        meta: Mapping[str, object] | None = None,
    ) -> None:
        self.instance = instance
        self.start_times = {t: int(v) for t, v in start_times.items()}
        self.commit_times = {t: int(v) for t, v in commit_times.items()}
        self.locks: Dict[tuple[int, int], LockInterval] = dict(locks)
        self.mode = mode
        self.meta: Dict[str, object] = dict(meta or {})
        for t in instance.transactions:
            if t.tid not in self.commit_times:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} has no commit time"
                )

    @property
    def makespan(self) -> int:
        """Time of the last commit."""
        return max(self.commit_times.values())

    def time_of(self, tid: int) -> int:
        return self.commit_times[tid]

    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`InfeasibleScheduleError` unless feasible.

        Checks: every access has a lock interval; intervals cover the
        physics of their mode (acquire no earlier than the request can
        reach the home, release no earlier than commit news can); and
        conflicting holds are disjoint.
        """
        inst = self.instance
        dist = inst.network.dist
        by_obj: Dict[int, list[LockInterval]] = {}
        for t in inst.transactions:
            start = self.start_times[t.tid]
            commit = self.commit_times[t.tid]
            if commit < start:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} commits at {commit} before its "
                    f"start {start}"
                )
            for obj in t.objects:
                iv = self.locks.get((t.tid, obj))
                if iv is None:
                    raise InfeasibleScheduleError(
                        f"transaction {t.tid} holds no lock on object {obj}"
                    )
                d = dist(t.node, inst.home(obj))
                if iv.acquire < start + d:
                    raise InfeasibleScheduleError(
                        f"lock ({t.tid}, {obj}) acquired at {iv.acquire}, "
                        f"before a request from node {t.node} can arrive "
                        f"(start {start} + dist {d})"
                    )
                if iv.release <= commit:
                    raise InfeasibleScheduleError(
                        f"lock ({t.tid}, {obj}) released at {iv.release}, "
                        f"but the hold must strictly contain the commit "
                        f"step {commit}"
                    )
                by_obj.setdefault(obj, []).append(iv)
        for obj, ivals in by_obj.items():
            ivals.sort(key=lambda iv: (iv.acquire, iv.tid))
            for a, b in zip(ivals, ivals[1:]):
                if a.overlaps(b):
                    raise InfeasibleScheduleError(
                        f"object {obj}: transactions {a.tid} and {b.tid} "
                        f"hold the lock simultaneously "
                        f"([{a.acquire},{a.release}) vs "
                        f"[{b.acquire},{b.release}))"
                    )

    def is_feasible(self) -> bool:
        try:
            self.validate()
        except InfeasibleScheduleError:
            return False
        return True

    @property
    def communication_cost(self) -> int:
        """Total message/thread distance.

        RPC: two trips per access (request + grant) plus release; we count
        the canonical ``2 * dist`` per access.  Migration: the thread's
        walk, approximated by summing lock-to-lock hops recorded in meta
        when present, else the RPC accounting.
        """
        if "walk_cost" in self.meta:
            return int(self.meta["walk_cost"])  # set by migration scheduler
        inst = self.instance
        dist = inst.network.dist
        total = 0
        for t in inst.transactions:
            for obj in t.objects:
                total += 2 * dist(t.node, inst.home(obj))
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ControlFlowSchedule(mode={self.mode!r}, "
            f"m={len(self.commit_times)}, makespan={self.makespan})"
        )
