"""Certified makespan lower bounds for problem instances.

Every theorem in the paper compares a schedule against lower bounds rather
than the (NP-hard) optimum; the experiments do the same.  For an instance:

* **walk bound** -- an object at unit speed must cover its shortest walk
  (home -> all requesters), so ``max_o walk(o)`` lower-bounds the makespan;
  we use the exact Held-Karp value for small user sets and the MST bound
  otherwise (both certified).
* **load bound** -- an object used by ``ell`` transactions forces ``ell``
  distinct commit steps separated by at least the minimum pairwise
  requester distance: ``(ell - 1) * min_gap + 1``.
* the trivial ``>= 1``.

:func:`makespan_lower_bound` returns the max of all of these, and
:func:`object_report` exposes the per-object detail used by the §8
experiments (walk and tour estimates per object).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.instance import Instance
from .walks import mst_weight, tour_length, walk_bounds

__all__ = ["ObjectBounds", "object_report", "makespan_lower_bound"]


@dataclass(frozen=True)
class ObjectBounds:
    """Per-object travel bounds.

    ``walk_lower``/``walk_upper`` bracket the shortest walk from the home;
    ``tour_estimate`` is a heuristic closed TSP tour over the requesters
    (the quantity Theorem 6 is phrased in); ``load`` is the user count.
    """

    obj: int
    load: int
    walk_lower: int
    walk_upper: int
    tour_estimate: int
    tour_lower: int


def _required_nodes(instance: Instance, obj: int) -> list[int]:
    nodes = {t.node for t in instance.users(obj)}
    nodes.add(instance.home(obj))
    return sorted(nodes)


def object_report(instance: Instance) -> Dict[int, ObjectBounds]:
    """Compute :class:`ObjectBounds` for every object with at least one user."""
    dist_matrix = instance.network.distance_matrix
    report: Dict[int, ObjectBounds] = {}
    for obj in instance.objects:
        users = instance.users(obj)
        if not users:
            continue
        nodes = _required_nodes(instance, obj)
        idx = np.asarray(nodes, dtype=np.intp)
        sub = dist_matrix[np.ix_(idx, idx)]
        start = nodes.index(instance.home(obj))
        lo, hi = walk_bounds(sub, start)
        report[obj] = ObjectBounds(
            obj=obj,
            load=len(users),
            walk_lower=lo,
            walk_upper=hi,
            tour_estimate=tour_length(sub),
            tour_lower=mst_weight(sub),
        )
    return report


def _load_bound(instance: Instance, obj: int) -> int:
    """``(ell - 1) * min_gap + 1``: commits sharing an object are spaced."""
    users = instance.users(obj)
    if len(users) < 2:
        return 1
    dist = instance.network.dist
    nodes = [t.node for t in users]
    min_gap = min(
        dist(a, b) for i, a in enumerate(nodes) for b in nodes[i + 1 :]
    )
    return (len(users) - 1) * min_gap + 1


def makespan_lower_bound(
    instance: Instance, report: Dict[int, ObjectBounds] | None = None
) -> int:
    """Largest certified lower bound on any schedule's makespan."""
    if report is None:
        report = object_report(instance)
    best = 1
    for obj, ob in report.items():
        best = max(best, ob.walk_lower, _load_bound(instance, obj))
    return best
