"""Object walks and TSP-style tours over the metric closure (§8 preamble).

The *shortest walk* of an object is the minimum total distance needed to
start at its home and visit every transaction that requests it; the paper's
execution-time lower bound is the maximum shortest walk over all objects
(objects move at unit speed).  On the metric closure the shortest walk
equals the shortest Hamiltonian *path* from the home over the required
nodes, which we solve exactly with Held-Karp bitmask DP for small sets and
bound from both sides for large ones:

* lower bound: the MST weight of the metric closure on the required nodes
  (any covering walk shortcuts to a spanning tree), which also dominates
  the max-pairwise-distance bound;
* upper bound: nearest-neighbour construction polished by 2-opt.

Tours (cycles) are related by ``walk <= tour <= 2 * walk``, the inequality
§8 uses to phrase its result in terms of TSP tour lengths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

__all__ = [
    "held_karp_path",
    "nearest_neighbor_path",
    "two_opt_path",
    "mst_weight",
    "walk_bounds",
    "tour_length",
]

#: Largest required-node count solved exactly (2^N * N^2 DP states).
EXACT_LIMIT = 13


def held_karp_path(dist: np.ndarray, start: int = 0) -> int:
    """Exact shortest Hamiltonian path from ``start`` over all nodes.

    ``dist`` is a small square metric matrix; returns the optimal walk
    length (0 for a single node).
    """
    n = dist.shape[0]
    if n <= 1:
        return 0
    others = [i for i in range(n) if i != start]
    idx = {v: i for i, v in enumerate(others)}
    full = (1 << len(others)) - 1
    INF = np.iinfo(np.int64).max // 4
    # dp[mask][j] = best cost of a path start -> ... -> others[j] visiting mask
    dp = np.full((full + 1, len(others)), INF, dtype=np.int64)
    for v in others:
        dp[1 << idx[v], idx[v]] = dist[start, v]
    for mask in range(1, full + 1):
        row = dp[mask]
        for j in range(len(others)):
            if not (mask >> j) & 1 or row[j] >= INF:
                continue
            base = row[j]
            vj = others[j]
            rest = (~mask) & full
            sub = rest
            while sub:
                b = sub & (-sub)
                t = b.bit_length() - 1
                cand = base + dist[vj, others[t]]
                nmask = mask | b
                if cand < dp[nmask, t]:
                    dp[nmask, t] = cand
                sub ^= b
    return int(dp[full].min())


def nearest_neighbor_path(dist: np.ndarray, start: int = 0) -> list[int]:
    """Greedy nearest-neighbour visiting order (a walk upper bound)."""
    n = dist.shape[0]
    unvisited = set(range(n)) - {start}
    order = [start]
    cur = start
    while unvisited:
        nxt = min(unvisited, key=lambda v: (dist[cur, v], v))
        order.append(nxt)
        unvisited.remove(nxt)
        cur = nxt
    return order


def path_length(dist: np.ndarray, order: Sequence[int]) -> int:
    """Total length of the walk visiting ``order`` in sequence."""
    return int(sum(dist[a, b] for a, b in zip(order, order[1:])))


def two_opt_path(
    dist: np.ndarray, order: list[int], fixed_start: bool = True
) -> list[int]:
    """2-opt improvement of a path (start pinned when ``fixed_start``)."""
    order = list(order)
    n = len(order)
    improved = True
    lo = 1 if fixed_start else 0
    while improved:
        improved = False
        for i in range(lo, n - 1):
            for j in range(i + 1, n):
                # reversing order[i..j]; path edges (i-1,i) and (j, j+1)
                a = dist[order[i - 1], order[j]] if i > 0 else 0
                b = dist[order[i - 1], order[i]] if i > 0 else 0
                c = dist[order[j], order[j + 1]] if j + 1 < n else 0
                d = dist[order[i], order[j + 1]] if j + 1 < n else 0
                if a + d < b + c:
                    order[i : j + 1] = reversed(order[i : j + 1])
                    improved = True
    return order


def mst_weight(dist: np.ndarray) -> int:
    """MST weight of a metric matrix -- a certified walk lower bound.

    Scipy's sparse MST treats zero entries as *missing* edges, which would
    silently drop zero-distance pairs (e.g. an object's home coinciding
    with a requester) and overestimate the bound; shifting all weights by
    +1 and subtracting ``n - 1`` afterwards keeps every edge present.
    """
    n = dist.shape[0]
    if n <= 1:
        return 0
    shifted = dist.astype(np.float64) + 1.0
    np.fill_diagonal(shifted, 0.0)
    tree = minimum_spanning_tree(shifted)
    return int(round(tree.sum())) - (n - 1)


def walk_bounds(dist: np.ndarray, start: int = 0) -> tuple[int, int]:
    """``(lower, upper)`` bounds on the shortest walk from ``start``.

    Exact (lower == upper) when the node count is within
    :data:`EXACT_LIMIT`; otherwise MST vs 2-opt-polished nearest-neighbour.
    """
    n = dist.shape[0]
    if n <= 1:
        return 0, 0
    if n <= EXACT_LIMIT:
        exact = held_karp_path(dist, start)
        return exact, exact
    lower = mst_weight(dist)
    upper = path_length(
        dist, two_opt_path(dist, nearest_neighbor_path(dist, start))
    )
    return lower, upper


def tour_length(dist: np.ndarray) -> int:
    """Heuristic TSP *tour* (cycle) length: NN + 2-opt, closed up.

    Used by the §8 experiments to report per-object tour lengths; a
    certified tour lower bound is the MST weight.
    """
    n = dist.shape[0]
    if n <= 1:
        return 0
    if n == 2:
        return int(2 * dist[0, 1])
    order = two_opt_path(dist, nearest_neighbor_path(dist, 0), fixed_start=False)
    return path_length(dist, order) + int(dist[order[-1], order[0]])
