"""The §8 lower-bound problem instances (Theorem 6, Figs 5-6).

On the grid-of-blocks (or tree-of-blocks) substrate with ``s`` blocks
``H_1..H_s`` of ``s x sqrt(s)`` nodes, each transaction uses exactly two
objects:

* its block's *serializer* ``a_i`` (set ``A``), requested by every
  transaction of block ``H_i`` and homed at the top-left node of ``H_1``;
* one uniformly random ``b_j`` from the pool ``B = {b_1..b_s}``; each
  ``b_j`` is homed at a node of ``H_1`` that requests it (or the top-left
  node of ``H_1`` if none does).

Lemma 10 shows every object's shortest walk (hence TSP tour) is ``O(s^2)``
w.h.p., while Theorem 6 shows every schedule needs
``Omega(s^{33/16}/log s)`` -- the instances that separate achievable
makespan from the TSP lower bound.  Object ids: ``a_i`` is ``i`` (0-based
block index), ``b_j`` is ``s + j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.transaction import Transaction
from ..network.graph import Network
from ..network.topologies import lower_bound_grid, lower_bound_tree

__all__ = [
    "HardInstance",
    "hard_grid_instance",
    "hard_tree_instance",
    "a_object",
    "b_object",
]


def a_object(block: int) -> int:
    """Object id of the block serializer ``a_{block}`` (0-based block)."""
    return block


def b_object(s: int, j: int) -> int:
    """Object id of pool object ``b_j`` (0-based ``j``)."""
    return s + j


@dataclass(frozen=True)
class HardInstance:
    """A generated §8 instance plus its structural metadata."""

    instance: Instance
    s: int
    kind: str  # "grid" or "tree"

    @property
    def network(self) -> Network:
        return self.instance.network

    def block_of(self, node: int) -> int:
        """Block index of ``node``."""
        root = self.network.topology.require("root_s")
        cols = self.network.topology.require("cols")
        return (node % cols) // root


def _build(net: Network, s: int, kind: str, rng: np.random.Generator) -> HardInstance:
    topo = net.topology
    blocks = topo.require("blocks")
    top_left_h1 = blocks[0][0]

    picks = rng.integers(0, s, size=net.n)
    transactions = []
    tid = 0
    for block_idx, members in enumerate(blocks):
        for node in members:
            transactions.append(
                Transaction(
                    tid,
                    node,
                    (a_object(block_idx), b_object(s, int(picks[node]))),
                )
            )
            tid += 1

    homes = {a_object(i): top_left_h1 for i in range(s)}
    # b_j starts at an H_1 node that requests it, if any (paper's rule)
    h1_nodes = set(blocks[0])
    for j in range(s):
        requesters = [
            t.node
            for t in transactions
            if t.node in h1_nodes and b_object(s, j) in t.objects
        ]
        homes[b_object(s, j)] = min(requesters) if requesters else top_left_h1

    inst = Instance(net, transactions, homes)
    return HardInstance(instance=inst, s=s, kind=kind)


def hard_grid_instance(s: int, rng: np.random.Generator) -> HardInstance:
    """The §8.1 grid instance ``I_s`` (Fig 5): ``n = s^{5/2}`` nodes, k = 2."""
    return _build(lower_bound_grid(s), s, "grid", rng)


def hard_tree_instance(s: int, rng: np.random.Generator) -> HardInstance:
    """The §8.2 tree instance (Fig 6): same distribution on the comb-tree blocks."""
    return _build(lower_bound_tree(s), s, "tree", rng)
