"""Lower bounds: object walks/tours, certified makespan bounds, §8 instances."""

from .construction import (
    HardInstance,
    a_object,
    b_object,
    hard_grid_instance,
    hard_tree_instance,
)
from .exact import EXACT_TXN_LIMIT, optimal_schedule
from .lower import ObjectBounds, makespan_lower_bound, object_report
from .walks import (
    held_karp_path,
    mst_weight,
    nearest_neighbor_path,
    path_length,
    tour_length,
    two_opt_path,
    walk_bounds,
)

__all__ = [
    "optimal_schedule",
    "EXACT_TXN_LIMIT",
    "ObjectBounds",
    "object_report",
    "makespan_lower_bound",
    "held_karp_path",
    "nearest_neighbor_path",
    "two_opt_path",
    "path_length",
    "mst_weight",
    "walk_bounds",
    "tour_length",
    "HardInstance",
    "hard_grid_instance",
    "hard_tree_instance",
    "a_object",
    "b_object",
]
