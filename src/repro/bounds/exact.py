"""Exact optimal schedules for tiny instances (branch and bound).

Any feasible schedule induces a global commit order, and list-scheduling
that order (each transaction commits at the earliest time its objects can
reach it) produces commit times no later than the original schedule.
The optimum is therefore the minimum list-schedule makespan over all
commit permutations, which this module finds by depth-first branch and
bound:

* the incumbent starts at the greedy schedule's makespan (so the search
  only improves on the algorithms being evaluated);
* a branch is pruned when its partial makespan already matches the
  incumbent, or when the certified instance lower bound proves the
  incumbent optimal.

Exponential in the number of transactions -- intended for ``m <= 10``,
where it lets the test suite measure *true* approximation ratios of the
paper's schedulers rather than ratios against a lower bound.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..errors import SchedulingError
from .lower import makespan_lower_bound

__all__ = ["optimal_schedule", "EXACT_TXN_LIMIT"]

#: Refuse instances with more transactions than this (m! search space).
EXACT_TXN_LIMIT = 10


def _list_schedule(instance: Instance, order: List[int]) -> Dict[int, int]:
    """Earliest-commit times for a fixed commit order."""
    dist = instance.network.dist
    release: Dict[int, int] = {}
    position: Dict[int, int] = dict(instance.object_homes)
    commits: Dict[int, int] = {}
    for tid in order:
        t = instance.transaction(tid)
        ct = 1
        for obj in t.objects:
            ready = release.get(obj, 0) + dist(position[obj], t.node)
            ct = max(ct, ready)
        commits[tid] = ct
        for obj in t.objects:
            release[obj] = ct
            position[obj] = t.node
    return commits


def optimal_schedule(instance: Instance) -> Schedule:
    """Minimum-makespan schedule by branch and bound over commit orders.

    Raises :class:`SchedulingError` for instances beyond
    :data:`EXACT_TXN_LIMIT` transactions.
    """
    m = instance.m
    if m > EXACT_TXN_LIMIT:
        raise SchedulingError(
            f"exact search supports m <= {EXACT_TXN_LIMIT}, got {m}"
        )
    from ..core.greedy import GreedyScheduler  # late import: avoid cycle

    dist = instance.network.dist
    lb = makespan_lower_bound(instance)
    incumbent_schedule = GreedyScheduler().schedule(instance)
    incumbent = incumbent_schedule.makespan
    best_commits = dict(incumbent_schedule.commit_times)
    tids = [t.tid for t in instance.transactions]

    if incumbent == lb:
        return Schedule(
            instance, best_commits, {"scheduler": "exact", "proved": "lb"}
        )

    # DFS state: per-object (position, release), current makespan
    def dfs(
        remaining: List[int],
        position: Dict[int, int],
        release: Dict[int, int],
        makespan: int,
    ) -> None:
        nonlocal incumbent, best_commits
        if not remaining:
            if makespan < incumbent:
                incumbent = makespan
                best_commits = dict(_partial)
            return
        for i, tid in enumerate(remaining):
            t = instance.transaction(tid)
            ct = 1
            for obj in t.objects:
                ready = release.get(obj, 0) + dist(position[obj], t.node)
                ct = max(ct, ready)
            new_makespan = max(makespan, ct)
            if new_makespan >= incumbent:
                continue
            saved = [(obj, position[obj], release.get(obj, 0)) for obj in t.objects]
            for obj in t.objects:
                position[obj] = t.node
                release[obj] = ct
            _partial[tid] = ct
            dfs(remaining[:i] + remaining[i + 1 :], position, release, new_makespan)
            del _partial[tid]
            for obj, pos, rel in saved:
                position[obj] = pos
                release[obj] = rel
            if incumbent == lb:
                return  # proved optimal

    _partial: Dict[int, int] = {}
    dfs(tids, dict(instance.object_homes), {}, 0)
    meta = {
        "scheduler": "exact",
        "proved": "search" if incumbent > lb else "lb",
        "lower_bound": lb,
    }
    return Schedule(instance, best_commits, meta)
