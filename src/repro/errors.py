"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch package failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InstanceError",
    "InfeasibleScheduleError",
    "TopologyError",
    "SchedulingError",
    "SessionError",
    "FaultError",
    "RecoveryError",
    "OverloadError",
    "ServiceError",
    "DeadlineExpiredError",
    "SaturationError",
    "StaticCheckError",
    "LintError",
    "CertificationError",
    "InvariantViolationError",
    "SweepTimeoutError",
    "ClusterError",
    "WorkerCrashError",
    "HeartbeatTimeoutError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """The communication graph is malformed (disconnected, bad weights, ...)."""


class InstanceError(ReproError):
    """A scheduling problem instance violates a model constraint.

    The data-flow model of the paper requires at most one transaction per
    node, a single copy of every object, and positive integer edge weights.
    """


class InfeasibleScheduleError(ReproError):
    """A schedule violates feasibility.

    Raised when some object cannot physically reach a transaction's node by
    that transaction's commit time (an itinerary leg shorter than the
    shortest-path distance), or when a committed transaction is missing one
    of its objects during simulation.
    """


class TopologyError(ReproError):
    """A scheduler was applied to a network lacking required topology metadata."""


class SchedulingError(ReproError):
    """A scheduler failed to produce a schedule (internal invariant broken)."""


class SessionError(SchedulingError):
    """A stateful scheduler session was misused.

    Raised by :class:`repro.core.incremental.SchedulerSession` for delta
    violations the batch :class:`~repro.core.instance.Instance` would
    reject at construction -- two live transactions on one node, a
    duplicate live tid, an object without a home -- plus session-specific
    misuse: committing or aborting a transaction that is not live,
    reading the schedule of an empty session, operating on a closed
    session, or requesting the incremental engine for a scheduler
    outside the greedy family.
    """


class FaultError(ReproError):
    """Fault-tolerant execution could not absorb an injected fault.

    Raised by :func:`repro.faults.faulty_execute` when a disruption exceeds
    the recovery machinery's tolerance: a hop stays blocked past the bounded
    retry budget (e.g. a permanently failed link with no detour), or an
    object becomes unrecoverable.  A *handled* fault never raises -- it is
    absorbed and accounted for in the degradation report.
    """


class RecoveryError(FaultError):
    """Recovery rescheduling after a fault is impossible.

    Raised when the surviving suffix of a disrupted run cannot be
    rescheduled -- typically because permanent link failures disconnect the
    degraded network, so no feasible recovery schedule exists for the
    surviving transactions.
    """


class OverloadError(ReproError):
    """Admission control refused a release and was configured to fail.

    Raised by the resilient online runtime (:mod:`repro.online.resilient`)
    when the pending set exceeds the admission controller's high-water mark
    and the controller runs in ``strict`` mode.  The graceful modes
    (``defer``, ``shed``) never raise -- refused releases are counted in the
    :class:`~repro.online.report.OnlineDegradationReport` instead.
    """


class ServiceError(ReproError):
    """Base class for continuous-arrival service failures.

    Raised by the long-lived scheduling service (:mod:`repro.service`)
    when a robustness policy is configured to *fail* rather than degrade:
    deadline expiry in strict mode (:class:`DeadlineExpiredError`) or
    saturation in strict mode (:class:`SaturationError`).  The graceful
    defaults never raise -- expired and shed transactions are counted in
    the :class:`~repro.service.report.ServiceReport` instead.
    """


class DeadlineExpiredError(ServiceError):
    """A transaction's sojourn exceeded its deadline before it committed.

    Raised by the scheduling service only when configured with
    ``on_expiry="strict"``; under the default ``"drop"`` policy the
    expired transaction is removed from the backlog and counted in the
    service report with a typed reason, and the service keeps running.
    """


class SaturationError(ServiceError):
    """The saturation detector declared the service unstable.

    Raised by the scheduling service only when configured with
    ``on_saturation="strict"``: the queue-growth regression over the
    sliding horizon crossed the slope threshold while the backlog sat
    above the arming floor.  Under the default ``"shed"`` policy the
    service flips into load-shedding mode instead and keeps running.
    """


class StaticCheckError(ReproError):
    """Base class for static-analysis failures (:mod:`repro.staticcheck`).

    Static checks run *before* execution: the determinism lint over the
    source tree and the schedule certificate checker.  Both raise
    subclasses of this error, so review tooling can catch static
    verdicts separately from runtime failures.
    """


class LintError(StaticCheckError):
    """The lint engine itself was misused or could not run.

    Raised for an unknown rule id in ``--select``, an unreadable scan
    path, or a malformed suppression comment -- *not* for lint findings
    (findings are data, reported through the
    :class:`~repro.staticcheck.engine.LintReport`).
    """


class CertificationError(StaticCheckError):
    """A schedule failed static certification.

    Raised by :func:`repro.staticcheck.certify_schedule` (strict mode)
    when a schedule violates an invariant the certificate checker proves
    without executing it: an object needed in two places at once, a
    commit-time separation smaller than the conflict-edge weight, an
    itinerary leg shorter than the shortest-path distance, or a claimed
    theorem bound that does not hold.  ``failures`` carries the names of
    the failed checks.
    """

    def __init__(self, message: str, failures: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.failures: tuple[str, ...] = tuple(failures)


class SweepTimeoutError(ReproError):
    """A sweep cell exceeded its per-cell deadline.

    Raised by :func:`repro.experiments.sweep.run_sweep` only when
    configured with ``on_timeout="strict"``; under the default
    ``"record"`` policy the hung cell is terminated and a typed error
    entry (carrying this class's name) lands in the merged
    :class:`~repro.experiments.sweep.SweepReport` instead, so one hung
    worker can never block a whole sweep.
    """


class ClusterError(ReproError):
    """Base class for multi-process cluster failures (:mod:`repro.cluster`).

    Raised for malformed cluster/chaos configuration, wire-protocol
    violations on the supervisor/worker pipes, journal corruption, and
    replay-divergence (a restarted worker whose re-executed windows do
    not reproduce the journaled digests -- a determinism bug, never
    silently absorbed).  Operational failures the supervisor is
    configured to *survive* (worker crashes, stalls) do not raise; they
    are recovered and accounted in the
    :class:`~repro.cluster.report.ClusterReport`.
    """


class WorkerCrashError(ClusterError):
    """A cluster worker process died and the supervisor gave up on it.

    Raised only when the supervisor runs with ``on_crash="strict"`` or
    when a worker exhausts its bounded restart budget
    (:class:`~repro.faults.backoff.RetryPolicy`) and the configuration
    forbids retiring it.  Under the default policy a crashed worker is
    restarted from its journal; past the budget it is retired with its
    queued work counted ``lost`` (typed, never silent).
    """


class HeartbeatTimeoutError(ClusterError):
    """A cluster worker missed its heartbeat deadline.

    Raised only when the supervisor runs with ``on_straggler="strict"``.
    Under the graceful policies a stalled worker is killed and either
    restarted from its journal (``"restart"``) or retired with its load
    re-sharded to a replacement worker (``"shed"``); either way the
    stall is recorded in the cluster report.
    """


class InvariantViolationError(ReproError):
    """A runtime safety invariant was violated during an online run.

    Raised by the invariant sanitizer (:mod:`repro.sim.sanitizer`) the
    moment a step hook observes corrupted state: an object in two places at
    once, a commit before its release, a hop entering a down link, or an
    object dispatched past a higher-priority waiter.  Turning silent
    corruption into an immediate typed failure is the sanitizer's whole
    job; disable it (``InvariantSanitizer(enabled=False)``) only for
    benchmarks.
    """
