"""Workload generators, arrival streams, and deterministic seeding."""

from .generators import (
    homes_at_random_requesters,
    hot_object_instance,
    line_span_instance,
    partitioned_instance,
    random_k_subsets,
    zipf_k_subsets,
)
from .seeds import DEFAULT_SEED, root_rng, spawn
from .streams import (
    AdversarialStream,
    ArrivalStream,
    MMPPStream,
    PoissonStream,
)

__all__ = [
    "random_k_subsets",
    "zipf_k_subsets",
    "hot_object_instance",
    "partitioned_instance",
    "line_span_instance",
    "homes_at_random_requesters",
    "ArrivalStream",
    "PoissonStream",
    "MMPPStream",
    "AdversarialStream",
    "DEFAULT_SEED",
    "root_rng",
    "spawn",
]
