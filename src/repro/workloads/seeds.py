"""Deterministic random-stream management for experiments.

All randomness flows through :class:`numpy.random.Generator`.  Experiments
derive independent child streams per (experiment, configuration, trial)
with :func:`spawn`, so adding a configuration never perturbs another's
stream and every reported number is bit-reproducible from the root seed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["DEFAULT_SEED", "root_rng", "spawn"]

#: Root seed used by every experiment unless overridden on the CLI.
DEFAULT_SEED = 20170722  # SPAA'17 week


def root_rng(seed: int | None = None) -> np.random.Generator:
    """The experiment-suite root generator."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(seed: int | None, *keys: int | str) -> np.random.Generator:
    """A generator keyed by ``(seed, *keys)`` -- pure and stable.

    Keys are folded through CRC32 (process-independent, unlike ``hash``),
    so the same arguments always produce the same stream on any machine.
    """
    base = DEFAULT_SEED if seed is None else int(seed)
    material = [
        zlib.crc32(repr((i, k)).encode("utf-8")) for i, k in enumerate(keys)
    ]
    return np.random.default_rng(np.random.SeedSequence([base, *material]))
