"""Unbounded arrival streams for the continuous-arrival service.

The batch generators (:mod:`repro.workloads.generators`) emit a finite
:class:`~repro.core.instance.Instance`; the long-lived scheduling service
(:mod:`repro.service`) instead consumes an *arrival process*: an
unbounded, release-ordered sequence of
:class:`~repro.online.arrivals.TimedTransaction` over a fixed object
universe.  Three processes cover the stability literature's regimes:

* :class:`PoissonStream` -- memoryless arrivals, ``Poisson(rate)``
  transactions per step (the M/G/1-style baseline);
* :class:`MMPPStream` -- a two-state Markov-modulated Poisson process
  (bursty traffic: calm and storm phases with seeded switching);
* :class:`AdversarialStream` -- a ``(rho, b)``-bounded injection
  adversary in the sense of Busch et al., *Stable Scheduling in
  Transactional Memory* (arXiv:2208.07359): at most ``rho * |I| + b``
  transactions in any interval ``I``, released in maximal bursts and all
  contending on one hot object (the load-maximizing shape).

Every stream is deterministic given its generator: the same seed always
produces the same arrival sequence, node placement, object draws, and
homes.  Objects are homed once, at construction, at seeded uniformly
random nodes (there is no finite transaction set to place them at, so
the batch generators' home-at-a-requester rule does not apply).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.transaction import Transaction
from ..errors import InstanceError
from ..network.graph import Network
from ..online.arrivals import TimedTransaction

__all__ = ["ArrivalStream", "PoissonStream", "MMPPStream", "AdversarialStream"]


class ArrivalStream:
    """Base class: a deterministic, clocked arrival process.

    Subclasses implement :meth:`_count_at` (how many transactions arrive
    at step ``t``) and may override :meth:`_draw_objects` /
    :meth:`_draw_node`.  The base class assigns monotonically increasing
    tids, draws nodes and object sets, and enforces an optional ``limit``
    on total arrivals (a finite stream for parity tests).  Consumption is
    strictly forward: :meth:`window` must be called with contiguous
    half-open step ranges.
    """

    def __init__(
        self,
        net: Network,
        w: int,
        k: int,
        rng: np.random.Generator,
        limit: Optional[int] = None,
    ) -> None:
        if not 1 <= k <= w:
            raise InstanceError(f"need 1 <= k <= w, got k={k}, w={w}")
        if limit is not None and limit < 1:
            raise InstanceError(f"limit must be >= 1, got {limit}")
        self.network = net
        self.w = int(w)
        self.k = int(k)
        self.limit = limit
        self._rng = rng
        # homes are drawn first so arrival draws never perturb them
        self.object_homes: Dict[int, int] = {
            o: int(rng.integers(net.n)) for o in range(self.w)
        }
        self._next_tid = 0
        self._clock = 0  # next step to be generated

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #

    def _count_at(self, t: int) -> int:
        """Number of transactions released at step ``t``."""
        raise NotImplementedError

    def _draw_node(self) -> int:
        """Host node for the next transaction (uniform by default)."""
        return int(self._rng.integers(self.network.n))

    def _draw_objects(self) -> Tuple[int, ...]:
        """Object set for the next transaction (uniform ``k``-subset)."""
        return tuple(
            int(o)
            for o in self._rng.choice(self.w, size=self.k, replace=False)
        )

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #

    @property
    def objects(self) -> Tuple[int, ...]:
        """The fixed object universe, sorted."""
        return tuple(range(self.w))

    @property
    def released(self) -> int:
        """Total transactions released so far."""
        return self._next_tid

    @property
    def exhausted(self) -> bool:
        """True iff a finite stream has released its full ``limit``."""
        return self.limit is not None and self._next_tid >= self.limit

    def window(self, start: int, end: int) -> List[TimedTransaction]:
        """Arrivals with release in ``[start, end)``, in release order.

        ``start`` must equal the stream's clock (windows are consumed
        contiguously; re-reading or skipping steps would break the
        deterministic draw order).
        """
        if start != self._clock:
            raise InstanceError(
                f"stream windows must be contiguous: expected start="
                f"{self._clock}, got {start}"
            )
        if end < start:
            raise InstanceError(f"bad window [{start}, {end})")
        out: List[TimedTransaction] = []
        for t in range(start, end):
            if self.exhausted:
                break
            n_arr = self._count_at(t)
            if self.limit is not None:
                n_arr = min(n_arr, self.limit - self._next_tid)
            for _ in range(n_arr):
                txn = Transaction(
                    self._next_tid, self._draw_node(), self._draw_objects()
                )
                out.append(TimedTransaction(release=t, txn=txn))
                self._next_tid += 1
        self._clock = max(self._clock, end)
        return out

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def _extra_state(self) -> Dict[str, object]:
        """Subclass-specific mutable state (see :meth:`state_dict`)."""
        return {}

    def _load_extra(self, extra: Dict[str, object]) -> None:
        """Restore subclass-specific state saved by :meth:`_extra_state`."""

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the stream's full mutable state.

        Captures the generator state, the tid/clock cursors, the object
        homes, and any subclass state, so a stream reconstructed from the
        same constructor arguments and fed this snapshot via
        :meth:`load_state` continues the *exact* arrival sequence -- the
        contract the cluster's write-ahead journal recovery relies on.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "next_tid": self._next_tid,
            "clock": self._clock,
            "object_homes": {str(o): h for o, h in self.object_homes.items()},
            "extra": self._extra_state(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        The stream must have been constructed with the same parameters
        (network, ``w``, ``k``, rates, ...); only the mutable state is
        restored.
        """
        self._rng.bit_generator.state = state["rng"]
        self._next_tid = int(state["next_tid"])  # type: ignore[arg-type]
        self._clock = int(state["clock"])  # type: ignore[arg-type]
        homes = state["object_homes"]
        self.object_homes = {int(o): int(h) for o, h in homes.items()}  # type: ignore[union-attr]
        self._load_extra(state.get("extra", {}))  # type: ignore[arg-type]

    def take(self, count: int, max_steps: int = 1_000_000) -> List[TimedTransaction]:
        """The next ``count`` arrivals (advances the clock step by step).

        Raises :class:`InstanceError` if the process would need more than
        ``max_steps`` further steps -- a zero-rate guard, not a bound a
        healthy stream can hit.
        """
        out: List[TimedTransaction] = []
        deadline = self._clock + max_steps
        while len(out) < count:
            if self.exhausted:
                break
            if self._clock >= deadline:
                raise InstanceError(
                    f"stream produced {len(out)}/{count} arrivals in "
                    f"{max_steps} steps; rate too low?"
                )
            out.extend(self.window(self._clock, self._clock + 1))
        return out[:count]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.network.n}, w={self.w}, "
            f"k={self.k}, released={self.released})"
        )


class PoissonStream(ArrivalStream):
    """Memoryless arrivals: ``Poisson(rate)`` new transactions per step."""

    def __init__(
        self,
        net: Network,
        w: int,
        k: int,
        rate: float,
        rng: np.random.Generator,
        limit: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise InstanceError(f"rate must be positive, got {rate}")
        super().__init__(net, w, k, rng, limit=limit)
        self.rate = float(rate)

    def _count_at(self, t: int) -> int:
        """``Poisson(rate)`` arrivals, independent per step."""
        return int(self._rng.poisson(self.rate))


class MMPPStream(ArrivalStream):
    """Bursty arrivals: a two-state Markov-modulated Poisson process.

    The stream alternates between a *calm* state (``rate_low``) and a
    *storm* state (``rate_high``); each step it leaves its current state
    with probability ``switch``.  Mean sojourn in each state is
    ``1/switch`` steps, so small ``switch`` values produce long bursts.
    """

    def __init__(
        self,
        net: Network,
        w: int,
        k: int,
        rate_low: float,
        rate_high: float,
        switch: float,
        rng: np.random.Generator,
        limit: Optional[int] = None,
    ) -> None:
        if rate_low <= 0 or rate_high <= 0:
            raise InstanceError(
                f"rates must be positive, got {rate_low}, {rate_high}"
            )
        if rate_high < rate_low:
            raise InstanceError(
                f"rate_high {rate_high} must be >= rate_low {rate_low}"
            )
        if not 0.0 < switch <= 1.0:
            raise InstanceError(f"switch must be in (0, 1], got {switch}")
        super().__init__(net, w, k, rng, limit=limit)
        self.rate_low = float(rate_low)
        self.rate_high = float(rate_high)
        self.switch = float(switch)
        self._storm = False

    def _count_at(self, t: int) -> int:
        """Poisson draw at the current state's rate, then maybe switch."""
        rate = self.rate_high if self._storm else self.rate_low
        count = int(self._rng.poisson(rate))
        if float(self._rng.random()) < self.switch:
            self._storm = not self._storm
        return count

    def _extra_state(self) -> Dict[str, object]:
        return {"storm": self._storm}

    def _load_extra(self, extra: Dict[str, object]) -> None:
        self._storm = bool(extra["storm"])


class AdversarialStream(ArrivalStream):
    """A ``(rho, b)``-bounded injection adversary (arXiv:2208.07359 model).

    A token bucket fills at ``rho`` tokens per step up to a burst
    capacity ``b``; the adversary releases transactions only when the
    bucket is full, dumping the whole burst at once -- the worst-case
    release pattern a rate-bounded adversary can produce.  Every interval
    ``I`` therefore carries at most ``rho * |I| + b`` arrivals.  The
    adversary also maximizes contention: every transaction requests hot
    object 0 plus a deterministic rotation of ``k - 1`` fillers, and
    bursts land on consecutive nodes, so the per-object load ``ell``
    grows as fast as the injection bound allows.  Fully deterministic --
    the rng draws only the object homes.
    """

    def __init__(
        self,
        net: Network,
        w: int,
        k: int,
        rho: float,
        burst: int,
        rng: np.random.Generator,
        limit: Optional[int] = None,
    ) -> None:
        if rho <= 0:
            raise InstanceError(f"rho must be positive, got {rho}")
        if burst < 1:
            raise InstanceError(f"burst must be >= 1, got {burst}")
        super().__init__(net, w, k, rng, limit=limit)
        self.rho = float(rho)
        self.burst = int(burst)
        self._tokens = float(burst)  # adversary may open with a full burst
        self._next_node = 0
        self._next_filler = 1 if w > 1 else 0

    def _count_at(self, t: int) -> int:
        """Dump ``floor(tokens)`` transactions whenever the bucket fills."""
        self._tokens = min(self._tokens + self.rho, float(self.burst))
        if self._tokens >= self.burst:
            count = int(self._tokens)
            self._tokens -= count
            return count
        return 0

    def _draw_node(self) -> int:
        """Consecutive nodes: each burst spreads over distinct hosts."""
        node = self._next_node
        self._next_node = (self._next_node + 1) % self.network.n
        return node

    def _draw_objects(self) -> Tuple[int, ...]:
        """Hot object 0 plus a rotating window of ``k - 1`` fillers."""
        if self.k == 1 or self.w == 1:
            return (0,)
        objs = [0]
        filler = self._next_filler
        for _ in range(self.k - 1):
            objs.append(filler)
            filler = filler + 1 if filler + 1 < self.w else 1
        self._next_filler = (
            self._next_filler + 1 if self._next_filler + 1 < self.w else 1
        )
        return tuple(objs)

    def _extra_state(self) -> Dict[str, object]:
        return {
            "tokens": self._tokens,
            "next_node": self._next_node,
            "next_filler": self._next_filler,
        }

    def _load_extra(self, extra: Dict[str, object]) -> None:
        self._tokens = float(extra["tokens"])  # type: ignore[arg-type]
        self._next_node = int(extra["next_node"])  # type: ignore[arg-type]
        self._next_filler = int(extra["next_filler"])  # type: ignore[arg-type]
