"""Workload generators: how transactions pick their object sets.

The paper studies two input regimes: *arbitrary* k-subsets (Clique, Line,
Cluster, Star, Hypercube, Butterfly) and *uniformly random* k-subsets
(Grid, where the TSP lower bound forbids good schedules for arbitrary
inputs).  The generators here cover both plus structured families used by
the experiments:

* :func:`random_k_subsets` -- every transaction draws ``k`` objects
  uniformly without replacement (the Grid model of §5);
* :func:`zipf_k_subsets` -- popularity-skewed draws (realistic contention);
* :func:`hot_object_instance` -- one globally shared object plus random
  fill, maximizing ``ell`` (the adversarial shape behind Theorem 1's
  lower-bound discussion);
* :func:`partitioned_instance` -- objects partitioned among node groups
  with a controllable fraction of cross-group transactions (drives
  ``sigma`` for the Cluster/Star experiments);
* :func:`line_span_instance` -- object requesters confined to windows of a
  given span, controlling the Line algorithm's ``ell``.

Unless stated otherwise each object's home is a uniformly random requester
(the paper's standing assumption); objects nobody uses get arbitrary homes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.instance import Instance
from ..core.transaction import Transaction
from ..network.graph import Network

__all__ = [
    "random_k_subsets",
    "zipf_k_subsets",
    "hot_object_instance",
    "partitioned_instance",
    "line_span_instance",
    "homes_at_random_requesters",
]


def homes_at_random_requesters(
    transactions: Sequence[Transaction],
    num_objects: int,
    rng: np.random.Generator,
    fallback_node: int = 0,
) -> dict[int, int]:
    """Home every object at a uniformly random requester (paper assumption)."""
    requesters: dict[int, list[int]] = {o: [] for o in range(num_objects)}
    for t in transactions:
        for o in t.objects:
            requesters[o].append(t.node)
    homes = {}
    for o, nodes in requesters.items():
        if nodes:
            homes[o] = int(nodes[rng.integers(0, len(nodes))])
        else:
            homes[o] = fallback_node
    return homes


def _select_nodes(
    net: Network, rng: np.random.Generator, density: float
) -> list[int]:
    """Nodes that host a transaction (all of them at density 1.0)."""
    if density >= 1.0:
        return list(net.nodes())
    count = max(1, int(round(density * net.n)))
    return sorted(int(v) for v in rng.choice(net.n, size=count, replace=False))


def random_k_subsets(
    net: Network,
    w: int,
    k: int,
    rng: np.random.Generator,
    density: float = 1.0,
) -> Instance:
    """One transaction per node, each drawing ``k`` of ``w`` objects uniformly."""
    if not 1 <= k <= w:
        raise ValueError(f"need 1 <= k <= w, got k={k}, w={w}")
    transactions = [
        Transaction(i, node, rng.choice(w, size=k, replace=False))
        for i, node in enumerate(_select_nodes(net, rng, density))
    ]
    homes = homes_at_random_requesters(transactions, w, rng)
    return Instance(net, transactions, homes)


def zipf_k_subsets(
    net: Network,
    w: int,
    k: int,
    rng: np.random.Generator,
    exponent: float = 1.2,
    density: float = 1.0,
) -> Instance:
    """Popularity-skewed draws: object ``o`` has weight ``(o+1)^-exponent``."""
    if not 1 <= k <= w:
        raise ValueError(f"need 1 <= k <= w, got k={k}, w={w}")
    weights = (np.arange(1, w + 1, dtype=np.float64)) ** (-exponent)
    probs = weights / weights.sum()
    transactions = [
        Transaction(i, node, rng.choice(w, size=k, replace=False, p=probs))
        for i, node in enumerate(_select_nodes(net, rng, density))
    ]
    homes = homes_at_random_requesters(transactions, w, rng)
    return Instance(net, transactions, homes)


def hot_object_instance(
    net: Network, w: int, k: int, rng: np.random.Generator
) -> Instance:
    """Every transaction uses object 0 plus ``k - 1`` random others.

    Maximizes the load ``ell = m`` on a single object; the greedy bound's
    worst case.
    """
    if not 1 <= k <= w:
        raise ValueError(f"need 1 <= k <= w, got k={k}, w={w}")
    transactions = []
    for i, node in enumerate(net.nodes()):
        if k == 1:
            objs: list[int] = [0]
        else:
            others = 1 + rng.choice(w - 1, size=k - 1, replace=False)
            objs = [0, *(int(o) for o in others)]
        transactions.append(Transaction(i, node, objs))
    homes = homes_at_random_requesters(transactions, w, rng)
    return Instance(net, transactions, homes)


def partitioned_instance(
    net: Network,
    groups: Sequence[Sequence[int]],
    objects_per_group: int,
    k: int,
    cross_fraction: float,
    rng: np.random.Generator,
) -> Instance:
    """Group-local objects with a tunable fraction of cross-group access.

    Each node group (e.g. the clusters of a cluster graph, the ray
    segments of a star) owns ``objects_per_group`` objects.  Every node's
    transaction draws ``k`` objects from its own group's pool, except that
    with probability ``cross_fraction`` each draw comes from the global
    pool instead -- turning the knob from ``sigma = 1`` (fully local) to
    ``sigma ~ alpha`` (fully shared).
    """
    if not 0.0 <= cross_fraction <= 1.0:
        raise ValueError(f"cross_fraction must be in [0,1], got {cross_fraction}")
    num_groups = len(groups)
    w = num_groups * objects_per_group
    if k > objects_per_group:
        raise ValueError(
            f"k={k} exceeds objects_per_group={objects_per_group}"
        )
    transactions = []
    tid = 0
    for g, members in enumerate(groups):
        local_pool = np.arange(
            g * objects_per_group, (g + 1) * objects_per_group
        )
        for node in members:
            picked: set[int] = set()
            while len(picked) < k:
                if rng.random() < cross_fraction:
                    picked.add(int(rng.integers(0, w)))
                else:
                    picked.add(int(local_pool[rng.integers(0, objects_per_group)]))
            transactions.append(Transaction(tid, int(node), picked))
            tid += 1
    homes = homes_at_random_requesters(transactions, w, rng)
    return Instance(net, transactions, homes)


def line_span_instance(
    net: Network,
    w: int,
    k: int,
    max_span: int,
    rng: np.random.Generator,
) -> Instance:
    """Line workload whose objects live in windows of bounded span.

    Each object ``o`` is anchored at a window of length
    ``es = max(max_span, ceil((n-1)/w))`` (stretched just enough that ``w``
    evenly spaced windows cover the line); every node draws its ``k``
    objects among the windows containing it.  Requester spans are therefore
    at most ``es``, giving direct control over the Line algorithm's
    ``ell`` (``ell <= 1.5 * es``).
    """
    n = net.n
    if max_span < 0:
        raise ValueError(f"max_span must be >= 0, got {max_span}")
    es = min(n - 1, max(max_span, -(-(n - 1) // max(w, 1))))
    if w == 1:
        anchors = np.zeros(1, dtype=np.int64)
        es = n - 1
    else:
        anchors = np.round(
            np.arange(w) * (n - 1 - es) / (w - 1)
        ).astype(np.int64)
    transactions = []
    for node in range(n):
        eligible = np.flatnonzero((anchors <= node) & (node <= anchors + es))
        if eligible.size == 0:  # defensive; coverage holds by construction
            eligible = np.asarray([int(np.argmin(np.abs(anchors - node)))])
        take = min(k, eligible.size)
        objs = rng.choice(eligible, size=take, replace=False)
        transactions.append(Transaction(node, node, objs))
    homes = homes_at_random_requesters(transactions, w, rng)
    return Instance(net, transactions, homes)
