"""Epoch batching: the paper's offline schedulers applied online.

A natural way to carry the paper's results into the online setting is to
chop time into epochs, batch the transactions released during an epoch,
and run the topology-appropriate *offline* scheduler on each batch (with
objects starting wherever the previous epoch left them).  Feasibility
composes exactly as in :mod:`repro.core.phasing`; what the online
experiments measure is how the batched offline guarantees trade response
time against the purely reactive priority manager.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.dispatch import resolve_scheduler
from ..core.phasing import PhaseState, run_phase
from ..core.scheduler import Scheduler
from .arrivals import OnlineWorkload
from .runtime import OnlineResult

__all__ = ["run_epoch_batched"]


def run_epoch_batched(
    workload: OnlineWorkload,
    scheduler: Scheduler | None = None,
    epoch: int | None = None,
    rng: np.random.Generator | None = None,
) -> OnlineResult:
    """Schedule ``workload`` in epochs with an offline scheduler per batch.

    ``scheduler`` defaults to the topology dispatch of the underlying
    network; ``epoch`` defaults to the network diameter + 1 (one "round
    trip" of slack per batch).  Each batch contains the transactions
    released up to the moment the previous batch finished (or the end of
    the current epoch window, whichever is later), so the schedule never
    commits anything before its release.
    """
    inst = workload.instance
    if scheduler is None:
        scheduler = resolve_scheduler(topology=inst.network.topology.name)
    if epoch is None:
        epoch = inst.network.diameter() + 1

    state = PhaseState(inst)
    remaining = list(workload.arrivals)
    while remaining:
        # the next batch boundary: at least one epoch past the current
        # time, and late enough to include the next arrival
        boundary = max(state.time + 1, remaining[0].release, epoch)
        batch = [a for a in remaining if a.release <= boundary]
        remaining = remaining[len(batch):]
        # the batch cannot start before its last member arrives
        state.time = max(state.time, boundary)
        run_phase(state, [a.txn.tid for a in batch], scheduler, rng)

    schedule = state.finish(
        {"scheduler": f"epoch-batch({scheduler.name})", "epoch": epoch}
    )
    release: Dict[int, int] = {
        a.txn.tid: a.release for a in workload.arrivals
    }
    return OnlineResult(schedule=schedule, release=release)
