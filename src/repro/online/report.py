"""Online degradation reports: what resilience cost a live run.

The offline analogue (:class:`repro.faults.report.DegradationReport`)
compares a *planned* schedule against its faulty replay.  A live run has
no planned schedule to compare against, so the online report counts the
degradation directly: transactions lost to crashes, releases shed or
deferred by admission control, retry/reroute/re-homing work spent
absorbing faults, and the sanitizer's verdict.  The accounting identity
``committed + lost + shed = released`` always holds -- nothing is
silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple

from ..analysis.report import register_report, report_payload, report_to_json

__all__ = ["OnlineDegradationReport"]


@register_report("online_degradation")
@dataclass(frozen=True)
class OnlineDegradationReport:
    """Degradation accounting for one resilient online run.

    ``lost`` and ``shed`` carry ``(tid, reason)`` pairs: ``lost`` are
    transactions a crash made uncommittable (dead host node, unrecoverable
    object), ``shed`` are releases the admission controller refused.
    ``rehomed`` counts objects restored from their durable home after
    their lease-holding node crashed; ``violations`` is the sanitizer's
    count (always 0 on a correct runtime).
    """

    report_kind: ClassVar[str]  # set by @register_report

    released: int
    committed: int
    lost: Tuple[Tuple[int, str], ...]
    shed: Tuple[Tuple[int, str], ...]
    deferred_admissions: int
    retries: int
    reroutes: int
    rehomed: int
    fault_count: int
    sanitizer_checks: int
    violations: int

    @property
    def commit_rate(self) -> float:
        """Fraction of released transactions that committed."""
        return self.committed / self.released if self.released else 1.0

    @property
    def shed_fraction(self) -> float:
        """Fraction of released transactions shed by admission control."""
        return len(self.shed) / self.released if self.released else 0.0

    def as_dict(self) -> dict[str, object]:
        """Plain-data summary for tables."""
        return {
            "released": self.released,
            "committed": self.committed,
            "lost": len(self.lost),
            "shed": len(self.shed),
            "commit_rate": self.commit_rate,
            "shed_fraction": self.shed_fraction,
            "deferred_admissions": self.deferred_admissions,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "rehomed": self.rehomed,
            "faults": self.fault_count,
            "violations": self.violations,
        }

    def to_json(self) -> str:
        """Full-fidelity JSON envelope (see :mod:`repro.analysis.report`)."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "OnlineDegradationReport":
        """Inverse of :meth:`to_json`."""
        payload = report_payload(text, expected_kind="online_degradation")
        payload["lost"] = tuple(
            (int(tid), str(reason)) for tid, reason in payload["lost"]
        )
        payload["shed"] = tuple(
            (int(tid), str(reason)) for tid, reason in payload["shed"]
        )
        return cls(**payload)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"committed {self.committed}/{self.released} "
            f"(lost {len(self.lost)}, shed {len(self.shed)}, "
            f"deferred {self.deferred_admissions})",
            f"recovery work: retries {self.retries}, reroutes "
            f"{self.reroutes}, rehomed {self.rehomed} "
            f"({self.fault_count} faults planned)",
            f"sanitizer: {self.sanitizer_checks} checks, "
            f"{self.violations} violations",
        ]
        for tid, reason in self.lost:
            lines.append(f"  lost txn {tid}: {reason}")
        for tid, reason in self.shed:
            lines.append(f"  shed txn {tid}: {reason}")
        return "\n".join(lines)
