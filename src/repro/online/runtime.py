"""Step-driven online TM runtime with priority contention management.

Implements the classic *Greedy contention manager* discipline (Guerraoui,
Herlihy & Pochon [13], adapted to the data-flow model): every transaction
carries a fixed priority; each idle object always travels toward the
highest-priority pending transaction that requests it; a transaction
commits the moment all its objects sit at its node (and it has been
released).  Because priorities form a total order and arrivals never
preempt an older transaction (timestamp priority = release order), the
globally highest-priority pending transaction always has every object
converging on it, so the runtime is livelock-free.

The produced commit times form a feasible schedule in the batch sense
(validated against :class:`~repro.core.schedule.Schedule`) that also
respects release times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from ..core.schedule import Schedule
from ..errors import SchedulingError
from ..obs import events as obs_events
from ..obs.recorder import Recorder, active
from .arrivals import OnlineWorkload

__all__ = ["OnlineResult", "run_online", "timestamp_priority", "random_priority"]


@dataclass
class OnlineResult:
    """Outcome of an online run."""

    schedule: Schedule
    release: Dict[int, int]

    @property
    def makespan(self) -> int:
        """Time of the last commit."""
        return self.schedule.makespan

    @property
    def response_times(self) -> Dict[int, int]:
        """Commit minus release, per transaction."""
        return {
            tid: ct - self.release[tid]
            for tid, ct in self.schedule.commit_times.items()
        }

    @property
    def mean_response(self) -> float:
        rts = self.response_times
        return sum(rts.values()) / len(rts)

    @property
    def max_response(self) -> int:
        return max(self.response_times.values())


def timestamp_priority(workload: OnlineWorkload, rng=None) -> Dict[int, tuple]:
    """Older transactions win (the Greedy CM's timestamp discipline)."""
    return {
        a.txn.tid: (a.release, a.txn.tid) for a in workload.arrivals
    }


def random_priority(
    workload: OnlineWorkload, rng: np.random.Generator
) -> Dict[int, tuple]:
    """A uniformly random fixed total order (randomized CM)."""
    tids = [a.txn.tid for a in workload.arrivals]
    perm = rng.permutation(len(tids))
    return {tid: (int(p),) for tid, p in zip(tids, perm)}


def run_online(
    workload: OnlineWorkload,
    priority: Callable[..., Dict[int, tuple]] = timestamp_priority,
    rng: np.random.Generator | None = None,
    max_steps: int | None = None,
    sanitizer=None,
    recorder: Recorder | None = None,
) -> OnlineResult:
    """Run the priority contention manager to completion.

    ``priority`` maps the workload (and optional rng) to a total order;
    lower tuples win.  Raises :class:`SchedulingError` if the run exceeds
    ``max_steps`` (defaults to a generous bound that a livelock-free run
    cannot hit: horizon plus ``m`` serial trips across the diameter).
    ``sanitizer`` is an optional
    :class:`~repro.sim.sanitizer.InvariantSanitizer` whose step hooks
    audit every commit and dispatch (None, the default, adds no work).
    ``recorder`` is an optional :class:`~repro.obs.Recorder` sink for
    dispatch/commit events; recording never changes the run's decisions.
    """
    rec = active(recorder)
    inst = workload.instance
    net = inst.network
    prio = priority(workload, rng) if rng is not None else priority(workload)
    release_times = {a.txn.tid: a.release for a in workload.arrivals}
    if max_steps is None:
        max_steps = (
            workload.horizon + (inst.m + 1) * (net.diameter() + 1) + 16
        )

    position: Dict[int, int] = dict(inst.object_homes)
    in_transit: list[tuple[int, int, int]] = []  # (arrival, obj, dest) heap
    moving: set[int] = set()
    pending: Dict[int, object] = {}  # tid -> Transaction
    commits: Dict[int, int] = {}
    arrivals = list(workload.arrivals)
    ai = 0
    t = 1  # commit times are >= 1; release-0 work is picked up at step 1

    def best_requester(obj: int):
        cands = [txn for txn in pending.values() if obj in txn.objects]
        if not cands:
            return None
        return min(cands, key=lambda txn: prio[txn.tid])

    while (ai < len(arrivals)) or pending or in_transit:
        if t > max_steps:
            raise SchedulingError(
                f"online runtime exceeded {max_steps} steps "
                f"({len(pending)} pending)"
            )
        # releases
        while ai < len(arrivals) and arrivals[ai].release <= t:
            txn = arrivals[ai].txn
            pending[txn.tid] = txn
            ai += 1
        # deliveries
        while in_transit and in_transit[0][0] <= t:
            _, obj, dest = heapq.heappop(in_transit)
            position[obj] = dest
            moving.discard(obj)
        # commits: any pending transaction with all objects on-node
        committed_now = [
            txn
            for txn in pending.values()
            if all(
                o not in moving and position[o] == txn.node
                for o in txn.objects
            )
        ]
        for txn in sorted(committed_now, key=lambda txn: prio[txn.tid]):
            if sanitizer is not None:
                sanitizer.check_commit(t, txn, position, moving, release_times)
            if rec.enabled:
                rec.record(
                    obs_events.CommitEvent(
                        t, txn.tid, txn.node, tuple(sorted(txn.objects))
                    )
                )
                rec.count("online.commits")
            commits[txn.tid] = t
            del pending[txn.tid]
        if sanitizer is not None:
            sanitizer.check_step(t, position, moving, pending, net.n)
        # dispatch: idle objects chase their best requester
        for obj in sorted(position):
            if obj in moving:
                continue
            target = best_requester(obj)
            if target is None or position[obj] == target.node:
                continue
            if sanitizer is not None:
                sanitizer.check_dispatch(t, obj, target, pending, prio)
            if rec.enabled:
                rec.record(
                    obs_events.DispatchEvent(
                        t, obj, position[obj], target.node, target.tid
                    )
                )
                rec.count("online.dispatches")
            d = net.dist(position[obj], target.node)
            heapq.heappush(in_transit, (t + d, obj, target.node))
            moving.add(obj)
        # advance to the next interesting time
        nxt = []
        if ai < len(arrivals):
            nxt.append(arrivals[ai].release)
        if in_transit:
            nxt.append(in_transit[0][0])
        t = max(t + 1, min(nxt)) if nxt else t + 1

    schedule = Schedule(
        inst, commits, meta={"scheduler": "online-priority"}
    )
    release = {a.txn.tid: a.release for a in workload.arrivals}
    if rec.enabled:
        rec.gauge("online.makespan", schedule.makespan)
        for tid, ct in sorted(commits.items()):
            rec.observe("online.response", ct - release[tid])
    for tid, ct in commits.items():
        if ct < release[tid]:  # pragma: no cover - construction prevents it
            raise SchedulingError(
                f"transaction {tid} committed before release"
            )
    return OnlineResult(schedule=schedule, release=release)
