"""Online workloads: transactions released over time (§9, open question 1).

The paper's batch model knows all transactions at time 0; its first open
question asks about the *online* setting where transactions keep arriving.
An :class:`OnlineWorkload` is a batch instance plus a release time per
transaction; schedulers must not commit a transaction before its release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.transaction import Transaction
from ..errors import InstanceError
from ..network.graph import Network

__all__ = ["TimedTransaction", "OnlineWorkload", "poisson_workload"]


@dataclass(frozen=True, order=True)
class TimedTransaction:
    """A transaction and its release (arrival) time step."""

    release: int
    txn: Transaction


class OnlineWorkload:
    """A release-ordered stream of transactions over a network."""

    def __init__(
        self,
        network: Network,
        arrivals: Sequence[TimedTransaction],
        object_homes: Dict[int, int],
    ) -> None:
        self.arrivals = tuple(sorted(arrivals))
        for a in self.arrivals:
            if a.release < 0:
                raise InstanceError(
                    f"transaction {a.txn.tid} released at negative time"
                )
        # reuse Instance validation for the underlying batch structure
        self.instance = Instance(
            network, [a.txn for a in self.arrivals], object_homes
        )
        self._release: Dict[int, int] = {
            a.txn.tid: a.release for a in self.arrivals
        }

    @property
    def network(self) -> Network:
        return self.instance.network

    @property
    def m(self) -> int:
        """Number of transactions in the stream."""
        return len(self.arrivals)

    def release_of(self, tid: int) -> int:
        """Release time of transaction ``tid``."""
        return self._release[tid]

    @property
    def horizon(self) -> int:
        """Last release time."""
        return max((a.release for a in self.arrivals), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineWorkload(m={self.m}, horizon={self.horizon}, "
            f"n={self.network.n})"
        )


def poisson_workload(
    net: Network,
    w: int,
    k: int,
    rate: float,
    count: int,
    rng: np.random.Generator,
) -> OnlineWorkload:
    """``count`` transactions with Poisson arrivals of intensity ``rate``.

    Inter-arrival gaps are geometric with mean ``1/rate`` (the discrete
    analogue); each transaction lands on a distinct uniformly random node
    and requests ``k`` of ``w`` objects uniformly.  ``count`` must not
    exceed the node count (one transaction per node, as in the batch
    model).
    """
    if count > net.n:
        raise InstanceError(
            f"count={count} exceeds {net.n} nodes (one txn per node)"
        )
    if not 1 <= k <= w:
        raise ValueError(f"need 1 <= k <= w, got k={k}, w={w}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    # deferred: workloads.streams imports this module, and the workloads
    # package initializes generators before streams, so a module-level
    # import here would close an import cycle
    from ..workloads.generators import homes_at_random_requesters
    nodes = rng.choice(net.n, size=count, replace=False)
    t = 0
    arrivals = []
    txns = []
    for i in range(count):
        t += int(rng.geometric(min(rate, 1.0)))
        txn = Transaction(i, int(nodes[i]), rng.choice(w, size=k, replace=False))
        txns.append(txn)
        arrivals.append(TimedTransaction(release=t, txn=txn))
    homes = homes_at_random_requesters(txns, w, rng)
    return OnlineWorkload(net, arrivals, homes)
