"""Fault-aware online runtime: live faults, leases, and admission control.

:func:`run_resilient` is the priority contention manager of
:mod:`repro.online.runtime` hardened for a system that misbehaves *while
decisions are still being made*.  It consumes a
:class:`~repro.faults.plan.FaultPlan` live -- not replayed against a
precomputed schedule as :func:`repro.faults.faulty_execute` does -- and
absorbs each disruption without giving up determinism:

* **object moves are hop-by-hop**: a leg is a concrete path through the
  network, so a link failing mid-flight blocks exactly the hop that would
  traverse it.  Blocked hops (down link, stalled object, transient
  partition) retry with the shared bounded deterministic exponential
  backoff (:class:`repro.faults.backoff.RetryPolicy`) and reroute around
  failures with :func:`repro.faults.routing.path_avoiding`;
* **leases die with their node**: an object parked on -- or in flight
  toward -- a node that crashes is restored from its durable home and
  re-auctioned to the highest-priority pending waiter by the normal
  dispatch rule; transactions hosted on the dead node (and any needing an
  unrecoverable object) are reported ``lost``, never silently dropped;
* **admission control sheds load before it melts down**: when the pending
  set reaches :class:`AdmissionControl`'s high-water mark, new releases
  are deferred (back-pressure), shed (typed refusal, counted), or -- in
  ``strict`` mode -- rejected with :class:`~repro.errors.OverloadError`;
* every step can be audited by an
  :class:`~repro.sim.sanitizer.InvariantSanitizer` hook.

On the empty plan the runtime visits extra intermediate hop-completion
steps but makes identical decisions at identical times, so it reproduces
:func:`~repro.online.runtime.run_online` exactly, field by field -- the
zero-distortion guarantee the test suite asserts.  All costs are counted
in an :class:`~repro.online.report.OnlineDegradationReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.schedule import Schedule
from ..errors import FaultError, OverloadError, SchedulingError
from ..faults.backoff import RetryPolicy
from ..faults.plan import FaultPlan
from ..faults.routing import path_avoiding
from ..obs import events as obs_events
from ..obs.recorder import Recorder, active
from ..sim.sanitizer import InvariantSanitizer
from .arrivals import OnlineWorkload, TimedTransaction
from .report import OnlineDegradationReport
from .runtime import timestamp_priority

__all__ = ["AdmissionControl", "ResilientResult", "run_resilient"]

_ADMISSION_POLICIES = ("defer", "shed", "strict")


@dataclass(frozen=True)
class AdmissionControl:
    """Back-pressure for the resilient runtime's pending set.

    When a release arrives while ``len(pending) >= high_water`` the
    controller applies its policy: ``defer`` queues the release until the
    pending set drains below the mark (FIFO, nothing lost), ``shed``
    refuses it permanently (counted in the degradation report with a
    typed reason), and ``strict`` raises
    :class:`~repro.errors.OverloadError` -- for callers that prefer a
    crash to degraded service.
    """

    high_water: int
    policy: str = "defer"

    def __post_init__(self) -> None:
        if self.high_water < 1:
            raise ValueError(
                f"high_water must be >= 1, got {self.high_water}"
            )
        if self.policy not in _ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; choose from "
                f"{_ADMISSION_POLICIES}"
            )


@dataclass
class ResilientResult:
    """Outcome of a resilient online run.

    ``commits`` maps every *committed* transaction to its commit step;
    ``schedule`` is the equivalent batch :class:`Schedule` when every
    released transaction committed (``None`` when crashes or shedding
    lost some -- a partial commit map is not a schedule).  The schedule
    is batch-feasible whenever the plan contains no node crashes (crash
    recovery restores objects at their durable home, a move the batch
    validator cannot see).  ``report`` carries the degradation accounting.
    """

    schedule: Optional[Schedule]
    commits: Dict[int, int]
    release: Dict[int, int]
    report: OnlineDegradationReport

    @property
    def makespan(self) -> int:
        """Time of the last commit (0 if nothing committed)."""
        return max(self.commits.values(), default=0)

    @property
    def response_times(self) -> Dict[int, int]:
        """Commit minus release, per committed transaction."""
        return {
            tid: ct - self.release[tid] for tid, ct in self.commits.items()
        }

    @property
    def mean_response(self) -> float:
        """Mean response time over committed transactions."""
        rts = self.response_times
        return sum(rts.values()) / len(rts) if rts else 0.0

    @property
    def max_response(self) -> int:
        """Worst response time over committed transactions."""
        return max(self.response_times.values(), default=0)


class _Flight:
    """One object's live leg: a lease, a path, and its current hop."""

    __slots__ = ("obj", "dest", "target_tid", "path", "hop_end", "retry_at",
                 "attempt")

    def __init__(self, obj: int, dest: int, target_tid: int) -> None:
        self.obj = obj
        self.dest = dest
        self.target_tid = target_tid
        self.path: Optional[List[int]] = None  # path[0] == current position
        self.hop_end: Optional[int] = None  # set while traversing a hop
        self.retry_at: Optional[int] = None  # set while blocked
        self.attempt = 0


def run_resilient(
    workload: OnlineWorkload,
    plan: FaultPlan | None = None,
    priority: Callable[..., Dict[int, tuple]] = timestamp_priority,
    rng: np.random.Generator | None = None,
    policy: RetryPolicy | None = None,
    admission: AdmissionControl | None = None,
    sanitizer: InvariantSanitizer | None = None,
    max_steps: int | None = None,
    recorder: Recorder | None = None,
) -> ResilientResult:
    """Run the priority contention manager against a live fault plan.

    ``plan`` defaults to the empty plan (in which case the run reproduces
    :func:`run_online` exactly).  ``policy`` bounds the backoff on blocked
    hops; exhausting it raises :class:`FaultError` (an unabsorbable
    fault, e.g. a permanent partition).  ``admission`` enables load
    shedding; ``sanitizer`` audits every step.  Raises
    :class:`SchedulingError` past ``max_steps`` (defaults to the healthy
    bound plus the plan's fault horizon and retry budget).  ``recorder``
    is an optional :class:`~repro.obs.Recorder` sink narrating retries,
    reroutes, lease recoveries, admission decisions, crashes, and
    commits; recording never changes the run's decisions.
    """
    rec = active(recorder)
    plan = plan if plan is not None else FaultPlan()
    policy = policy or RetryPolicy()
    inst = workload.instance
    net = inst.network
    plan.validate_against(net)
    prio = priority(workload, rng) if rng is not None else priority(workload)
    if max_steps is None:
        max_steps = (
            workload.horizon + (inst.m + 1) * (net.diameter() + 1) + 16
        )
        if not plan.is_empty:
            max_steps += plan.latest_time + (
                policy.budget + net.diameter() + 1
            ) * (inst.m + 1)

    position: Dict[int, int] = dict(inst.object_homes)
    flights: Dict[int, _Flight] = {}
    pending: Dict[int, object] = {}  # tid -> Transaction
    commits: Dict[int, int] = {}
    lost: List[Tuple[int, str]] = []
    shed: List[Tuple[int, str]] = []
    deferred: List[TimedTransaction] = []
    unrecoverable: set[int] = set()
    dead: set[int] = set()

    arrivals = list(workload.arrivals)
    release = {a.txn.tid: a.release for a in arrivals}
    crash_seq = list(plan.crash_events)
    ai = ci = 0
    retries = reroutes = rehomed = deferred_admissions = 0
    t = 1

    def best_requester(obj: int):
        cands = [txn for txn in pending.values() if obj in txn.objects]
        if not cands:
            return None
        return min(cands, key=lambda txn: prio[txn.tid])

    def _backoff(fl: _Flight, now: int) -> None:
        nonlocal retries
        fl.attempt += 1
        if fl.attempt > policy.max_retries:
            raise FaultError(
                f"object {fl.obj} stuck at node {position[fl.obj]} en "
                f"route to node {fl.dest} past the retry budget "
                f"({policy.max_retries} probes)"
            )
        retries += 1
        fl.hop_end = None
        fl.retry_at = now + policy.wait(fl.attempt)
        if rec.enabled:
            rec.record(
                obs_events.RetryEvent(
                    now, fl.obj, position[fl.obj], fl.attempt,
                    policy.wait(fl.attempt),
                )
            )
            rec.count("resilient.retries")

    def _try_depart(fl: _Flight, now: int) -> None:
        """Enter the next hop at ``now``, or back off if blocked."""
        nonlocal reroutes
        pos = position[fl.obj]
        if plan.stall(fl.obj, now) is not None:
            _backoff(fl, now)
            return
        stale = (
            fl.path is None
            or len(fl.path) < 2
            or fl.path[0] != pos
            or plan.link_down(pos, fl.path[1], now) is not None
        )
        if stale:
            down = plan.down_edges(now)
            path = path_avoiding(net, pos, fl.dest, down)
            if path is None:
                fl.path = None
                _backoff(fl, now)
                return
            if down and path != net.shortest_path(pos, fl.dest):
                reroutes += 1
                if rec.enabled:
                    rec.record(
                        obs_events.RerouteEvent(now, fl.obj, pos, fl.dest)
                    )
                    rec.count("resilient.reroutes")
            fl.path = path
        nxt = fl.path[1]
        if sanitizer is not None:
            sanitizer.check_hop(now, pos, nxt, plan)
        fl.attempt = 0
        fl.retry_at = None
        factor, _ = plan.delay_factor(pos, nxt, now)
        fl.hop_end = now + int(math.ceil(net.edge_weight(pos, nxt) * factor))

    def _rehome(obj: int) -> None:
        """Restore ``obj`` from its durable home after a lease died."""
        nonlocal rehomed
        prev = position[obj]
        flights.pop(obj, None)
        home = inst.home(obj)
        position[obj] = home
        if home in dead:
            unrecoverable.add(obj)
            recovered = False
        else:
            rehomed += 1
            recovered = True
        if rec.enabled:
            rec.record(
                obs_events.LeaseRecoveryEvent(t, obj, prev, home, recovered)
            )
            rec.count("resilient.lease_recoveries")

    def _drop_pending(tid: int, reason: str) -> None:
        lost.append((tid, reason))
        if rec.enabled:
            rec.record(obs_events.LostEvent(t, tid, reason))
            rec.count("resilient.lost")
        del pending[tid]

    def _crash(node: int) -> None:
        """Fire ``node``'s crash: kill its compute plane, re-home leases."""
        dead.add(node)
        if rec.enabled:
            rec.record(obs_events.CrashEvent(t, node))
            rec.count("resilient.crashes")
        for tid in sorted(pending):
            if pending[tid].node == node:
                _drop_pending(tid, f"node {node} crashed")
        for obj in sorted(position):
            fl = flights.get(obj)
            leased_here = fl is not None and fl.dest == node
            parked_here = fl is None and position[obj] == node
            if leased_here or parked_here:
                _rehome(obj)
        if unrecoverable:
            for tid in sorted(pending):
                gone = pending[tid].objects & unrecoverable
                if gone:
                    _drop_pending(
                        tid, f"objects {sorted(gone)} unrecoverable"
                    )
        # flights whose waiter just vanished and are not mid-hop stop now;
        # mid-hop flights drain their hop and stop at its far end
        for obj in sorted(flights):
            fl = flights[obj]
            if fl.target_tid not in pending and fl.hop_end is None:
                del flights[obj]

    def _admit(timed: TimedTransaction) -> None:
        txn = timed.txn
        if txn.node in dead:
            reason = f"node {txn.node} crashed"
            lost.append((txn.tid, reason))
            if rec.enabled:
                rec.record(obs_events.LostEvent(t, txn.tid, reason))
                rec.count("resilient.lost")
            return
        gone = txn.objects & unrecoverable
        if gone:
            reason = f"objects {sorted(gone)} unrecoverable"
            lost.append((txn.tid, reason))
            if rec.enabled:
                rec.record(obs_events.LostEvent(t, txn.tid, reason))
                rec.count("resilient.lost")
            return
        if rec.enabled:
            rec.record(
                obs_events.AdmissionEvent(t, txn.tid, "admit", len(pending))
            )
            rec.count("resilient.admitted")
        pending[txn.tid] = txn

    def _room() -> bool:
        return admission is None or len(pending) < admission.high_water

    while ai < len(arrivals) or deferred or pending or flights:
        if t > max_steps:
            raise SchedulingError(
                f"resilient runtime exceeded {max_steps} steps "
                f"({len(pending)} pending, {len(flights)} in flight)"
            )
        # crashes the timeline has reached, in (time, node) order
        while ci < len(crash_seq) and crash_seq[ci].time <= t:
            _crash(crash_seq[ci].node)
            ci += 1
        # deliveries and probes: advance every flight to time t
        for obj in sorted(flights):
            fl = flights.get(obj)
            if fl is None:  # cancelled by an earlier flight's crash sweep
                continue  # pragma: no cover - crashes cancel before here
            while fl.hop_end is not None and fl.hop_end <= t:
                position[obj] = fl.path[1]
                fl.path = fl.path[1:]
                fl.hop_end = None
                if position[obj] == fl.dest or fl.target_tid not in pending:
                    del flights[obj]
                    fl = None
                    break
                _try_depart(fl, t)
            if fl is not None and fl.retry_at is not None and fl.retry_at <= t:
                _try_depart(fl, t)
        # admission: deferred releases first (FIFO), then new arrivals
        while deferred and _room():
            _admit(deferred.pop(0))
        while ai < len(arrivals) and arrivals[ai].release <= t:
            timed = arrivals[ai]
            ai += 1
            if _room():
                _admit(timed)
            elif admission.policy == "strict":
                raise OverloadError(
                    f"t={t}: release of transaction {timed.txn.tid} with "
                    f"{len(pending)} pending >= high-water "
                    f"{admission.high_water}"
                )
            elif admission.policy == "shed":
                shed.append((
                    timed.txn.tid,
                    f"{len(pending)} pending >= high-water "
                    f"{admission.high_water} at t={t}",
                ))
                if rec.enabled:
                    rec.record(
                        obs_events.AdmissionEvent(
                            t, timed.txn.tid, "shed", len(pending)
                        )
                    )
                    rec.count("resilient.shed")
            else:
                deferred.append(timed)
                deferred_admissions += 1
                if rec.enabled:
                    rec.record(
                        obs_events.AdmissionEvent(
                            t, timed.txn.tid, "defer", len(pending)
                        )
                    )
                    rec.count("resilient.deferred")
        # commits: any pending transaction with all objects on-node
        committed_now = [
            txn
            for txn in pending.values()
            if all(
                o not in flights and position[o] == txn.node
                for o in txn.objects
            )
        ]
        for txn in sorted(committed_now, key=lambda txn: prio[txn.tid]):
            if sanitizer is not None:
                sanitizer.check_commit(
                    t, txn, position, flights.keys(), release
                )
            if rec.enabled:
                rec.record(
                    obs_events.CommitEvent(
                        t, txn.tid, txn.node, tuple(sorted(txn.objects))
                    )
                )
                rec.count("resilient.commits")
            commits[txn.tid] = t
            del pending[txn.tid]
        if sanitizer is not None:
            sanitizer.check_step(t, position, flights.keys(), pending, net.n)
        # dispatch: idle objects chase their best requester
        for obj in sorted(position):
            if obj in flights or obj in unrecoverable:
                continue
            target = best_requester(obj)
            if target is None or position[obj] == target.node:
                continue
            if sanitizer is not None:
                sanitizer.check_dispatch(t, obj, target, pending, prio)
            if rec.enabled:
                rec.record(
                    obs_events.DispatchEvent(
                        t, obj, position[obj], target.node, target.tid
                    )
                )
                rec.count("resilient.dispatches")
            fl = _Flight(obj, target.node, target.tid)
            flights[obj] = fl
            _try_depart(fl, t)
        # advance to the next interesting time
        nxt = []
        if ai < len(arrivals):
            nxt.append(arrivals[ai].release)
        if ci < len(crash_seq):
            nxt.append(crash_seq[ci].time)
        for fl in flights.values():
            nxt.append(fl.hop_end if fl.hop_end is not None else fl.retry_at)
        if deferred:
            nxt.append(t + 1)
        t = max(t + 1, min(nxt)) if nxt else t + 1

    for tid, ct in commits.items():
        if ct < release[tid]:  # pragma: no cover - construction prevents it
            raise SchedulingError(
                f"transaction {tid} committed before release"
            )
    if rec.enabled:
        rec.gauge("resilient.makespan", max(commits.values(), default=0))
        for tid, ct in sorted(commits.items()):
            rec.observe("resilient.response", ct - release[tid])
    report = OnlineDegradationReport(
        released=workload.m,
        committed=len(commits),
        lost=tuple(lost),
        shed=tuple(shed),
        deferred_admissions=deferred_admissions,
        retries=retries,
        reroutes=reroutes,
        rehomed=rehomed,
        fault_count=len(plan),
        sanitizer_checks=sanitizer.checks if sanitizer is not None else 0,
        violations=len(sanitizer.violations) if sanitizer is not None else 0,
    )
    schedule = None
    if len(commits) == workload.m:
        schedule = Schedule(
            inst, commits,
            meta={"scheduler": "resilient-priority", "faults": len(plan)},
        )
    return ResilientResult(
        schedule=schedule, commits=dict(commits), release=release,
        report=report,
    )
