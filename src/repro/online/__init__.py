"""Online scheduling extension (§9, open question 1).

The batch model extended with release times: a priority-driven contention
manager (:func:`run_online`) and epoch batching of the paper's offline
schedulers (:func:`run_epoch_batched`).
"""

from .arrivals import OnlineWorkload, TimedTransaction, poisson_workload
from .epoch import run_epoch_batched
from .runtime import (
    OnlineResult,
    random_priority,
    run_online,
    timestamp_priority,
)

__all__ = [
    "TimedTransaction",
    "OnlineWorkload",
    "poisson_workload",
    "OnlineResult",
    "run_online",
    "run_epoch_batched",
    "timestamp_priority",
    "random_priority",
]
