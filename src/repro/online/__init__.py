"""Online scheduling extension (§9, open question 1).

The batch model extended with release times: a priority-driven contention
manager (:func:`run_online`), epoch batching of the paper's offline
schedulers (:func:`run_epoch_batched`), and a fault-aware resilient
runtime (:func:`run_resilient`) that consumes a live
:class:`~repro.faults.plan.FaultPlan` with lease-based crash recovery and
admission control (docs/FAULTS.md).
"""

from .arrivals import OnlineWorkload, TimedTransaction, poisson_workload
from .epoch import run_epoch_batched
from .report import OnlineDegradationReport
from .resilient import AdmissionControl, ResilientResult, run_resilient
from .runtime import (
    OnlineResult,
    random_priority,
    run_online,
    timestamp_priority,
)

__all__ = [
    "TimedTransaction",
    "OnlineWorkload",
    "poisson_workload",
    "OnlineResult",
    "run_online",
    "run_epoch_batched",
    "timestamp_priority",
    "random_priority",
    "AdmissionControl",
    "ResilientResult",
    "run_resilient",
    "OnlineDegradationReport",
]
