"""Fault-tolerant execution layer (§9 open questions, beyond ``phi``).

The paper's conclusion leaves open how its offline schedules behave when
the system misbehaves; :mod:`repro.sim.asynchrony` covers uniform jitter
(the synchronicity factor) and this package covers everything sharper:
declarative fault plans (:mod:`repro.faults.plan`), a shared deterministic
backoff policy (:mod:`repro.faults.backoff`), a fault-aware replay engine
that reroutes, retries, defers, and recovers instead of aborting
(:mod:`repro.faults.engine`), recovery rescheduling of crash-stranded
suffixes (:mod:`repro.faults.recovery`), and measured degradation reports
(:mod:`repro.faults.report`).  Semantics are documented in docs/FAULTS.md;
the E17 experiment sweeps fault intensity against makespan stretch, and
the E18 experiment drives the same plans *live* through the resilient
online runtime (:mod:`repro.online.resilient`).
"""

from .backoff import RetryPolicy
from .engine import FaultyTrace, faulty_execute
from .plan import (
    DelaySpike,
    FaultPlan,
    LinkFailure,
    NodeCrash,
    ObjectStall,
    random_fault_plan,
)
from .recovery import reschedule_survivors
from .report import DegradationReport, degradation_report
from .routing import degraded_network, path_avoiding

__all__ = [
    "LinkFailure",
    "NodeCrash",
    "ObjectStall",
    "DelaySpike",
    "FaultPlan",
    "random_fault_plan",
    "RetryPolicy",
    "FaultyTrace",
    "faulty_execute",
    "reschedule_survivors",
    "DegradationReport",
    "degradation_report",
    "path_avoiding",
    "degraded_network",
]
