"""Degradation reports: the robustness/performance trade-off, measured.

A :class:`DegradationReport` condenses a faulty replay into the numbers
the E17 experiment tables: how much the realized makespan stretched over
the plan, how many transactions survived, and how much recovery work
(retries, reroutes, rescheduling rounds, deferred commits) absorbing the
faults cost -- with per-fault attribution so a given stretch can be traced
back to the events that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple

from ..analysis.report import register_report, report_payload, report_to_json
from ..core.schedule import Schedule
from .engine import FaultyTrace
from .plan import FaultPlan

__all__ = ["DegradationReport", "degradation_report"]


@register_report("degradation")
@dataclass(frozen=True)
class DegradationReport:
    """Realized-vs-planned outcome of one faulty replay.

    ``stretch`` is realized / planned makespan (1.0 on the healthy path);
    ``attribution`` pairs each fault event's description with the number
    of disruptions (waits, reroutes, recoveries) it caused, worst first.
    """

    report_kind: ClassVar[str]  # set by @register_report

    planned_makespan: int
    realized_makespan: int
    stretch: float
    planned_commits: int
    committed: int
    lost: int
    retries: int
    reroutes: int
    recoveries: int
    deferred_commits: int
    fault_count: int
    attribution: Tuple[Tuple[str, int], ...]

    @property
    def commit_rate(self) -> float:
        """Fraction of planned transactions that actually committed."""
        return self.committed / self.planned_commits

    def as_dict(self) -> dict[str, object]:
        """Plain-data summary for tables."""
        return {
            "planned_makespan": self.planned_makespan,
            "realized_makespan": self.realized_makespan,
            "stretch": self.stretch,
            "committed": self.committed,
            "lost": self.lost,
            "commit_rate": self.commit_rate,
            "retries": self.retries,
            "reroutes": self.reroutes,
            "recoveries": self.recoveries,
            "deferred_commits": self.deferred_commits,
            "faults": self.fault_count,
        }

    def to_json(self) -> str:
        """Full-fidelity JSON envelope (see :mod:`repro.analysis.report`)."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "DegradationReport":
        """Inverse of :meth:`to_json`."""
        payload = report_payload(text, expected_kind="degradation")
        payload["attribution"] = tuple(
            (str(desc), int(count)) for desc, count in payload["attribution"]
        )
        return cls(**payload)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"planned makespan {self.planned_makespan}, realized "
            f"{self.realized_makespan} (stretch {self.stretch:.3f})",
            f"committed {self.committed}/{self.planned_commits} "
            f"(lost {self.lost}); retries {self.retries}, reroutes "
            f"{self.reroutes}, recoveries {self.recoveries}, deferred "
            f"commits {self.deferred_commits}",
        ]
        for desc, count in self.attribution:
            lines.append(f"  {count:4d} x {desc}")
        return "\n".join(lines)


def degradation_report(
    schedule: Schedule, plan: FaultPlan, trace: FaultyTrace
) -> DegradationReport:
    """Build the report for ``trace`` = ``faulty_execute(schedule, plan)``."""
    planned = schedule.makespan
    realized = trace.makespan
    attribution = tuple(
        (plan.describe(idx), count)
        for idx, count in sorted(
            trace.attribution.items(), key=lambda kv: (-kv[1], kv[0])
        )
    )
    return DegradationReport(
        planned_makespan=planned,
        realized_makespan=realized,
        stretch=realized / planned if planned else 1.0,
        planned_commits=len(schedule.commit_times),
        committed=trace.committed,
        lost=len(trace.lost),
        retries=trace.retries,
        reroutes=trace.reroutes,
        recoveries=trace.recoveries,
        deferred_commits=trace.deferred_commits,
        fault_count=len(plan),
        attribution=attribution,
    )
