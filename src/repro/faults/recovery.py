"""Recovery rescheduling: replan the surviving suffix after a crash.

When a node crash strands uncommitted transactions, the engine hands the
survivors to :func:`reschedule_survivors`: a fresh batch instance is built
over the *current* object positions (crash-lost replicas already restored
at their homes) and the *degraded* network (permanently failed links
removed), scheduled with the generic greedy scheduler -- the one scheduler
that is correct on arbitrary graphs (§2.3 / §3.1) -- and spliced into the
timeline strictly after the recovery point.  The replay engine then
continues through the spliced suffix, still absorbing transient faults
hop-by-hop.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence, Tuple

from ..core.greedy import GreedyScheduler
from ..core.instance import Instance
from ..core.transaction import Transaction
from ..errors import RecoveryError, ReproError
from .routing import degraded_network

__all__ = ["reschedule_survivors"]

Edge = Tuple[int, int]


def reschedule_survivors(
    instance: Instance,
    survivors: Sequence[Transaction],
    positions: Mapping[int, int],
    down: FrozenSet[Edge],
    base: int,
) -> Dict[int, int]:
    """New commit times for ``survivors``, all strictly after ``base``.

    ``positions`` are the objects' current nodes (the recovery instance's
    homes); ``down`` are the permanently failed links excluded from the
    degraded planning substrate.  Returns ``tid -> commit time``; commit
    times are ``base + t`` with ``t >= 1`` from the greedy recovery
    schedule, so the splice never collides with already-realized commits.

    Raises :class:`RecoveryError` if the degraded network is disconnected
    or the recovery batch cannot be scheduled.
    """
    if not survivors:
        return {}
    net = degraded_network(instance.network, down)
    needed = set()
    for t in survivors:
        needed |= t.objects
    homes = {obj: positions[obj] for obj in needed}
    try:
        rinst = Instance(net, survivors, homes)
        rsched = GreedyScheduler().schedule(rinst)
        rsched.validate()
    except ReproError as exc:
        raise RecoveryError(
            f"cannot reschedule {len(survivors)} surviving transactions "
            f"after crash recovery: {exc}"
        ) from exc
    return {t.tid: base + rsched.time_of(t.tid) for t in survivors}
