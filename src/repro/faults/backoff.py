"""Bounded deterministic exponential backoff, shared by every fault path.

Both the offline replay engine (:mod:`repro.faults.engine`) and the live
resilient online runtime (:mod:`repro.online.resilient`) must wait out
transient faults -- a stalled object, a failed link with no detour --
without peeking at repair times.  They share this one policy so the two
layers degrade identically: probe, back off exponentially to a cap, and
after a bounded number of consecutive failed probes declare the fault
unabsorbable.  The policy is fully deterministic (no jitter); determinism
is what makes every faulty run reproducible from its plan and seed alone.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for blocked hops and stalled objects.

    A blocked attempt ``i`` (1-based) waits ``min(max_wait, 2**(i-1))``
    steps before probing again; after ``max_retries`` consecutive failed
    probes the fault is declared unabsorbable and a :class:`FaultError`
    is raised.  Deterministic -- no randomness in the recovery path.
    """

    max_retries: int = 24
    max_wait: int = 64

    def wait(self, attempt: int) -> int:
        """Backoff delay before probe number ``attempt + 1``."""
        return min(self.max_wait, 1 << max(0, attempt - 1))

    @property
    def budget(self) -> int:
        """Total steps the policy can wait out before giving up."""
        return sum(self.wait(i) for i in range(1, self.max_retries + 1))
