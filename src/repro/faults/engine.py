"""Fault-aware schedule execution (replay against a :class:`FaultPlan`).

:func:`faulty_execute` replays a feasible schedule hop-by-hop while the
fault plan disrupts it, absorbing each disruption instead of aborting:

* **link failures** -- legs are rerouted around down links with the shared
  detour machinery (:func:`repro.faults.routing.path_avoiding`); when no
  route exists the hop waits for a repair with bounded exponential backoff
  (the engine probes, it does not peek at repair times);
* **object stalls** -- frozen objects retry their departure with the same
  backoff;
* **delay spikes** -- affected hops are stretched and commits whose objects
  arrive late are *deferred* to the earliest feasible step, never aborted;
* **node crashes** -- transactions stranded on dead nodes are lost, object
  replicas parked there are restored at their durable home, and the
  surviving suffix is rescheduled on the degraded network
  (:mod:`repro.faults.recovery`) and spliced into the timeline.

The healthy path adds zero distortion: on an empty plan the replay routes
the same shortest-path hops at the same times as :func:`repro.sim.execute`
and reproduces its trace exactly (same makespan, same commit events, same
traffic statistics) -- asserted by the test suite.  Every disruption the
engine absorbs is counted and attributed to the fault event that caused
it, feeding the :class:`~repro.faults.report.DegradationReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.schedule import Schedule
from ..errors import FaultError
from ..obs import events as obs_events
from ..obs.recorder import Recorder, active
from ..sim.trace import CommitEvent
from .backoff import RetryPolicy
from .plan import FaultPlan
from .recovery import reschedule_survivors
from .routing import path_avoiding

__all__ = ["RetryPolicy", "FaultyTrace", "faulty_execute"]

Edge = Tuple[int, int]


def _edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


@dataclass
class FaultyTrace:
    """What actually happened when a schedule was replayed under faults.

    The first block of attributes mirrors :class:`repro.sim.trace.Trace`
    (and equals it exactly on an empty plan); the second block counts the
    disruptions absorbed; ``attribution`` maps fault-event index (within
    the plan) to the number of disruptions that event caused.
    """

    makespan: int
    commits: Tuple[CommitEvent, ...]
    total_distance: int
    object_distance: Dict[int, int] = field(default_factory=dict)
    edge_traffic: Dict[Edge, int] = field(default_factory=dict)
    max_in_flight: int = 0
    idle_object_time: int = 0

    realized_commits: Dict[int, int] = field(default_factory=dict)
    retries: int = 0
    reroutes: int = 0
    recoveries: int = 0
    deferred_commits: int = 0
    lost: Tuple[Tuple[int, str], ...] = ()
    attribution: Dict[int, int] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        """Number of transactions that actually committed."""
        return len(self.commits)

    def as_dict(self) -> dict[str, object]:
        """Plain-data summary for tables."""
        return {
            "makespan": self.makespan,
            "committed": self.committed,
            "lost": len(self.lost),
            "retries": self.retries,
            "reroutes": self.reroutes,
            "recoveries": self.recoveries,
            "deferred_commits": self.deferred_commits,
        }


class _LegResult:
    """Buffered outcome of routing one object for one transaction."""

    __slots__ = ("arrival", "depart", "hops", "retries", "reroutes", "attribution")

    def __init__(self, arrival: int, depart: int, hops: List[Tuple[Edge, int, int]],
                 retries: int, reroutes: int, attribution: Dict[int, int]) -> None:
        self.arrival = arrival
        self.depart = depart
        self.hops = hops
        self.retries = retries
        self.reroutes = reroutes
        self.attribution = attribution


def _route_object(
    net, plan: FaultPlan, policy: RetryPolicy,
    obj: int, src: int, dst: int, depart: int,
) -> _LegResult:
    """Drive ``obj`` from ``src`` to ``dst`` through the faulty network.

    Buffers hop records and disruption counters; the caller merges them
    into the run only once the consuming transaction actually commits.
    """
    attribution: Dict[int, int] = {}

    def _blame(event) -> None:
        idx = plan.index_of(event)
        attribution[idx] = attribution.get(idx, 0) + 1

    if src == dst:
        return _LegResult(depart, depart, [], 0, 0, attribution)

    def _blame_base_blocker(pos: int, t: int) -> None:
        base = net.shortest_path(pos, dst)
        for a, b in zip(base, base[1:]):
            ev = plan.link_down(a, b, t)
            if ev is not None:
                _blame(ev)
                return

    pos, t = src, depart
    hops: List[Tuple[Edge, int, int]] = []
    retries = reroutes = 0
    depart_actual: Optional[int] = None
    # remaining planned route (path[0] == pos); computed once per leg on
    # the healthy path -- identical hops to sim.routing.plan_leg -- and
    # re-planned only when a stall clears or the next link is down
    path: Optional[List[int]] = None
    attempt = 0
    while pos != dst:
        stall = plan.stall(obj, t)
        if stall is not None:
            attempt += 1
            if attempt > policy.max_retries:
                raise FaultError(
                    f"object {obj} stalled at node {pos} past the retry "
                    f"budget ({policy.max_retries} probes): {stall.describe()}"
                )
            retries += 1
            _blame(stall)
            t += policy.wait(attempt)
            continue
        if path is None:
            down = plan.down_edges(t)
            path = path_avoiding(net, pos, dst, down)
            if path is None:
                attempt += 1
                if attempt > policy.max_retries:
                    raise FaultError(
                        f"object {obj} stuck at node {pos}: no route to "
                        f"node {dst} after {policy.max_retries} probes "
                        f"(links down: {sorted(down)})"
                    )
                retries += 1
                _blame_base_blocker(pos, t)
                t += policy.wait(attempt)
                continue
            if down and path != net.shortest_path(pos, dst):
                reroutes += 1
                _blame_base_blocker(pos, t)
        nxt = path[1]
        if plan.link_down(pos, nxt, t) is not None:
            path = None  # next iteration re-plans around the failure
            continue
        attempt = 0
        w = net.edge_weight(pos, nxt)
        factor, spike = plan.delay_factor(pos, nxt, t)
        duration = int(math.ceil(w * factor))
        if spike is not None:
            _blame(spike)
        if depart_actual is None:
            depart_actual = t
        hops.append((_edge(pos, nxt), t, t + duration))
        t += duration
        pos = nxt
        path = path[1:]
    return _LegResult(t, depart_actual if depart_actual is not None else depart,
                      hops, retries, reroutes, attribution)


def faulty_execute(
    schedule: Schedule,
    plan: FaultPlan,
    policy: RetryPolicy | None = None,
    recorder: Recorder | None = None,
) -> FaultyTrace:
    """Replay ``schedule`` against ``plan``, absorbing every fault it can.

    Returns the realized :class:`FaultyTrace`.  Raises :class:`FaultError`
    when a disruption exceeds the retry budget and
    :class:`~repro.errors.RecoveryError` when a node crash leaves no
    reschedulable surviving suffix (degraded network disconnected).
    ``recorder`` is an optional :class:`~repro.obs.Recorder` sink; the
    replay narrates hops, commits, recoveries, and losses through it
    without altering any realized outcome.
    """
    rec = active(recorder)
    policy = policy or RetryPolicy()
    inst = schedule.instance
    net = inst.network
    plan.validate_against(net)

    position: Dict[int, int] = dict(inst.object_homes)
    free_at: Dict[int, int] = {o: 0 for o in inst.objects}
    planned: Dict[int, int] = dict(schedule.commit_times)
    realized: Dict[int, int] = {}
    unrecoverable: set[int] = set()
    recovered_nodes: set[int] = set()

    commits: List[CommitEvent] = []
    lost: List[Tuple[int, str]] = []
    edge_traffic: Dict[Edge, int] = {}
    object_distance: Dict[int, int] = {}
    flight_events: List[Tuple[int, int]] = []
    idle = 0
    retries = reroutes = recoveries = deferred = 0
    attribution: Dict[int, int] = {}

    def _merge_attr(extra: Dict[int, int]) -> None:
        for idx, c in extra.items():
            attribution[idx] = attribution.get(idx, 0) + c

    # identical tie-breaking to sim.execute: stable sort on scheduled time
    order: List = sorted(inst.transactions, key=lambda t: planned[t.tid])
    crash_seq = plan.crash_events

    def _recover(i: int, crash_node: int) -> None:
        """Fire ``crash_node``'s crash: lose the stranded, splice the rest.

        Marks every node dead by the recovery point as handled, restores
        replicas parked on dead nodes from their durable homes, and -- if
        the crash actually disturbed the pending suffix (lost transactions
        or moved objects) -- reschedules the survivors on the degraded
        network and splices the new commit times into the timeline.
        """
        nonlocal recoveries
        base = max(
            plan.crash_time(crash_node) or 0,
            max(realized.values(), default=0),
            1,
        )
        dead = {
            n for n in net.nodes()
            if plan.crash_time(n) is not None and plan.crash_time(n) <= base
        }
        for n in sorted(dead - recovered_nodes):
            recovered_nodes.add(n)
            ev = plan.crash_event(n)
            if ev is not None:
                idx = plan.index_of(ev)
                attribution[idx] = attribution.get(idx, 0) + 1
                if rec.enabled:
                    rec.record(obs_events.CrashEvent(ev.time, n))
                    rec.count("faults.crashes")
        # restore replicas parked on dead nodes from their durable home
        disturbed = False
        for obj in sorted(position):
            if position[obj] in dead:
                disturbed = True
                home = inst.home(obj)
                prev = position[obj]
                if home in dead:
                    unrecoverable.add(obj)
                else:
                    position[obj] = home
                    free_at[obj] = max(free_at[obj], base)
                if rec.enabled:
                    rec.record(
                        obs_events.LeaseRecoveryEvent(
                            base, obj, prev, home, home not in dead
                        )
                    )
                    rec.count("faults.lease_recoveries")
        pending = order[i:]
        survivors = []
        for t in pending:
            if t.node in dead:
                reason = f"node {t.node} crashed"
                lost.append((t.tid, reason))
                disturbed = True
                if rec.enabled:
                    rec.record(obs_events.LostEvent(base, t.tid, reason))
                    rec.count("faults.lost")
            elif t.objects & unrecoverable:
                objs = sorted(t.objects & unrecoverable)
                reason = f"objects {objs} unrecoverable"
                lost.append((t.tid, reason))
                disturbed = True
                if rec.enabled:
                    rec.record(obs_events.LostEvent(base, t.tid, reason))
                    rec.count("faults.lost")
            else:
                survivors.append(t)
        if survivors and disturbed:
            recoveries += 1
            if rec.enabled:
                rec.count("faults.recoveries")
            splice = reschedule_survivors(
                inst, survivors, dict(position),
                plan.permanent_down_edges(base), base,
            )
            planned.update(splice)
            survivors.sort(key=lambda t: (planned[t.tid], t.tid))
        order[i:] = survivors

    i = 0
    while i < len(order):
        txn = order[i]
        # fire crashes the timeline has reached, in time order, whether or
        # not the dead node hosts a transaction -- parked replicas are
        # lost either way
        due = next(
            (ev for ev in crash_seq
             if ev.node not in recovered_nodes
             and ev.time < planned[txn.tid]),
            None,
        )
        if due is not None:
            _recover(i, due.node)
            continue
        crash = plan.crash_time(txn.node)
        legs: List[Tuple[int, _LegResult]] = []
        ready = 1
        for obj in sorted(txn.objects):
            leg = _route_object(
                net, plan, policy, obj, position[obj], txn.node, free_at[obj]
            )
            legs.append((obj, leg))
            ready = max(ready, leg.arrival)
        commit = max(planned[txn.tid], ready)
        if crash is not None and commit > crash:
            # the node died while its objects were still underway; the
            # dispatched moves never take effect (recovery restores the
            # objects from their last committed positions)
            _recover(i, txn.node)
            continue
        if commit > planned[txn.tid]:
            deferred += 1
            if rec.enabled:
                rec.count("faults.deferred_commits")
        realized[txn.tid] = commit
        for obj, leg in legs:
            if leg.hops:
                for edge, enter, exit_ in leg.hops:
                    edge_traffic[edge] = edge_traffic.get(edge, 0) + 1
                    object_distance[obj] = (
                        object_distance.get(obj, 0) + exit_ - enter
                    )
                    if rec.enabled:
                        rec.record(
                            obs_events.HopEvent(enter, obj, edge[0], edge[1])
                        )
                flight_events.append((leg.depart, 1))
                flight_events.append((leg.arrival, -1))
                idle += commit - leg.arrival
            retries += leg.retries
            reroutes += leg.reroutes
            _merge_attr(leg.attribution)
            position[obj] = txn.node
            free_at[obj] = commit
        if rec.enabled:
            rec.record(
                obs_events.CommitEvent(
                    commit, txn.tid, txn.node, tuple(sorted(txn.objects))
                )
            )
            rec.count("faults.commits")
        commits.append(
            CommitEvent(commit, txn.tid, txn.node, tuple(sorted(txn.objects)))
        )
        i += 1

    flight_events.sort(key=lambda e: (e[0], e[1]))
    in_flight = max_in_flight = 0
    for _, delta in flight_events:
        in_flight += delta
        max_in_flight = max(max_in_flight, in_flight)

    if rec.enabled:
        rec.count("faults.retries", retries)
        rec.count("faults.reroutes", reroutes)
        rec.gauge("faults.makespan", max(realized.values(), default=0))
        rec.gauge("faults.max_in_flight", max_in_flight)

    return FaultyTrace(
        makespan=max(realized.values(), default=0),
        commits=tuple(commits),
        total_distance=sum(object_distance.values()),
        object_distance=object_distance,
        edge_traffic=edge_traffic,
        max_in_flight=max_in_flight,
        idle_object_time=idle,
        realized_commits=realized,
        retries=retries,
        reroutes=reroutes,
        recoveries=recoveries,
        deferred_commits=deferred,
        lost=tuple(lost),
        attribution=attribution,
    )
