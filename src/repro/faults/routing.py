"""Routing around failed links.

Two layers, cheapest first: :func:`path_avoiding` tries the shared detour
machinery (:func:`repro.sim.reroute.detour_candidates` -- the shortest path
plus via-an-intermediate-node alternatives) and returns the first candidate
touching no down link; when every candidate is blocked it falls back to a
full Dijkstra on the masked adjacency, which is complete: it finds a route
iff one exists in the degraded graph.  :func:`degraded_network` returns a
lazy :class:`~repro.network.masked.MaskedNetwork` view without the failed
edges -- the substrate recovery rescheduling plans against after permanent
failures, reusing the healthy network's cached distance rows instead of
recomputing the all-pairs matrix from scratch.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra

from ..errors import GraphError, RecoveryError
from ..network.graph import Network
from ..network.masked import masked_csr
from ..sim.reroute import detour_candidates

__all__ = ["path_avoiding", "degraded_network"]

Edge = Tuple[int, int]


def _edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _uses_down(path: List[int], down: FrozenSet[Edge]) -> bool:
    return any(_edge(a, b) in down for a, b in zip(path, path[1:]))


def _masked_path(
    net: Network, src: int, dst: int, down: FrozenSet[Edge]
) -> Optional[List[int]]:
    """Shortest path in ``net`` minus ``down``, or None if disconnected."""
    dist, pred = dijkstra(
        masked_csr(net, down),
        directed=False,
        indices=src,
        return_predecessors=True,
    )
    if not np.isfinite(dist[dst]):
        return None
    path = [dst]
    cur = dst
    while cur != src:
        cur = int(pred[cur])
        path.append(cur)
    path.reverse()
    return path


def path_avoiding(
    net: Network,
    src: int,
    dst: int,
    down: FrozenSet[Edge],
    max_detours: int = 16,
) -> Optional[List[int]]:
    """A path from ``src`` to ``dst`` using no link in ``down``.

    Prefers the healthy shortest path, then the cheapest detour candidates,
    then a complete masked-graph search.  Returns None iff ``down``
    disconnects ``dst`` from ``src``.
    """
    if src == dst:
        return [src]
    if not down:
        return net.shortest_path(src, dst)
    slack = 2 * int(net.distance_matrix.max())
    for path in detour_candidates(net, src, dst, slack, max_detours):
        if not _uses_down(path, down):
            return path
    return _masked_path(net, src, dst, down)


def degraded_network(net: Network, down: FrozenSet[Edge]) -> Network:
    """``net`` with the ``down`` edges removed, as a lazy masked view.

    Used by recovery rescheduling to plan the surviving suffix against the
    links that will actually exist.  The view shares the healthy network's
    cached distance rows for every source the failures don't affect (see
    :class:`~repro.network.masked.MaskedNetwork`).  Raises
    :class:`RecoveryError` when the removal disconnects the graph -- no
    recovery schedule can span a partition.
    """
    if not down:
        return net
    try:
        return net.masked(down)
    except GraphError as exc:
        raise RecoveryError(
            f"removing {sorted(down)} disconnects the network: {exc}"
        ) from exc
