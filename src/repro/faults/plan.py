"""Declarative fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is an immutable description of every disruption a run
will face -- link failure/repair windows, node crashes, transient object
stalls, and per-link delay spikes.  The fault-aware engine
(:mod:`repro.faults.engine`) replays a schedule *against* a plan, so the
same plan can be rerun under different schedules (and vice versa) and every
reported number is reproducible from the plan alone.

Events use half-open time windows ``[start, end)``; ``end=None`` means the
fault is permanent (a link that never heals, a node that never reboots).
:func:`random_fault_plan` draws a seeded random workload of faults whose
expected volume scales with a single ``intensity`` knob -- the independent
variable of the E17 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import FaultError
from ..network.graph import Network

__all__ = [
    "LinkFailure",
    "NodeCrash",
    "ObjectStall",
    "DelaySpike",
    "FaultPlan",
    "random_fault_plan",
]

Edge = Tuple[int, int]


def _edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class LinkFailure:
    """Link ``(u, v)`` is down during ``[start, end)``.

    ``end=None`` models a permanent failure; otherwise the link repairs
    itself at ``end`` and carries traffic again from that step on.  Objects
    already in flight on the link when it fails complete their hop (the
    packet drains); new hops cannot enter a down link.
    """

    u: int
    v: int
    start: int
    end: Optional[int] = None

    def down_at(self, t: float) -> bool:
        """True iff the link is unusable at time ``t``."""
        return self.start <= t and (self.end is None or t < self.end)

    def describe(self) -> str:
        """Human-readable one-liner for degradation reports."""
        window = "forever" if self.end is None else f"until t={self.end}"
        return f"link ({self.u},{self.v}) down from t={self.start} {window}"


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` crashes (permanently) at ``time``.

    A crash kills the *compute* plane of the node: its transaction can no
    longer commit, and object replicas parked there are lost (the engine
    restores them from their durable home).  The *routing* plane survives
    -- objects may still be forwarded through the node's links, matching
    the common deployment where the store process dies but the switch
    stays up.  Killing the links too is expressed by adding
    :class:`LinkFailure` events for the node's incident edges.
    """

    node: int
    time: int

    def describe(self) -> str:
        """Human-readable one-liner for degradation reports."""
        return f"node {self.node} crashes at t={self.time}"


@dataclass(frozen=True)
class ObjectStall:
    """Object ``obj`` cannot depart its current node during ``[start, end)``.

    Models a transiently wedged object (lock-holder preemption, GC pause,
    hot-standby handover): the object stays readable in place but its
    forwarding is frozen until the stall clears.
    """

    obj: int
    start: int
    end: int

    def stalled_at(self, t: float) -> bool:
        """True iff the object is frozen at time ``t``."""
        return self.start <= t < self.end

    def describe(self) -> str:
        """Human-readable one-liner for degradation reports."""
        return f"object {self.obj} stalled t=[{self.start},{self.end})"


@dataclass(frozen=True)
class DelaySpike:
    """Hops entering link ``(u, v)`` during ``[start, end)`` take ``factor``x.

    The per-link, windowed analogue of the synchronicity factor ``phi``
    (:mod:`repro.sim.asynchrony`): a hop of weight ``w`` entering the link
    inside the window needs ``ceil(w * factor)`` steps.
    """

    u: int
    v: int
    start: int
    end: int
    factor: float

    def active_at(self, t: float) -> bool:
        """True iff the spike window covers time ``t``."""
        return self.start <= t < self.end

    def describe(self) -> str:
        """Human-readable one-liner for degradation reports."""
        return (
            f"link ({self.u},{self.v}) {self.factor:g}x slow "
            f"t=[{self.start},{self.end})"
        )


FaultEvent = object  # union of the four event dataclasses above


class FaultPlan:
    """An immutable, validated collection of fault events.

    Parameters
    ----------
    events:
        Any mix of :class:`LinkFailure`, :class:`NodeCrash`,
        :class:`ObjectStall`, and :class:`DelaySpike`.  Windows must be
        well-formed (``start >= 0``, ``end > start`` when finite, delay
        factors ``>= 1``).
    network:
        Optional :class:`~repro.network.graph.Network` to validate the
        events against (see :meth:`validate_against`): an event naming a
        node or link the network does not have raises :class:`FaultError`
        here, at construction, instead of a bare ``KeyError`` mid-run.

    The plan indexes events by kind so the engine's hot queries (is this
    link down now?  when does this node die?) are cheap, and assigns every
    event a stable index used for per-fault attribution in the
    degradation report.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        network: Optional[Network] = None,
    ) -> None:
        evs: List[FaultEvent] = []
        for e in events:
            if isinstance(e, LinkFailure):
                if e.start < 0 or (e.end is not None and e.end <= e.start):
                    raise FaultError(f"bad link-failure window: {e}")
                evs.append(LinkFailure(*_edge(e.u, e.v), e.start, e.end))
            elif isinstance(e, NodeCrash):
                if e.time < 0:
                    raise FaultError(f"bad crash time: {e}")
                evs.append(e)
            elif isinstance(e, ObjectStall):
                if e.start < 0 or e.end <= e.start:
                    raise FaultError(f"bad stall window: {e}")
                evs.append(e)
            elif isinstance(e, DelaySpike):
                if e.start < 0 or e.end <= e.start or e.factor < 1.0:
                    raise FaultError(f"bad delay spike: {e}")
                evs.append(DelaySpike(*_edge(e.u, e.v), e.start, e.end, e.factor))
            else:
                raise FaultError(f"unknown fault event type: {type(e).__name__}")
        self.events: Tuple[FaultEvent, ...] = tuple(evs)
        self._index: Dict[int, int] = {id(e): i for i, e in enumerate(self.events)}

        self._link_failures: Dict[Edge, List[LinkFailure]] = {}
        self._crashes: Dict[int, NodeCrash] = {}
        self._stalls: Dict[int, List[ObjectStall]] = {}
        self._spikes: Dict[Edge, List[DelaySpike]] = {}
        for e in self.events:
            if isinstance(e, LinkFailure):
                self._link_failures.setdefault((e.u, e.v), []).append(e)
            elif isinstance(e, NodeCrash):
                prev = self._crashes.get(e.node)
                if prev is None or e.time < prev.time:
                    self._crashes[e.node] = e  # earliest crash wins
            elif isinstance(e, ObjectStall):
                self._stalls.setdefault(e.obj, []).append(e)
            elif isinstance(e, DelaySpike):
                self._spikes.setdefault((e.u, e.v), []).append(e)

        if network is not None:
            self.validate_against(network)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate_against(self, network: Network) -> None:
        """Check every event names nodes and links ``network`` really has.

        Raises :class:`FaultError` for a link event on a non-edge or a
        crash of a nonexistent node, so a bad plan fails at construction
        (or at the start of a run) instead of as a mid-run ``KeyError``.
        Object stalls are not checked here -- objects belong to the
        instance, not the network.
        """
        for e in self.events:
            if isinstance(e, (LinkFailure, DelaySpike)):
                if not (0 <= e.u < network.n and 0 <= e.v < network.n):
                    raise FaultError(
                        f"fault event names unknown node: {e.describe()} "
                        f"(network has nodes 0..{network.n - 1})"
                    )
                if not network.has_edge(e.u, e.v):
                    raise FaultError(
                        f"fault event names unknown link: {e.describe()} "
                        f"(no edge ({e.u},{e.v}) in the network)"
                    )
            elif isinstance(e, NodeCrash):
                if not 0 <= e.node < network.n:
                    raise FaultError(
                        f"fault event names unknown node: {e.describe()} "
                        f"(network has nodes 0..{network.n - 1})"
                    )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def is_empty(self) -> bool:
        """True iff the plan injects nothing (the healthy baseline)."""
        return not self.events

    @property
    def latest_time(self) -> int:
        """Last finite time any event starts or ends (0 for the empty plan).

        Permanent failures (``end=None``) contribute their start time.
        Used by runtimes to budget their step guards: past this point the
        fault landscape is static.
        """
        latest = 0
        for e in self.events:
            if isinstance(e, NodeCrash):
                latest = max(latest, e.time)
            elif isinstance(e, LinkFailure):
                latest = max(latest, e.start if e.end is None else e.end)
            else:
                latest = max(latest, e.end)
        return latest

    def index_of(self, event: FaultEvent) -> int:
        """Stable index of ``event`` within the plan (for attribution)."""
        return self._index[id(event)]

    def link_down(self, u: int, v: int, t: float) -> Optional[LinkFailure]:
        """The failure keeping link ``(u, v)`` down at ``t``, or None."""
        for e in self._link_failures.get(_edge(u, v), ()):
            if e.down_at(t):
                return e
        return None

    def down_edges(self, t: float) -> FrozenSet[Edge]:
        """All links down at time ``t``."""
        return frozenset(
            edge
            for edge, evs in self._link_failures.items()
            if any(e.down_at(t) for e in evs)
        )

    def permanent_down_edges(self, t: float) -> FrozenSet[Edge]:
        """Links down at ``t`` that will never repair."""
        return frozenset(
            edge
            for edge, evs in self._link_failures.items()
            if any(e.down_at(t) and e.end is None for e in evs)
        )

    def crash_time(self, node: int) -> Optional[int]:
        """When ``node`` crashes, or None if it survives the run."""
        e = self._crashes.get(node)
        return None if e is None else e.time

    @property
    def crash_events(self) -> Tuple[NodeCrash, ...]:
        """All node crashes (earliest per node), ordered by (time, node)."""
        return tuple(
            sorted(self._crashes.values(), key=lambda e: (e.time, e.node))
        )

    def crash_event(self, node: int) -> Optional[NodeCrash]:
        """The crash event for ``node``, or None."""
        return self._crashes.get(node)

    def stall(self, obj: int, t: float) -> Optional[ObjectStall]:
        """The stall freezing ``obj`` at time ``t``, or None."""
        for e in self._stalls.get(obj, ()):
            if e.stalled_at(t):
                return e
        return None

    def delay_factor(
        self, u: int, v: int, t: float
    ) -> Tuple[float, Optional[DelaySpike]]:
        """Worst delay factor on link ``(u, v)`` at ``t`` and its spike."""
        worst, cause = 1.0, None
        for e in self._spikes.get(_edge(u, v), ()):
            if e.active_at(t) and e.factor > worst:
                worst, cause = e.factor, e
        return worst, cause

    def describe(self, index: int) -> str:
        """Description of the event at ``index``."""
        return self.events[index].describe()

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds: Dict[str, int] = {}
        for e in self.events:
            kinds[type(e).__name__] = kinds.get(type(e).__name__, 0) + 1
        inner = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        return f"FaultPlan({inner})"


def random_fault_plan(
    net: Network,
    horizon: int,
    rng: np.random.Generator,
    intensity: float = 1.0,
    link_rate: float = 0.15,
    crash_rate: float = 0.0,
    stall_rate: float = 0.1,
    spike_rate: float = 0.1,
    permanent_fraction: float = 0.0,
    objects: Iterable[int] = (),
    max_factor: float = 4.0,
) -> FaultPlan:
    """Draw a random fault workload for a run of length ``horizon``.

    Expected event counts scale linearly with ``intensity`` (``0`` yields
    the empty plan): ``link_rate * intensity * num_edges`` link failures,
    ``crash_rate * intensity * n`` node crashes, and so on.  Failure
    windows start uniformly in ``[1, horizon]`` and last a geometric
    ``~horizon/4`` tail; a ``permanent_fraction`` of link failures never
    repair.  Deterministic given ``rng`` -- the E17 experiment keys plans
    by (seed, topology, intensity, trial).
    """
    if intensity < 0:
        raise FaultError(f"intensity must be >= 0, got {intensity}")
    horizon = max(int(horizon), 1)
    events: List[FaultEvent] = []
    edges = [(u, v) for u, v, _ in net.edges()]
    objs = sorted(objects)

    def _count(rate: float, scale: int) -> int:
        return int(rng.poisson(rate * intensity * scale)) if scale else 0

    def _window(min_len: int = 1) -> Tuple[int, int]:
        start = int(rng.integers(1, horizon + 1))
        length = min_len + int(rng.geometric(min(1.0, 4.0 / horizon)))
        return start, start + length

    for _ in range(_count(link_rate, len(edges))):
        u, v = edges[int(rng.integers(len(edges)))]
        start, end = _window()
        if rng.random() < permanent_fraction:
            events.append(LinkFailure(u, v, start, None))
        else:
            events.append(LinkFailure(u, v, start, end))
    for _ in range(_count(crash_rate, net.n)):
        node = int(rng.integers(net.n))
        events.append(NodeCrash(node, int(rng.integers(1, horizon + 1))))
    for _ in range(_count(stall_rate, len(objs))):
        obj = objs[int(rng.integers(len(objs)))]
        start, end = _window()
        events.append(ObjectStall(obj, start, end))
    for _ in range(_count(spike_rate, len(edges))):
        u, v = edges[int(rng.integers(len(edges)))]
        start, end = _window(min_len=2)
        factor = 1.0 + float(rng.random()) * (max_factor - 1.0)
        events.append(DelaySpike(u, v, start, end, factor))
    return FaultPlan(events, network=net)
