"""The long-lived windowed scheduling service.

:class:`SchedulingService` turns the repo's batch machinery into a
continuously running system: an unbounded
:class:`~repro.workloads.streams.ArrivalStream` feeds fixed-length
arrival windows; each window's admitted transactions are batched with
the priority-ordered backlog (window-based greedy contention management
per Sharma/Estrade/Busch, arXiv:1002.4182) and executed by one of two
engines:

* **batch** -- the window is fed through a long-lived
  :class:`~repro.core.incremental.SchedulerSession`
  (``submit`` the batch, ``commit`` it back), so greedy-family
  topologies get the delta-repair engine with distances memoized across
  windows while every other topology transparently keeps its paper
  scheduler -- commit times are bit-identical to the old per-window
  :func:`repro.schedule` rebuild either way;
* **reactive** -- the window runs through the fault-aware
  :func:`~repro.online.run_resilient` runtime, consuming the service's
  :class:`~repro.faults.plan.FaultPlan` slice for that span live (hop
  retries, reroutes, lease recovery).

Robustness around the engines:

* **backpressure** -- high/low-watermark admission with hysteresis:
  ``defer`` (FIFO overflow queue), ``shed`` (typed refusal), or
  ``strict`` (:class:`~repro.errors.OverloadError`);
* **deadlines** -- transactions whose sojourn exceeds the configured
  deadline expire with a typed reason (or raise
  :class:`~repro.errors.DeadlineExpiredError` in strict mode);
* **bounded window retry** -- a window whose execution hits an
  unabsorbable fault returns its batch to the backlog and backs off a
  bounded, deterministic number of windows
  (:class:`~repro.faults.backoff.RetryPolicy`); transactions exceeding
  the budget are dropped with a typed reason, never silently;
* **saturation detection** -- a queue-growth regression
  (:class:`~repro.service.saturation.SaturationDetector`) flips the
  service into shed mode before queues diverge (or raises
  :class:`~repro.errors.SaturationError` in strict mode).

Everything is deterministic given the stream's seed and the plan, and
recording through a :class:`~repro.obs.Recorder` never changes a
decision -- the same bit-parity standard as every other engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.incremental import SchedulerSession
from ..errors import (
    DeadlineExpiredError,
    FaultError,
    OverloadError,
    SaturationError,
    SchedulingError,
    ServiceError,
)
from ..faults.plan import (
    DelaySpike,
    FaultPlan,
    LinkFailure,
    NodeCrash,
    ObjectStall,
)
from ..obs import events as obs_events
from ..obs.recorder import Recorder, active
from ..online.arrivals import OnlineWorkload, TimedTransaction
from ..online.resilient import run_resilient
from ..workloads.streams import ArrivalStream
from .config import ServiceConfig
from .report import ServiceReport
from .saturation import SaturationDetector

__all__ = ["SchedulingService", "run_service"]


class _Entry:
    """One queued transaction: payload, release, and retry bookkeeping."""

    __slots__ = ("txn", "release", "attempts", "eligible_window")

    def __init__(self, txn, release: int) -> None:
        self.txn = txn
        self.release = release
        self.attempts = 0  # failed-window count (bounded by RetryPolicy)
        self.eligible_window = 0  # earliest window this entry may batch in

    @property
    def priority(self) -> Tuple[int, int]:
        """Timestamp priority: older releases win, tid breaks ties."""
        return (self.release, self.txn.tid)


def _percentile(sorted_values: List[int], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 1)))  # ceil
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


class SchedulingService:
    """A continuously running windowed scheduler over an arrival stream.

    Parameters
    ----------
    stream:
        The arrival process; its network and object homes define the
        service's world.  Finite streams (``limit`` set) let
        :meth:`run` drain to empty; unbounded streams require an
        explicit window count.
    config:
        Robustness policies (defaults: 16-step windows, defer
        backpressure at high-water 64, no deadlines, shed on
        saturation).
    plan:
        Optional live :class:`~repro.faults.plan.FaultPlan` on the
        service's global clock; forces the reactive engine under
        ``engine="auto"``.
    rng:
        Randomness for randomized batch schedulers (cluster/star);
        defaults to a fixed-seed generator so the service is
        deterministic out of the box.
    recorder:
        Optional observability sink; strictly passive.
    """

    def __init__(
        self,
        stream: ArrivalStream,
        config: ServiceConfig | None = None,
        plan: FaultPlan | None = None,
        rng: np.random.Generator | None = None,
        recorder: Recorder | None = None,
    ) -> None:
        self.stream = stream
        self.config = config or ServiceConfig()
        self.plan = plan
        if self.config.engine == "batch" and plan is not None:
            raise ServiceError(
                "the batch engine does not consume fault plans; use "
                "engine='reactive' (or 'auto') to inject faults"
            )
        self.engine = (
            self.config.engine
            if self.config.engine != "auto"
            else ("reactive" if plan is not None else "batch")
        )
        if plan is not None:
            plan.validate_against(stream.network)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._rec = active(recorder)
        # the batch engine drives a long-lived scheduler session instead
        # of rebuilding per window: greedy-family topologies get the
        # delta-repair engine (identical schedules, memoized distances),
        # other topologies transparently keep their paper scheduler
        self._session: SchedulerSession | None = None
        if self.engine == "batch":
            self._session = SchedulerSession(
                stream.network,
                algo=self.config.algo,
                kernel=self.config.kernel,
                mode="auto",
                object_homes=dict(stream.object_homes),
                home_policy="static",
                rng=self._rng,
                recorder=recorder,
            )
        self.detector = SaturationDetector(
            horizon=self.config.detector_horizon,
            slope_threshold=self.config.slope_threshold,
            min_backlog=self.config.effective_min_backlog,
        )
        # queues and gate
        self._backlog: List[_Entry] = []
        self._deferred: List[_Entry] = []
        self._gate_open = True
        # fault bookkeeping that outlives windows
        self._dead: set[int] = set()
        self._unrecoverable: set[int] = set()
        self._crash_cursor = 0
        self._crash_seq: Tuple[NodeCrash, ...] = (
            plan.crash_events if plan is not None else ()
        )
        # accounting
        self._windows_run = 0
        self._released = 0
        self._admitted = 0
        self._commits: Dict[int, int] = {}  # tid -> global commit time
        self._sojourns: List[int] = []
        self._shed: List[Tuple[int, str]] = []
        self._expired: List[Tuple[int, str]] = []
        self._lost: List[Tuple[int, str]] = []
        self._deferred_admissions = 0
        self._window_retries = 0
        self._backlog_curve: List[int] = []
        self._shed_windows = 0
        self._busy_until = 0
        self._busy = 0

    # ------------------------------------------------------------------ #
    # queue state
    # ------------------------------------------------------------------ #

    @property
    def queue_length(self) -> int:
        """Backlog plus the deferred overflow queue -- the measured queue."""
        return len(self._backlog) + len(self._deferred)

    @property
    def windows_run(self) -> int:
        """Arrival windows processed so far (the next window's index)."""
        return self._windows_run

    @property
    def dead_nodes(self) -> frozenset[int]:
        """Nodes whose compute plane has crashed so far."""
        return frozenset(self._dead)

    def _shedding(self) -> bool:
        """True while the saturation detector forces shed mode."""
        return self.detector.saturated and self.config.on_saturation == "shed"

    def _update_gate(self) -> None:
        """Watermark hysteresis on the pending backlog."""
        if self._gate_open:
            if len(self._backlog) >= self.config.high_water:
                self._gate_open = False
        elif len(self._backlog) < self.config.effective_low_water:
            self._gate_open = True

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _lose(self, tid: int, reason: str, now: int) -> None:
        self._lost.append((tid, reason))
        if self._rec.enabled:
            self._rec.record(obs_events.LostEvent(now, tid, reason))
            self._rec.count("service.lost")

    def _admit(self, entry: _Entry, now: int, window_index: int) -> None:
        """Route one release through the backpressure gate."""
        txn = entry.txn
        if txn.node in self._dead:
            self._lose(txn.tid, f"node {txn.node} crashed", now)
            return
        gone = set(txn.objects) & self._unrecoverable
        if gone:
            self._lose(txn.tid, f"objects {sorted(gone)} unrecoverable", now)
            return
        self._update_gate()
        policy = "shed" if self._shedding() else self.config.admission
        if self._gate_open:
            entry.eligible_window = max(entry.eligible_window, window_index)
            self._backlog.append(entry)
            self._admitted += 1
            if self._rec.enabled:
                self._rec.record(obs_events.AdmissionEvent(
                    now, txn.tid, "admit", len(self._backlog)))
                self._rec.count("service.admitted")
            return
        if policy == "strict":
            raise OverloadError(
                f"window {window_index}: release of transaction {txn.tid} "
                f"with backlog {len(self._backlog)} >= high-water "
                f"{self.config.high_water}"
            )
        if policy == "shed":
            self._shed.append((
                txn.tid,
                f"backlog {len(self._backlog)} >= high-water "
                f"{self.config.high_water} at window {window_index}",
            ))
            if self._rec.enabled:
                self._rec.record(obs_events.AdmissionEvent(
                    now, txn.tid, "shed", len(self._backlog)))
                self._rec.count("service.shed")
            return
        self._deferred.append(entry)
        self._deferred_admissions += 1
        if self._rec.enabled:
            self._rec.record(obs_events.AdmissionEvent(
                now, txn.tid, "defer", len(self._backlog)))
            self._rec.count("service.deferred")

    def _expire(self, now: int) -> None:
        """Drop (or raise on) queued transactions past their deadline."""
        deadline = self.config.deadline
        if deadline is None:
            return
        for queue in (self._backlog, self._deferred):
            keep: List[_Entry] = []
            for e in queue:
                if now - e.release > deadline:
                    reason = (
                        f"deadline expired: sojourn {now - e.release} > "
                        f"{deadline} steps"
                    )
                    if self.config.on_expiry == "strict":
                        raise DeadlineExpiredError(
                            f"transaction {e.txn.tid}: {reason}"
                        )
                    self._expired.append((e.txn.tid, reason))
                    if self._rec.enabled:
                        self._rec.record(
                            obs_events.LostEvent(now, e.txn.tid, reason))
                        self._rec.count("service.expired")
                else:
                    keep.append(e)
            queue[:] = keep

    # ------------------------------------------------------------------ #
    # fault-plan slicing
    # ------------------------------------------------------------------ #

    def _mark_crashes(self, span_end: int) -> List[NodeCrash]:
        """Consume global crashes up to ``span_end``; update dead sets."""
        fired: List[NodeCrash] = []
        while (
            self._crash_cursor < len(self._crash_seq)
            and self._crash_seq[self._crash_cursor].time < span_end
        ):
            ev = self._crash_seq[self._crash_cursor]
            self._crash_cursor += 1
            if ev.node not in self._dead:
                self._dead.add(ev.node)
                fired.append(ev)
        for obj, home in sorted(self.stream.object_homes.items()):
            if home in self._dead:
                self._unrecoverable.add(obj)
        return fired

    def _window_plan(
        self, exec_start: int, crashes: List[NodeCrash]
    ) -> FaultPlan:
        """The plan's slice for one window, shifted to window-local time.

        Windowed events (failures, stalls, spikes) that overlap
        ``[exec_start, exec_start + window)`` are clamped and shifted so
        the window's runtime sees them live; an event overrunning the
        window simply reappears in the next slice.  ``crashes`` are the
        global crash events this window consumes (fired once each).
        """
        if self.plan is None:
            return FaultPlan()
        span_end = exec_start + self.config.window
        events: List[object] = []
        for e in self.plan.events:
            if isinstance(e, NodeCrash):
                continue  # handled via the global crash cursor
            end = e.end
            if e.start >= span_end or (end is not None and end <= exec_start):
                continue
            rel_start = max(1, e.start - exec_start)
            rel_end = None if end is None else end - exec_start
            if rel_end is not None and rel_end <= rel_start:
                continue
            if isinstance(e, LinkFailure):
                events.append(LinkFailure(e.u, e.v, rel_start, rel_end))
            elif isinstance(e, ObjectStall):
                events.append(ObjectStall(e.obj, rel_start, rel_end))
            elif isinstance(e, DelaySpike):
                events.append(
                    DelaySpike(e.u, e.v, rel_start, rel_end, e.factor))
        for ev in crashes:
            events.append(NodeCrash(ev.node, max(1, ev.time - exec_start)))
        return FaultPlan(events)

    # ------------------------------------------------------------------ #
    # window execution
    # ------------------------------------------------------------------ #

    def _build_batch(self, window_index: int) -> List[_Entry]:
        """Highest-priority eligible entries on distinct nodes."""
        taken_nodes: set[int] = set()
        batch: List[_Entry] = []
        remaining: List[_Entry] = []
        for e in sorted(self._backlog, key=lambda e: e.priority):
            if (
                e.eligible_window <= window_index
                and e.txn.node not in taken_nodes
            ):
                taken_nodes.add(e.txn.node)
                batch.append(e)
            else:
                remaining.append(e)
        self._backlog = remaining
        return batch

    def _requeue_failed(
        self, batch: List[_Entry], window_index: int, now: int
    ) -> None:
        """Return a failed window's batch with bounded backoff."""
        policy = self.config.retry
        for e in batch:
            e.attempts += 1
            if e.attempts > policy.max_retries:
                self._lose(
                    e.txn.tid,
                    f"window retry budget exhausted "
                    f"({policy.max_retries} failed windows)",
                    now,
                )
                continue
            e.eligible_window = window_index + 1 + policy.wait(e.attempts)
            self._window_retries += 1
            self._backlog.append(e)
            if self._rec.enabled:
                self._rec.count("service.window_retries")
                self._rec.observe(
                    "service.retry_backoff", policy.wait(e.attempts))

    def _record_commit(self, entry: _Entry, global_time: int) -> None:
        self._commits[entry.txn.tid] = global_time
        self._sojourns.append(global_time - entry.release)
        if self._rec.enabled:
            self._rec.record(obs_events.CommitEvent(
                global_time, entry.txn.tid, entry.txn.node,
                tuple(sorted(entry.txn.objects))))
            self._rec.count("service.commits")
            self._rec.observe("service.sojourn", global_time - entry.release)

    def _homes_for(self, batch: List[_Entry]) -> Dict[int, int]:
        needed: set[int] = set()
        for e in batch:
            needed |= set(e.txn.objects)
        return {o: self.stream.object_homes[o] for o in sorted(needed)}

    def _execute_batch(
        self, batch: List[_Entry], exec_start: int, window_index: int
    ) -> None:
        """Run one window's batch; commits, losses, and busy accounting."""
        by_tid = {e.txn.tid: e for e in batch}
        if self.engine == "batch":
            assert self._session is not None
            times, makespan = self._session.run_epoch(
                [e.txn for e in batch]
            )
            for tid, ct in sorted(times.items()):
                self._record_commit(by_tid[tid], exec_start + ct)
            self._busy_until = exec_start + makespan
            self._busy += makespan
            return
        # reactive: live fault consumption via run_resilient
        crashes = self._mark_crashes(exec_start + self.config.window)
        window_plan = self._window_plan(exec_start, crashes)
        workload = OnlineWorkload(
            self.stream.network,
            [TimedTransaction(release=0, txn=e.txn) for e in batch],
            self._homes_for(batch),
        )
        try:
            res = run_resilient(
                workload, window_plan, policy=self.config.retry,
                recorder=self._rec if self._rec.enabled else None,
            )
        except FaultError:
            # unabsorbable fault: burn the window, back off, retry bounded
            self._requeue_failed(batch, window_index, exec_start)
            self._busy_until = exec_start + self.config.window
            self._busy += self.config.window
            return
        for tid, ct in sorted(res.commits.items()):
            self._record_commit(by_tid[tid], exec_start + ct)
        for tid, reason in res.report.lost:
            self._lose(tid, reason, exec_start)
        makespan = max(res.commits.values(), default=0)
        self._busy_until = exec_start + makespan
        self._busy += makespan

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    def run_window(self, window_index: int) -> None:
        """Process one arrival window end to end (advances all state)."""
        w = self.config.window
        arrival_start, arrival_end = window_index * w, (window_index + 1) * w
        exec_start = max(arrival_end, self._busy_until)
        arrivals = self.stream.window(arrival_start, arrival_end)
        self._released += len(arrivals)
        # consume crashes the arrival clock has reached even when no
        # batch runs this window (the node is dead either way)
        self._mark_crashes(arrival_end)
        # deferred releases re-apply first (FIFO), then new arrivals
        deferred, self._deferred = self._deferred, []
        for entry in deferred:
            self._admit(entry, exec_start, window_index)
        for timed in arrivals:
            self._admit(_Entry(timed.txn, timed.release), exec_start,
                        window_index)
        self._expire(exec_start)
        batch = self._build_batch(window_index)
        if batch:
            self._execute_batch(batch, exec_start, window_index)
        queue = self.queue_length
        self._backlog_curve.append(queue)
        was_saturated = self.detector.saturated
        self.detector.observe(queue)
        if self.detector.saturated:
            self._shed_windows += 1
            if not was_saturated and self.config.on_saturation == "strict":
                raise SaturationError(
                    f"window {window_index}: backlog {queue} growing at "
                    f"slope {self.detector.slope():.3f} > threshold "
                    f"{self.config.slope_threshold} over the last "
                    f"{self.config.detector_horizon} windows"
                )
        self._windows_run += 1
        if self._rec.enabled:
            self._rec.count("service.windows")
            self._rec.gauge("service.backlog", queue)

    def run(
        self,
        windows: Optional[int] = None,
        max_windows: int = 100_000,
    ) -> ServiceReport:
        """Run ``windows`` arrival windows (or drain a finite stream).

        With ``windows=None`` the stream must be finite (``limit`` set);
        the service then runs until the stream is exhausted and every
        queue is empty, guarded by ``max_windows`` against a configured
        livelock (e.g. a retry loop that can never drain).
        """
        if windows is None and self.stream.limit is None:
            raise ServiceError(
                "an unbounded stream needs an explicit window count; "
                "pass windows=N or give the stream a limit"
            )
        if windows is not None and windows < 1:
            raise ServiceError(f"windows must be >= 1, got {windows}")
        start = self._windows_run
        while True:
            idx = self._windows_run
            if windows is not None:
                if idx - start >= windows:
                    break
            elif self.stream.exhausted and self.queue_length == 0:
                break
            if idx - start >= max_windows:
                raise SchedulingError(
                    f"service exceeded {max_windows} windows without "
                    f"draining ({self.queue_length} queued)"
                )
            self.run_window(idx)
        return self.report()

    # ------------------------------------------------------------------ #
    # checkpointing (cluster worker recovery)
    # ------------------------------------------------------------------ #

    def accounting(self) -> Dict[str, int]:
        """The conservation counters at the current window boundary.

        ``committed + shed + expired + lost + backlog == released`` holds
        at every boundary; the cluster journal stores this dict (plus its
        digest) per window, and the supervisor sums it across workers.
        """
        return {
            "released": self._released,
            "committed": len(self._commits),
            "shed": len(self._shed),
            "expired": len(self._expired),
            "lost": len(self._lost),
            "backlog": self.queue_length,
        }

    def sojourn_samples(self) -> List[int]:
        """All commit sojourns so far, ascending (for cluster-wide stats)."""
        return sorted(self._sojourns)

    @staticmethod
    def _entry_state(e: _Entry) -> Dict[str, object]:
        return {
            "tid": e.txn.tid,
            "node": e.txn.node,
            "objects": sorted(e.txn.objects),
            "release": e.release,
            "attempts": e.attempts,
            "eligible_window": e.eligible_window,
        }

    @staticmethod
    def _entry_from_state(state: Dict[str, object]) -> _Entry:
        from ..core.transaction import Transaction

        entry = _Entry(
            Transaction(state["tid"], state["node"], state["objects"]),
            int(state["release"]),  # type: ignore[arg-type]
        )
        entry.attempts = int(state["attempts"])  # type: ignore[arg-type]
        entry.eligible_window = int(state["eligible_window"])  # type: ignore[arg-type]
        return entry

    def snapshot_state(self) -> Dict[str, object]:
        """JSON-safe snapshot of the service's full mutable state.

        Together with :meth:`restore_state` this is the cluster worker's
        checkpoint: a service constructed with the same stream spec,
        config, and plan, then fed this snapshot, continues bit-for-bit
        identically (same commits, same report).  Valid only at a window
        boundary (never mid-``run_window``).
        """
        return {
            "stream": self.stream.state_dict(),
            "rng": self._rng.bit_generator.state,
            "backlog": [self._entry_state(e) for e in self._backlog],
            "deferred": [self._entry_state(e) for e in self._deferred],
            "gate_open": self._gate_open,
            "dead": sorted(self._dead),
            "unrecoverable": sorted(self._unrecoverable),
            "crash_cursor": self._crash_cursor,
            "windows_run": self._windows_run,
            "released": self._released,
            "admitted": self._admitted,
            "commits": {str(t): c for t, c in self._commits.items()},
            "sojourns": list(self._sojourns),
            "shed": [[t, r] for t, r in self._shed],
            "expired": [[t, r] for t, r in self._expired],
            "lost": [[t, r] for t, r in self._lost],
            "deferred_admissions": self._deferred_admissions,
            "window_retries": self._window_retries,
            "backlog_curve": list(self._backlog_curve),
            "shed_windows": self._shed_windows,
            "busy_until": self._busy_until,
            "busy": self._busy,
            "detector": self.detector.state_dict(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`snapshot_state`.

        The service must be freshly constructed from the same stream
        spec, config, and plan as the snapshotting one; raises
        :class:`~repro.errors.ServiceError` if windows have already run.
        """
        if self._windows_run or self._released:
            raise ServiceError(
                "restore_state() needs a fresh service; this one has "
                f"already run {self._windows_run} windows"
            )
        self.stream.load_state(state["stream"])  # type: ignore[arg-type]
        self._rng.bit_generator.state = state["rng"]
        self._backlog = [self._entry_from_state(s) for s in state["backlog"]]  # type: ignore[union-attr]
        self._deferred = [self._entry_from_state(s) for s in state["deferred"]]  # type: ignore[union-attr]
        self._gate_open = bool(state["gate_open"])
        self._dead = {int(n) for n in state["dead"]}  # type: ignore[union-attr]
        self._unrecoverable = {int(o) for o in state["unrecoverable"]}  # type: ignore[union-attr]
        self._crash_cursor = int(state["crash_cursor"])  # type: ignore[arg-type]
        self._windows_run = int(state["windows_run"])  # type: ignore[arg-type]
        self._released = int(state["released"])  # type: ignore[arg-type]
        self._admitted = int(state["admitted"])  # type: ignore[arg-type]
        self._commits = {
            int(t): int(c) for t, c in state["commits"].items()  # type: ignore[union-attr]
        }
        self._sojourns = [int(s) for s in state["sojourns"]]  # type: ignore[union-attr]
        self._shed = [(int(t), str(r)) for t, r in state["shed"]]  # type: ignore[union-attr]
        self._expired = [(int(t), str(r)) for t, r in state["expired"]]  # type: ignore[union-attr]
        self._lost = [(int(t), str(r)) for t, r in state["lost"]]  # type: ignore[union-attr]
        self._deferred_admissions = int(state["deferred_admissions"])  # type: ignore[arg-type]
        self._window_retries = int(state["window_retries"])  # type: ignore[arg-type]
        self._backlog_curve = [int(q) for q in state["backlog_curve"]]  # type: ignore[union-attr]
        self._shed_windows = int(state["shed_windows"])  # type: ignore[arg-type]
        self._busy_until = int(state["busy_until"])  # type: ignore[arg-type]
        self._busy = int(state["busy"])  # type: ignore[arg-type]
        self.detector.load_state(state["detector"])  # type: ignore[arg-type]

    def skip_to_window(self, window_index: int) -> None:
        """Start a fresh service at ``window_index`` instead of 0.

        Used by cluster replacement workers taking over a retired
        worker's shard mid-run: the underlying stream must already have
        been advanced to step ``window_index * window`` (drawing -- and
        discarding -- the unowned prefix keeps the generator aligned).
        Raises :class:`~repro.errors.ServiceError` on a service that has
        already run or admitted anything.
        """
        if self._windows_run or self._released or self.queue_length:
            raise ServiceError(
                "skip_to_window() needs a fresh service; this one has "
                f"already run {self._windows_run} windows"
            )
        if window_index < 0:
            raise ServiceError(
                f"window_index must be >= 0, got {window_index}"
            )
        self._windows_run = window_index
        self._busy_until = window_index * self.config.window

    def report(self) -> ServiceReport:
        """The run's :class:`ServiceReport` (valid at any window boundary)."""
        sojourns = sorted(self._sojourns)
        elapsed = max(self._busy_until, self._windows_run * self.config.window)
        return ServiceReport(
            windows=self._windows_run,
            window_len=self.config.window,
            engine=self.engine,
            released=self._released,
            admitted=self._admitted,
            committed=len(self._commits),
            shed=len(self._shed),
            expired=len(self._expired),
            lost=len(self._lost),
            deferred_admissions=self._deferred_admissions,
            window_retries=self._window_retries,
            fault_count=len(self.plan) if self.plan is not None else 0,
            peak_backlog=max(self._backlog_curve, default=0),
            final_backlog=self.queue_length,
            backlog_curve=tuple(self._backlog_curve),
            sojourn_p50=_percentile(sojourns, 0.50),
            sojourn_p99=_percentile(sojourns, 0.99),
            sojourn_mean=(
                sum(sojourns) / len(sojourns) if sojourns else 0.0
            ),
            sojourn_max=max(sojourns, default=0),
            elapsed=elapsed,
            busy=self._busy,
            saturated_at=self.detector.tripped_at,
            shed_windows=self._shed_windows,
            detector_trips=self.detector.trips,
            final_slope=self.detector.slope(),
        )


def run_service(
    stream: ArrivalStream,
    windows: Optional[int] = None,
    config: ServiceConfig | None = None,
    plan: FaultPlan | None = None,
    rng: np.random.Generator | None = None,
    recorder: Recorder | None = None,
) -> ServiceReport:
    """One-call convenience: build a service, run it, return the report."""
    return SchedulingService(
        stream, config=config, plan=plan, rng=rng, recorder=recorder
    ).run(windows)
