"""Service configuration: one validated knob set for the whole loop.

:class:`LoadControl` is the *shared* load-management vocabulary --
window length, backpressure watermarks, admission policy, and the
bounded retry budget -- consumed by both the in-process service
(:class:`ServiceConfig`) and the multi-process cluster
(:class:`~repro.cluster.ClusterConfig`).  Before 1.1.0 the two configs
spelled the same knobs differently (``policy`` vs crash policies,
``retry`` vs ``restart``); the old spellings are still accepted for one
release with a :class:`DeprecationWarning`, and conflicting old/new
spellings are a hard error rather than a silent pick.

:class:`ServiceConfig` bundles every robustness policy the service
applies -- window length, backpressure watermarks and admission policy,
per-transaction deadlines, the bounded retry policy for failed windows,
and the saturation detector's regression parameters.  Validation happens
at construction so a bad configuration fails before the first window,
not three thousand windows in.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ServiceError
from ..faults.backoff import RetryPolicy

__all__ = ["LoadControl", "ServiceConfig"]

_ADMISSION_POLICIES = ("defer", "shed", "strict")
_EXPIRY_POLICIES = ("drop", "strict")
_SATURATION_POLICIES = ("shed", "strict")
_ENGINES = ("auto", "batch", "reactive")


@dataclass(frozen=True)
class LoadControl:
    """Shared load-management knobs for the service and the cluster.

    Parameters
    ----------
    window:
        Arrival-window length in time steps.
    high_water / low_water:
        Backpressure watermarks on the backlog.  Admission closes when
        the backlog reaches ``high_water`` and -- hysteresis -- reopens
        only once it drains below ``low_water`` (default
        ``high_water // 2``).
    admission:
        What a closed gate does with a release: ``"defer"`` queues it
        FIFO (nothing lost), ``"shed"`` refuses it permanently with a
        typed reason, ``"strict"`` raises
        :class:`~repro.errors.OverloadError`.
    retry:
        The bounded deterministic :class:`~repro.faults.backoff.RetryPolicy`
        budget -- window retries in the service, worker restarts in the
        cluster.
    """

    window: int = 16
    high_water: int = 64
    low_water: Optional[int] = None
    admission: str = "defer"
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ServiceError(f"window must be >= 1, got {self.window}")
        if self.high_water < 1:
            raise ServiceError(
                f"high_water must be >= 1, got {self.high_water}"
            )
        if self.low_water is not None and not (
            0 <= self.low_water <= self.high_water
        ):
            raise ServiceError(
                f"low_water must be in [0, high_water], got {self.low_water}"
            )
        if self.admission not in _ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {self.admission!r}; choose from "
                f"{_ADMISSION_POLICIES}"
            )


@dataclass(frozen=True)
class ServiceConfig:
    """Validated configuration for :class:`~repro.service.SchedulingService`.

    The load-management quartet (``window``, ``high_water`` /
    ``low_water``, ``admission``, ``retry``) can be supplied directly,
    or once through a shared :class:`LoadControl` via ``control=`` (the
    same object a :class:`~repro.cluster.ClusterConfig` consumes);
    explicitly passed fields win over the control's.

    Parameters
    ----------
    window:
        Arrival-window length in time steps; each window's arrivals are
        batched and scheduled together.
    high_water / low_water:
        Backpressure watermarks on the backlog (pending + deferred).
        Admission closes when the backlog reaches ``high_water`` and --
        hysteresis -- reopens only once it drains below ``low_water``
        (default ``high_water // 2``).
    admission:
        What a closed gate does with a release: ``"defer"`` queues it
        FIFO (nothing lost), ``"shed"`` refuses it permanently with a
        typed reason, ``"strict"`` raises
        :class:`~repro.errors.OverloadError`.  (``policy=`` is the
        pre-1.1.0 spelling: accepted with a :class:`DeprecationWarning`
        for one release, removal scheduled for 1.2.0.)
    deadline:
        Optional max sojourn (steps since release) before a waiting
        transaction expires; ``None`` disables expiry.
    on_expiry:
        ``"drop"`` counts the expiry in the report; ``"strict"`` raises
        :class:`~repro.errors.DeadlineExpiredError`.
    retry:
        Bounded deterministic backoff applied both *inside* windows (hop
        retries in the reactive engine) and *across* windows: a window
        whose execution hits an unabsorbable fault returns its batch to
        the backlog and backs off ``retry.wait(attempt)`` windows; a
        transaction exceeding ``retry.max_retries`` failed windows is
        dropped with a typed reason.
    detector_horizon / slope_threshold / min_backlog:
        The saturation detector's sliding regression: over the last
        ``detector_horizon`` windows, a backlog-growth slope above
        ``slope_threshold`` (transactions per window) with the backlog at
        or above ``min_backlog`` (default ``high_water // 2``) declares
        saturation.
    on_saturation:
        ``"shed"`` flips the service into load-shedding mode until the
        backlog drains; ``"strict"`` raises
        :class:`~repro.errors.SaturationError`.
    engine:
        ``"batch"`` feeds each window through the long-lived
        :class:`~repro.core.incremental.SchedulerSession`;
        ``"reactive"`` drives each window through the fault-aware
        :func:`~repro.online.run_resilient` runtime; ``"auto"`` (default)
        picks ``batch`` for fault-free service and ``reactive`` once a
        fault plan is attached.
    algo / kernel:
        Forwarded to the scheduler session by the batch engine.
    control:
        Optional shared :class:`LoadControl` supplying the
        load-management fields not explicitly set.
    """

    window: Optional[int] = None
    high_water: Optional[int] = None
    low_water: Optional[int] = None
    policy: Optional[str] = None  # deprecated alias for ``admission``
    deadline: Optional[int] = None
    on_expiry: str = "drop"
    retry: Optional[RetryPolicy] = None
    detector_horizon: int = 8
    slope_threshold: float = 0.5
    min_backlog: Optional[int] = None
    on_saturation: str = "shed"
    engine: str = "auto"
    algo: str = "auto"
    kernel: str = "auto"
    admission: Optional[str] = None
    control: Optional[LoadControl] = None

    def __post_init__(self) -> None:
        control = self.control if self.control is not None else LoadControl()
        admission = self.admission
        if self.policy is not None:
            if admission is None:
                warnings.warn(
                    "ServiceConfig(policy=...) is deprecated since 1.1.0 "
                    "and will be removed in 1.2.0; use admission=... (or a "
                    "shared LoadControl)",
                    DeprecationWarning,
                    stacklevel=3,
                )
                admission = self.policy
            elif self.policy != admission:
                raise ServiceError(
                    f"conflicting admission settings: policy={self.policy!r} "
                    f"(deprecated alias) vs admission={admission!r}"
                )
        if admission is None:
            admission = control.admission
        object.__setattr__(self, "admission", admission)
        object.__setattr__(self, "policy", admission)  # alias stays readable
        if self.window is None:
            object.__setattr__(self, "window", control.window)
        if self.high_water is None:
            object.__setattr__(self, "high_water", control.high_water)
        if self.low_water is None:
            object.__setattr__(self, "low_water", control.low_water)
        if self.retry is None:
            object.__setattr__(self, "retry", control.retry)
        if self.window < 1:
            raise ServiceError(f"window must be >= 1, got {self.window}")
        if self.high_water < 1:
            raise ServiceError(
                f"high_water must be >= 1, got {self.high_water}"
            )
        if self.low_water is not None and not (
            0 <= self.low_water <= self.high_water
        ):
            raise ServiceError(
                f"low_water must be in [0, high_water], got {self.low_water}"
            )
        if self.admission not in _ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {self.admission!r}; choose from "
                f"{_ADMISSION_POLICIES}"
            )
        if self.deadline is not None and self.deadline < 1:
            raise ServiceError(
                f"deadline must be >= 1 steps, got {self.deadline}"
            )
        if self.on_expiry not in _EXPIRY_POLICIES:
            raise ServiceError(
                f"unknown expiry policy {self.on_expiry!r}; choose from "
                f"{_EXPIRY_POLICIES}"
            )
        if self.detector_horizon < 2:
            raise ServiceError(
                f"detector_horizon must be >= 2, got {self.detector_horizon}"
            )
        if self.slope_threshold <= 0:
            raise ServiceError(
                f"slope_threshold must be positive, got "
                f"{self.slope_threshold}"
            )
        if self.min_backlog is not None and self.min_backlog < 1:
            raise ServiceError(
                f"min_backlog must be >= 1, got {self.min_backlog}"
            )
        if self.on_saturation not in _SATURATION_POLICIES:
            raise ServiceError(
                f"unknown saturation policy {self.on_saturation!r}; choose "
                f"from {_SATURATION_POLICIES}"
            )
        if self.engine not in _ENGINES:
            raise ServiceError(
                f"unknown engine {self.engine!r}; choose from {_ENGINES}"
            )

    @property
    def effective_low_water(self) -> int:
        """The hysteresis reopen mark (``low_water`` or half the high)."""
        return (
            self.low_water if self.low_water is not None
            else self.high_water // 2
        )

    @property
    def effective_min_backlog(self) -> int:
        """The detector's arming floor (``min_backlog`` or half the high)."""
        return (
            self.min_backlog if self.min_backlog is not None
            else max(1, self.high_water // 2)
        )
