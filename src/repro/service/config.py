"""Service configuration: one validated knob set for the whole loop.

:class:`ServiceConfig` bundles every robustness policy the service
applies -- window length, backpressure watermarks and admission policy,
per-transaction deadlines, the bounded retry policy for failed windows,
and the saturation detector's regression parameters.  Validation happens
at construction so a bad configuration fails before the first window,
not three thousand windows in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ServiceError
from ..faults.backoff import RetryPolicy

__all__ = ["ServiceConfig"]

_ADMISSION_POLICIES = ("defer", "shed", "strict")
_EXPIRY_POLICIES = ("drop", "strict")
_SATURATION_POLICIES = ("shed", "strict")
_ENGINES = ("auto", "batch", "reactive")


@dataclass(frozen=True)
class ServiceConfig:
    """Validated configuration for :class:`~repro.service.SchedulingService`.

    Parameters
    ----------
    window:
        Arrival-window length in time steps; each window's arrivals are
        batched and scheduled together.
    high_water / low_water:
        Backpressure watermarks on the backlog (pending + deferred).
        Admission closes when the backlog reaches ``high_water`` and --
        hysteresis -- reopens only once it drains below ``low_water``
        (default ``high_water // 2``).
    policy:
        What a closed gate does with a release: ``"defer"`` queues it
        FIFO (nothing lost), ``"shed"`` refuses it permanently with a
        typed reason, ``"strict"`` raises
        :class:`~repro.errors.OverloadError`.
    deadline:
        Optional max sojourn (steps since release) before a waiting
        transaction expires; ``None`` disables expiry.
    on_expiry:
        ``"drop"`` counts the expiry in the report; ``"strict"`` raises
        :class:`~repro.errors.DeadlineExpiredError`.
    retry:
        Bounded deterministic backoff applied both *inside* windows (hop
        retries in the reactive engine) and *across* windows: a window
        whose execution hits an unabsorbable fault returns its batch to
        the backlog and backs off ``retry.wait(attempt)`` windows; a
        transaction exceeding ``retry.max_retries`` failed windows is
        dropped with a typed reason.
    detector_horizon / slope_threshold / min_backlog:
        The saturation detector's sliding regression: over the last
        ``detector_horizon`` windows, a backlog-growth slope above
        ``slope_threshold`` (transactions per window) with the backlog at
        or above ``min_backlog`` (default ``high_water // 2``) declares
        saturation.
    on_saturation:
        ``"shed"`` flips the service into load-shedding mode until the
        backlog drains; ``"strict"`` raises
        :class:`~repro.errors.SaturationError`.
    engine:
        ``"batch"`` schedules each window through the
        :func:`repro.schedule` facade and replays it; ``"reactive"``
        drives each window through the fault-aware
        :func:`~repro.online.run_resilient` runtime; ``"auto"`` (default)
        picks ``batch`` for fault-free service and ``reactive`` once a
        fault plan is attached.
    algo / kernel:
        Forwarded to :func:`repro.schedule` by the batch engine.
    """

    window: int = 16
    high_water: int = 64
    low_water: Optional[int] = None
    policy: str = "defer"
    deadline: Optional[int] = None
    on_expiry: str = "drop"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    detector_horizon: int = 8
    slope_threshold: float = 0.5
    min_backlog: Optional[int] = None
    on_saturation: str = "shed"
    engine: str = "auto"
    algo: str = "auto"
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ServiceError(f"window must be >= 1, got {self.window}")
        if self.high_water < 1:
            raise ServiceError(
                f"high_water must be >= 1, got {self.high_water}"
            )
        if self.low_water is not None and not (
            0 <= self.low_water <= self.high_water
        ):
            raise ServiceError(
                f"low_water must be in [0, high_water], got {self.low_water}"
            )
        if self.policy not in _ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {self.policy!r}; choose from "
                f"{_ADMISSION_POLICIES}"
            )
        if self.deadline is not None and self.deadline < 1:
            raise ServiceError(
                f"deadline must be >= 1 steps, got {self.deadline}"
            )
        if self.on_expiry not in _EXPIRY_POLICIES:
            raise ServiceError(
                f"unknown expiry policy {self.on_expiry!r}; choose from "
                f"{_EXPIRY_POLICIES}"
            )
        if self.detector_horizon < 2:
            raise ServiceError(
                f"detector_horizon must be >= 2, got {self.detector_horizon}"
            )
        if self.slope_threshold <= 0:
            raise ServiceError(
                f"slope_threshold must be positive, got "
                f"{self.slope_threshold}"
            )
        if self.min_backlog is not None and self.min_backlog < 1:
            raise ServiceError(
                f"min_backlog must be >= 1, got {self.min_backlog}"
            )
        if self.on_saturation not in _SATURATION_POLICIES:
            raise ServiceError(
                f"unknown saturation policy {self.on_saturation!r}; choose "
                f"from {_SATURATION_POLICIES}"
            )
        if self.engine not in _ENGINES:
            raise ServiceError(
                f"unknown engine {self.engine!r}; choose from {_ENGINES}"
            )

    @property
    def effective_low_water(self) -> int:
        """The hysteresis reopen mark (``low_water`` or half the high)."""
        return (
            self.low_water if self.low_water is not None
            else self.high_water // 2
        )

    @property
    def effective_min_backlog(self) -> int:
        """The detector's arming floor (``min_backlog`` or half the high)."""
        return (
            self.min_backlog if self.min_backlog is not None
            else max(1, self.high_water // 2)
        )
