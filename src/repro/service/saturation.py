"""Online saturation detection: a queue-growth regression with hysteresis.

Stability theory (Busch et al., arXiv:2208.07359) says a windowed greedy
scheduler keeps queues bounded for injection rates below a
topology-dependent saturation point and lets them diverge above it.  The
detector watches the *measured* backlog: an ordinary-least-squares slope
over the last ``horizon`` windows.  A sustained positive slope with the
backlog above an arming floor trips the detector *before* the queue
diverges; it clears only when the backlog has drained back below the
floor (hysteresis -- a tripped detector in shed mode sees a flat queue,
and clearing on slope alone would flap).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..errors import ServiceError

__all__ = ["SaturationDetector"]


class SaturationDetector:
    """Sliding-horizon least-squares slope over backlog observations.

    ``observe`` feeds one backlog sample per window and returns the
    detector state (``"nominal"`` or ``"saturated"``).  The detector is
    pure arithmetic over its inputs -- deterministic, no clocks, no
    randomness -- so same-seed service runs always trip at the same
    window.
    """

    def __init__(
        self,
        horizon: int = 8,
        slope_threshold: float = 0.5,
        min_backlog: int = 8,
    ) -> None:
        if horizon < 2:
            raise ServiceError(f"horizon must be >= 2, got {horizon}")
        if slope_threshold <= 0:
            raise ServiceError(
                f"slope_threshold must be positive, got {slope_threshold}"
            )
        if min_backlog < 1:
            raise ServiceError(
                f"min_backlog must be >= 1, got {min_backlog}"
            )
        self.horizon = int(horizon)
        self.slope_threshold = float(slope_threshold)
        self.min_backlog = int(min_backlog)
        self._samples: Deque[int] = deque(maxlen=self.horizon)
        self._observed = 0
        self.state = "nominal"
        self.tripped_at: Optional[int] = None  # window index of first trip
        self.trips = 0

    @property
    def saturated(self) -> bool:
        """True while the detector is in the ``"saturated"`` state."""
        return self.state == "saturated"

    def slope(self) -> float:
        """OLS slope of backlog vs window index over the current horizon.

        Returns 0.0 until the horizon has filled -- the detector never
        rules on partial evidence.
        """
        n = len(self._samples)
        if n < self.horizon:
            return 0.0
        xs = range(n)
        mean_x = (n - 1) / 2.0
        mean_y = sum(self._samples) / n
        num = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, self._samples)
        )
        den = sum((x - mean_x) ** 2 for x in xs)
        return num / den

    def observe(self, backlog: int) -> str:
        """Feed one per-window backlog sample; returns the new state."""
        if backlog < 0:
            raise ServiceError(f"backlog must be >= 0, got {backlog}")
        self._samples.append(int(backlog))
        window_index = self._observed
        self._observed += 1
        if self.state == "nominal":
            if (
                backlog >= self.min_backlog
                and self.slope() > self.slope_threshold
            ):
                self.state = "saturated"
                self.trips += 1
                if self.tripped_at is None:
                    self.tripped_at = window_index
        else:  # saturated: clear only once the queue has actually drained
            if backlog < self.min_backlog:
                self.state = "nominal"
        return self.state

    def snapshot(self) -> Tuple[str, float, int]:
        """(state, current slope, samples observed) for reports."""
        return (self.state, self.slope(), self._observed)

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the detector's mutable state."""
        return {
            "samples": list(self._samples),
            "observed": self._observed,
            "state": self.state,
            "tripped_at": self.tripped_at,
            "trips": self.trips,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        The detector must have been constructed with the same horizon and
        thresholds; only the sliding window and trip history change.
        """
        self._samples = deque(
            (int(s) for s in state["samples"]), maxlen=self.horizon
        )
        self._observed = int(state["observed"])
        self.state = str(state["state"])
        tripped = state["tripped_at"]
        self.tripped_at = None if tripped is None else int(tripped)
        self.trips = int(state["trips"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SaturationDetector(state={self.state!r}, "
            f"slope={self.slope():.3f}, observed={self._observed})"
        )
