"""Continuous-arrival scheduling service: batch scheduling, run forever.

The rest of the repo schedules *finite* instances; this package wraps
those engines in a long-lived loop that consumes an unbounded
:class:`~repro.workloads.streams.ArrivalStream`, batches each fixed
arrival window through the existing machinery, and carries uncommitted
work forward in a priority-ordered backlog.  Robustness is the point:
watermark backpressure with hysteresis, per-transaction deadlines,
bounded deterministic window retry under live fault injection, and an
online saturation detector that sheds load before queues diverge.

Public surface::

    from repro.service import (
        SchedulingService, ServiceConfig, LoadControl, ServiceReport,
        SaturationDetector, run_service,
    )
"""

from .config import LoadControl, ServiceConfig
from .loop import SchedulingService, run_service
from .report import ServiceReport
from .saturation import SaturationDetector

__all__ = [
    "SchedulingService",
    "ServiceConfig",
    "LoadControl",
    "ServiceReport",
    "SaturationDetector",
    "run_service",
]
