"""Service reports: what a long-lived run committed, shed, and queued.

A finite run has a makespan; a service has a *steady state* (or fails to
reach one).  :class:`ServiceReport` therefore carries the stability
evidence: the per-window backlog curve, sojourn-latency percentiles,
utilization, the saturation detector's verdict, and the full loss
accounting.  The identity ``committed + shed + expired + lost +
final_backlog == released`` always holds -- every transaction the stream
released is accounted for exactly once.

Registered as report kind ``"service"`` in the unified Report protocol
(:mod:`repro.analysis.report`), so service reports round-trip through
the same versioned JSON envelopes as every other measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

from ..analysis.report import register_report, report_payload, report_to_json

__all__ = ["ServiceReport"]


@register_report("service")
@dataclass(frozen=True)
class ServiceReport:
    """Stability and degradation accounting for one service run.

    ``backlog_curve`` is the queue length after each window -- the raw
    series behind the stability experiment's plots and the saturation
    detector's regression.  ``expired`` counts deadline expiries,
    ``lost`` counts crash/retry-budget casualties, ``shed`` counts
    admission refusals; ``final_backlog`` is work still queued when the
    run stopped.  ``saturated_at`` is the window index of the detector's
    first trip (``None`` if it never tripped).
    """

    report_kind: ClassVar[str]  # set by @register_report

    windows: int
    window_len: int
    engine: str
    released: int
    admitted: int
    committed: int
    shed: int
    expired: int
    lost: int
    deferred_admissions: int
    window_retries: int
    fault_count: int
    peak_backlog: int
    final_backlog: int
    backlog_curve: Tuple[int, ...]
    sojourn_p50: float
    sojourn_p99: float
    sojourn_mean: float
    sojourn_max: int
    elapsed: int
    busy: int
    saturated_at: Optional[int]
    shed_windows: int
    detector_trips: int
    final_slope: float

    @property
    def saturated(self) -> bool:
        """True iff the saturation detector ever tripped."""
        return self.saturated_at is not None

    @property
    def commit_rate(self) -> float:
        """Fraction of released transactions that committed."""
        return self.committed / self.released if self.released else 1.0

    @property
    def shed_fraction(self) -> float:
        """Fraction of released transactions refused by admission."""
        return self.shed / self.released if self.released else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of elapsed time the scheduler was executing windows."""
        return self.busy / self.elapsed if self.elapsed else 0.0

    @property
    def mean_backlog(self) -> float:
        """Mean queue length over the run's windows."""
        if not self.backlog_curve:
            return 0.0
        return sum(self.backlog_curve) / len(self.backlog_curve)

    @property
    def accounted(self) -> bool:
        """The conservation identity: nothing silently dropped."""
        return (
            self.committed + self.shed + self.expired + self.lost
            + self.final_backlog
            == self.released
        )

    def as_dict(self) -> dict[str, object]:
        """Plain-data summary for tables (curve collapsed to stats)."""
        return {
            "windows": self.windows,
            "released": self.released,
            "committed": self.committed,
            "shed": self.shed,
            "expired": self.expired,
            "lost": self.lost,
            "commit_rate": self.commit_rate,
            "shed_fraction": self.shed_fraction,
            "mean_backlog": self.mean_backlog,
            "peak_backlog": self.peak_backlog,
            "final_backlog": self.final_backlog,
            "sojourn_p50": self.sojourn_p50,
            "sojourn_p99": self.sojourn_p99,
            "utilization": self.utilization,
            "saturated": self.saturated,
            "saturated_at": self.saturated_at,
            "shed_windows": self.shed_windows,
        }

    def to_json(self) -> str:
        """Full-fidelity JSON envelope (see :mod:`repro.analysis.report`)."""
        return report_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "ServiceReport":
        """Inverse of :meth:`to_json`."""
        payload = report_payload(text, expected_kind="service")
        payload["backlog_curve"] = tuple(
            int(q) for q in payload["backlog_curve"]
        )
        return cls(**payload)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        sat = (
            f"saturated at window {self.saturated_at} "
            f"({self.detector_trips} trips, {self.shed_windows} shed windows)"
            if self.saturated
            else "never saturated"
        )
        return "\n".join([
            f"service[{self.engine}]: {self.windows} windows x "
            f"{self.window_len} steps, {self.fault_count} faults planned",
            f"committed {self.committed}/{self.released} "
            f"(shed {self.shed}, expired {self.expired}, lost {self.lost}, "
            f"queued {self.final_backlog}, deferred "
            f"{self.deferred_admissions}, window retries "
            f"{self.window_retries})",
            f"backlog: mean {self.mean_backlog:.1f}, peak "
            f"{self.peak_backlog}, slope {self.final_slope:.3f}; {sat}",
            f"sojourn: p50 {self.sojourn_p50:.1f}, p99 "
            f"{self.sojourn_p99:.1f}, mean {self.sojourn_mean:.1f}, max "
            f"{self.sojourn_max}; utilization {self.utilization:.2f}",
        ])
