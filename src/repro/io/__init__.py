"""Persistence: JSON round-trips for networks, instances, schedules,
replicated instances, and online workloads."""

from .extensions import (
    load_online_workload,
    load_rw_instance,
    online_workload_from_dict,
    online_workload_to_dict,
    rw_instance_from_dict,
    rw_instance_to_dict,
    save_online_workload,
    save_rw_instance,
)
from .serialize import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    network_from_dict,
    network_to_dict,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
    "rw_instance_to_dict",
    "rw_instance_from_dict",
    "save_rw_instance",
    "load_rw_instance",
    "online_workload_to_dict",
    "online_workload_from_dict",
    "save_online_workload",
    "load_online_workload",
]
