"""JSON (de)serialization for the extension models.

Round trips for replicated (read/write) instances and online workloads,
mirroring :mod:`repro.io.serialize`'s conventions: plain-data dicts,
revalidation on load, topology metadata preserved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from ..errors import ReproError
from ..online.arrivals import OnlineWorkload, TimedTransaction
from ..replication.model import ReplicatedInstance, RWTransaction
from .serialize import _FORMAT_VERSION, network_from_dict, network_to_dict

__all__ = [
    "rw_instance_to_dict",
    "rw_instance_from_dict",
    "save_rw_instance",
    "load_rw_instance",
    "online_workload_to_dict",
    "online_workload_from_dict",
    "save_online_workload",
    "load_online_workload",
]


def rw_instance_to_dict(inst: ReplicatedInstance) -> Dict[str, Any]:
    """Plain-data form of a replicated (read/write) instance."""
    return {
        "version": _FORMAT_VERSION,
        "network": network_to_dict(inst.network),
        "transactions": [
            {
                "tid": t.tid,
                "node": t.node,
                "reads": sorted(t.reads),
                "writes": sorted(t.writes),
            }
            for t in inst.transactions
        ],
        "object_homes": {str(o): v for o, v in inst.object_homes.items()},
    }


def rw_instance_from_dict(data: Dict[str, Any]) -> ReplicatedInstance:
    """Inverse of :func:`rw_instance_to_dict` (revalidates)."""
    net = network_from_dict(data["network"])
    txns = [
        RWTransaction(t["tid"], t["node"], t["reads"], t["writes"])
        for t in data["transactions"]
    ]
    homes = {int(o): v for o, v in data["object_homes"].items()}
    return ReplicatedInstance(net, txns, homes)


def online_workload_to_dict(wl: OnlineWorkload) -> Dict[str, Any]:
    """Plain-data form of an online workload (releases + accesses)."""
    return {
        "version": _FORMAT_VERSION,
        "network": network_to_dict(wl.network),
        "arrivals": [
            {
                "release": a.release,
                "tid": a.txn.tid,
                "node": a.txn.node,
                "objects": sorted(a.txn.objects),
            }
            for a in wl.arrivals
        ],
        "object_homes": {
            str(o): v for o, v in wl.instance.object_homes.items()
        },
    }


def online_workload_from_dict(data: Dict[str, Any]) -> OnlineWorkload:
    """Inverse of :func:`online_workload_to_dict` (revalidates)."""
    from ..core.transaction import Transaction

    net = network_from_dict(data["network"])
    arrivals = [
        TimedTransaction(
            a["release"], Transaction(a["tid"], a["node"], a["objects"])
        )
        for a in data["arrivals"]
    ]
    homes = {int(o): v for o, v in data["object_homes"].items()}
    return OnlineWorkload(net, arrivals, homes)


def _save(path: str | Path, payload: Dict[str, Any]) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def _load(path: str | Path) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load {path}: {exc}") from exc


def save_rw_instance(inst: ReplicatedInstance, path: str | Path) -> None:
    """Write a replicated instance to a JSON file."""
    _save(path, rw_instance_to_dict(inst))


def load_rw_instance(path: str | Path) -> ReplicatedInstance:
    """Read a replicated instance from a JSON file."""
    return rw_instance_from_dict(_load(path))


def save_online_workload(wl: OnlineWorkload, path: str | Path) -> None:
    """Write an online workload to a JSON file."""
    _save(path, online_workload_to_dict(wl))


def load_online_workload(path: str | Path) -> OnlineWorkload:
    """Read an online workload from a JSON file."""
    return online_workload_from_dict(_load(path))
