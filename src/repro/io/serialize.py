"""JSON (de)serialization for networks, instances, and schedules.

Lets users persist generated problem instances and computed schedules —
e.g. to pin a benchmark workload, ship a counterexample, or archive an
experiment's exact inputs.  Round trips are loss-free and covered by
property tests; topology metadata survives, so a deserialized instance
dispatches to the same scheduler.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.transaction import Transaction
from ..errors import ReproError
from ..faults.plan import (
    DelaySpike,
    FaultPlan,
    LinkFailure,
    NodeCrash,
    ObjectStall,
)
from ..network.graph import Network, Topology

__all__ = [
    "SCHEMA_VERSION",
    "json_payload",
    "dumps_canonical",
    "dumps_line",
    "write_json",
    "read_json",
    "append_jsonl",
    "read_jsonl",
    "network_to_dict",
    "network_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "fault_plan_to_json",
    "fault_plan_from_json",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
    "save_fault_plan",
    "load_fault_plan",
    "save_certificate",
    "load_certificate",
    "save_report",
    "load_report",
]

_FORMAT_VERSION = 1

#: version stamped on every JSON document the package writes
SCHEMA_VERSION = 1


def json_payload(kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap ``body`` in the standard versioned envelope.

    Every JSON document the CLI and persistence layer emit carries
    ``schema_version`` and ``kind`` at the top so readers can dispatch
    and future-proof without sniffing the structure.
    """
    return {"schema_version": SCHEMA_VERSION, "kind": kind, "body": body}


def dumps_canonical(payload: Dict[str, Any]) -> str:
    """The one JSON writer: sorted keys, 2-space indent, stable bytes."""
    return json.dumps(payload, indent=2, sort_keys=True)


def dumps_line(payload: Dict[str, Any]) -> str:
    """Single-line canonical JSON (sorted keys, no indent) for JSONL/wire."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def append_jsonl(path: str | Path, kind: str, body: Dict[str, Any]) -> None:
    """Append one enveloped record to a JSON-lines file.

    Each line is a complete ``schema_version``/``kind`` envelope; the
    write is a single ``O_APPEND`` call so concurrent readers never see
    a torn record.  This is the cluster journal's write-ahead format.
    """
    line = dumps_line(json_payload(kind, body)) + "\n"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        fh.flush()


def read_jsonl(
    path: str | Path, expected_kind: str | None = None
) -> list[Dict[str, Any]]:
    """Read every record body from a JSON-lines file of envelopes.

    A trailing partial line (a write cut short by a crash) is dropped
    silently -- write-ahead semantics: a record either committed fully
    or does not exist.  Raises :class:`ReproError` on an unreadable
    file, an unsupported ``schema_version``, or (when ``expected_kind``
    is given) a kind mismatch on any complete record.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ReproError(f"cannot load {path}: {exc}") from exc
    bodies: list[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            # torn tail record from a mid-append crash: ignore and stop
            break
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ReproError(
                f"{path}:{lineno}: unsupported schema_version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        kind = payload.get("kind")
        if expected_kind is not None and kind != expected_kind:
            raise ReproError(
                f"{path}:{lineno}: expected kind {expected_kind!r}, "
                f"got {kind!r}"
            )
        bodies.append(payload["body"])
    return bodies


def write_json(path: str | Path, kind: str, body: Dict[str, Any]) -> None:
    """Write ``body`` to ``path`` inside the versioned envelope."""
    Path(path).write_text(dumps_canonical(json_payload(kind, body)))


def read_json(path: str | Path, expected_kind: str | None = None) -> Dict[str, Any]:
    """Read an enveloped JSON document and return its body.

    Raises :class:`ReproError` on an unreadable file, a missing or
    unsupported ``schema_version``, or (when ``expected_kind`` is given)
    a kind mismatch.
    """
    payload = _load(path)
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ReproError(
            f"{path}: unsupported schema_version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    kind = payload.get("kind")
    if expected_kind is not None and kind != expected_kind:
        raise ReproError(
            f"{path}: expected kind {expected_kind!r}, got {kind!r}"
        )
    if "body" not in payload:
        raise ReproError(f"{path}: envelope missing 'body'")
    return payload["body"]


def _jsonable_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Topology params use tuples; JSON turns them into lists and back."""

    def conv(value):
        if isinstance(value, tuple):
            return [conv(v) for v in value]
        return value

    return {k: conv(v) for k, v in params.items()}


def _tupled_params(params: Dict[str, Any]) -> Dict[str, Any]:
    def conv(value):
        if isinstance(value, list):
            return tuple(conv(v) for v in value)
        return value

    return {k: conv(v) for k, v in params.items()}


def network_to_dict(net: Network) -> Dict[str, Any]:
    """Plain-data form of a network."""
    return {
        "version": _FORMAT_VERSION,
        "n": net.n,
        "edges": [[u, v, w] for u, v, w in net.edges()],
        "topology": {
            "name": net.topology.name,
            "params": _jsonable_params(dict(net.topology.params)),
        },
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Inverse of :func:`network_to_dict`."""
    topo = data.get("topology", {})
    return Network(
        data["n"],
        [tuple(e) for e in data["edges"]],
        Topology(topo.get("name", "generic"), _tupled_params(topo.get("params", {}))),
    )


def instance_to_dict(inst: Instance) -> Dict[str, Any]:
    """Plain-data form of an instance (network included)."""
    return {
        "version": _FORMAT_VERSION,
        "network": network_to_dict(inst.network),
        "transactions": [
            {"tid": t.tid, "node": t.node, "objects": sorted(t.objects)}
            for t in inst.transactions
        ],
        "object_homes": {str(o): v for o, v in inst.object_homes.items()},
    }


def instance_from_dict(data: Dict[str, Any]) -> Instance:
    """Inverse of :func:`instance_to_dict` (revalidates the model rules)."""
    net = network_from_dict(data["network"])
    txns = [
        Transaction(t["tid"], t["node"], t["objects"])
        for t in data["transactions"]
    ]
    homes = {int(o): v for o, v in data["object_homes"].items()}
    return Instance(net, txns, homes)


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Plain-data form of a schedule, embedding its instance."""
    meta = {
        k: v for k, v in schedule.meta.items()
        if isinstance(v, (str, int, float, bool, list, tuple)) or v is None
    }
    return {
        "version": _FORMAT_VERSION,
        "instance": instance_to_dict(schedule.instance),
        "commit_times": {str(t): c for t, c in schedule.commit_times.items()},
        "meta": _jsonable_params(meta),
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`."""
    inst = instance_from_dict(data["instance"])
    commits = {int(t): c for t, c in data["commit_times"].items()}
    return Schedule(inst, commits, data.get("meta", {}))


_EVENT_KINDS = {
    "link_failure": LinkFailure,
    "node_crash": NodeCrash,
    "object_stall": ObjectStall,
    "delay_spike": DelaySpike,
}
_KIND_OF = {cls: kind for kind, cls in _EVENT_KINDS.items()}


def fault_plan_to_json(plan: FaultPlan) -> Dict[str, Any]:
    """Plain-data form of a fault plan (events in stable index order).

    Each event serializes as ``{"kind": ..., **fields}``; saving a plan
    next to the schedule it disrupted makes a faulty run re-runnable from
    disk (``repro-dtm validate sched.json --plan plan.json``).
    """
    events = []
    for e in plan.events:
        rec: Dict[str, Any] = {"kind": _KIND_OF[type(e)]}
        if isinstance(e, LinkFailure):
            rec.update(u=e.u, v=e.v, start=e.start, end=e.end)
        elif isinstance(e, NodeCrash):
            rec.update(node=e.node, time=e.time)
        elif isinstance(e, ObjectStall):
            rec.update(obj=e.obj, start=e.start, end=e.end)
        else:
            rec.update(u=e.u, v=e.v, start=e.start, end=e.end,
                       factor=e.factor)
        events.append(rec)
    return {"version": _FORMAT_VERSION, "events": events}


def fault_plan_from_json(
    data: Dict[str, Any], network: Network | None = None
) -> FaultPlan:
    """Inverse of :func:`fault_plan_to_json` (revalidates every window).

    Passing ``network`` additionally validates each event against the
    graph (see :meth:`FaultPlan.validate_against`).  Raises
    :class:`ReproError` on an unknown event kind.
    """
    events = []
    for rec in data.get("events", []):
        fields = {k: v for k, v in rec.items() if k != "kind"}
        try:
            cls = _EVENT_KINDS[rec.get("kind")]
        except KeyError:
            raise ReproError(
                f"unknown fault event kind {rec.get('kind')!r}; expected "
                f"one of {sorted(_EVENT_KINDS)}"
            ) from None
        events.append(cls(**fields))
    return FaultPlan(events, network=network)


def _save(path: str | Path, payload: Dict[str, Any]) -> None:
    Path(path).write_text(dumps_canonical(payload))


def _load(path: str | Path) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load {path}: {exc}") from exc


def save_instance(inst: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file."""
    _save(path, instance_to_dict(inst))


def load_instance(path: str | Path) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_dict(_load(path))


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule (with its instance) to a JSON file."""
    _save(path, schedule_to_dict(schedule))


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(_load(path))


def save_fault_plan(plan: FaultPlan, path: str | Path) -> None:
    """Write a fault plan to a JSON file."""
    _save(path, fault_plan_to_json(plan))


def load_fault_plan(
    path: str | Path, network: Network | None = None
) -> FaultPlan:
    """Read a fault plan from a JSON file (validated against ``network``)."""
    return fault_plan_from_json(_load(path), network=network)


def save_certificate(cert, path: str | Path) -> None:
    """Write a schedule certificate to an enveloped JSON file.

    The certificate's own SHA-256 signature rides inside the standard
    ``schema_version``/``kind`` envelope (kind ``"certificate"``), so a
    loaded certificate can be re-verified offline with
    :func:`repro.staticcheck.verify_certificate`.
    """
    from ..staticcheck.certify import certificate_to_dict

    write_json(path, "certificate", certificate_to_dict(cert))


def load_certificate(path: str | Path):
    """Read a schedule certificate written by :func:`save_certificate`.

    Returns a :class:`repro.staticcheck.Certificate`; the signature is
    preserved verbatim (verify it with
    :func:`repro.staticcheck.verify_certificate`).
    """
    from ..staticcheck.certify import certificate_from_dict

    return certificate_from_dict(read_json(path, "certificate"))


def save_report(report, path: str | Path) -> None:
    """Write any registered report (metrics, degradation, service...) as
    its versioned JSON envelope (see :mod:`repro.analysis.report`)."""
    from ..analysis.report import report_to_json

    Path(path).write_text(report_to_json(report))


def load_report(path: str | Path):
    """Read a report written by :func:`save_report`.

    Dispatches on the envelope's ``kind`` through the report registry, so
    the caller gets the right dataclass back without naming it.
    """
    from ..analysis.report import report_from_json

    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReproError(f"cannot load {path}: {exc}") from exc
    return report_from_json(text)
