"""JSON (de)serialization for networks, instances, and schedules.

Lets users persist generated problem instances and computed schedules —
e.g. to pin a benchmark workload, ship a counterexample, or archive an
experiment's exact inputs.  Round trips are loss-free and covered by
property tests; topology metadata survives, so a deserialized instance
dispatches to the same scheduler.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.transaction import Transaction
from ..errors import ReproError
from ..network.graph import Network, Topology

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
]

_FORMAT_VERSION = 1


def _jsonable_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """Topology params use tuples; JSON turns them into lists and back."""

    def conv(value):
        if isinstance(value, tuple):
            return [conv(v) for v in value]
        return value

    return {k: conv(v) for k, v in params.items()}


def _tupled_params(params: Dict[str, Any]) -> Dict[str, Any]:
    def conv(value):
        if isinstance(value, list):
            return tuple(conv(v) for v in value)
        return value

    return {k: conv(v) for k, v in params.items()}


def network_to_dict(net: Network) -> Dict[str, Any]:
    """Plain-data form of a network."""
    return {
        "version": _FORMAT_VERSION,
        "n": net.n,
        "edges": [[u, v, w] for u, v, w in net.edges()],
        "topology": {
            "name": net.topology.name,
            "params": _jsonable_params(dict(net.topology.params)),
        },
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Inverse of :func:`network_to_dict`."""
    topo = data.get("topology", {})
    return Network(
        data["n"],
        [tuple(e) for e in data["edges"]],
        Topology(topo.get("name", "generic"), _tupled_params(topo.get("params", {}))),
    )


def instance_to_dict(inst: Instance) -> Dict[str, Any]:
    """Plain-data form of an instance (network included)."""
    return {
        "version": _FORMAT_VERSION,
        "network": network_to_dict(inst.network),
        "transactions": [
            {"tid": t.tid, "node": t.node, "objects": sorted(t.objects)}
            for t in inst.transactions
        ],
        "object_homes": {str(o): v for o, v in inst.object_homes.items()},
    }


def instance_from_dict(data: Dict[str, Any]) -> Instance:
    """Inverse of :func:`instance_to_dict` (revalidates the model rules)."""
    net = network_from_dict(data["network"])
    txns = [
        Transaction(t["tid"], t["node"], t["objects"])
        for t in data["transactions"]
    ]
    homes = {int(o): v for o, v in data["object_homes"].items()}
    return Instance(net, txns, homes)


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Plain-data form of a schedule, embedding its instance."""
    meta = {
        k: v for k, v in schedule.meta.items()
        if isinstance(v, (str, int, float, bool, list, tuple)) or v is None
    }
    return {
        "version": _FORMAT_VERSION,
        "instance": instance_to_dict(schedule.instance),
        "commit_times": {str(t): c for t, c in schedule.commit_times.items()},
        "meta": _jsonable_params(meta),
    }


def schedule_from_dict(data: Dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`."""
    inst = instance_from_dict(data["instance"])
    commits = {int(t): c for t, c in data["commit_times"].items()}
    return Schedule(inst, commits, data.get("meta", {}))


def _save(path: str | Path, payload: Dict[str, Any]) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def _load(path: str | Path) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load {path}: {exc}") from exc


def save_instance(inst: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file."""
    _save(path, instance_to_dict(inst))


def load_instance(path: str | Path) -> Instance:
    """Read an instance from a JSON file."""
    return instance_from_dict(_load(path))


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule (with its instance) to a JSON file."""
    _save(path, schedule_to_dict(schedule))


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(_load(path))
