"""Persistence for observability traces (:class:`~repro.obs.RunTrace`).

A saved trace is the standard versioned envelope with kind
``run_trace``; ``repro-dtm trace summarize`` consumes these files and
reproduces the run's headline numbers (event counts, makespan, hottest
edge) without re-running anything.
"""

from __future__ import annotations

from pathlib import Path

from ..obs.export import trace_from_dict, trace_to_csv, trace_to_dict
from ..obs.trace import RunTrace
from .serialize import read_json, write_json

__all__ = ["save_trace", "load_trace", "save_trace_csv"]

TRACE_KIND = "run_trace"


def save_trace(trace: RunTrace, path: str | Path) -> None:
    """Write a trace to a JSON file (versioned envelope, stable bytes)."""
    write_json(path, TRACE_KIND, trace_to_dict(trace))


def load_trace(path: str | Path) -> RunTrace:
    """Read a trace from a JSON file written by :func:`save_trace`."""
    return trace_from_dict(read_json(path, expected_kind=TRACE_KIND))


def save_trace_csv(trace: RunTrace, path: str | Path) -> None:
    """Write the trace's event stream as ``kind,time,detail`` CSV."""
    Path(path).write_text(trace_to_csv(trace))
