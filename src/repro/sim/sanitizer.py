"""Runtime invariant sanitizer: turn silent corruption into typed errors.

The online runtimes (:func:`repro.online.run_online` and the fault-aware
:func:`repro.online.run_resilient`) mutate shared state -- object
positions, in-flight sets, pending transactions -- step by step.  A bug in
that machinery does not crash; it silently produces a wrong schedule.  An
:class:`InvariantSanitizer` is a step hook both runtimes call to assert
the model's safety invariants *while decisions are being made*:

* **single copy** -- every object sits at exactly one node, and the
  in-flight set is consistent with the position map (an object cannot be
  both delivered and moving);
* **no commit before release** -- a transaction's commit time is at least
  its release time, and every object it needs is on its node and idle at
  the commit step;
* **no traversal of a down link** -- a hop never enters a link the fault
  plan has down at the entry step;
* **priority monotonicity of object motion** -- an object is only ever
  dispatched toward the *highest-priority* pending transaction requesting
  it (the Greedy-CM discipline that makes the runtime livelock-free).

A violation raises :class:`~repro.errors.InvariantViolationError`
immediately (or is collected when ``raise_on_violation=False``, which the
E18 experiment uses to report a violation count).  Construction with
``enabled=False`` turns every hook into a no-op -- the opt-out for
benchmarks, where the checks' O(objects + pending) per-step cost matters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..errors import InvariantViolationError

__all__ = ["InvariantSanitizer"]


class InvariantSanitizer:
    """Step-hook asserting the online runtimes' safety invariants.

    Parameters
    ----------
    enabled:
        ``False`` turns every check into an immediate return (benchmark
        opt-out).
    raise_on_violation:
        ``True`` (default) raises :class:`InvariantViolationError` on the
        first violation; ``False`` collects messages in :attr:`violations`
        and keeps going (used for reporting).

    ``checks`` counts individual invariant evaluations, so tests and
    experiment tables can assert the sanitizer actually ran.
    """

    def __init__(
        self, enabled: bool = True, raise_on_violation: bool = True
    ) -> None:
        self.enabled = enabled
        self.raise_on_violation = raise_on_violation
        self.checks = 0
        self.violations: List[str] = []

    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.raise_on_violation:
            raise InvariantViolationError(message)

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def check_step(
        self,
        t: int,
        position: Mapping[int, int],
        moving: Iterable[int],
        pending: Mapping[int, object],
        n: Optional[int] = None,
    ) -> None:
        """Single-copy and state-consistency invariants, once per step."""
        if not self.enabled:
            return
        self.checks += 1
        moving_set = set(moving)
        stray = moving_set - set(position)
        if stray:
            self._fail(
                f"t={t}: objects {sorted(stray)} are in flight but have no "
                f"position -- an object must have exactly one copy"
            )
        if n is not None:
            bad = {o: p for o, p in position.items() if not 0 <= p < n}
            if bad:
                self._fail(
                    f"t={t}: objects at nonexistent nodes: {sorted(bad.items())}"
                )
        for txn in pending.values():
            missing = set(txn.objects) - set(position)
            if missing:
                self._fail(
                    f"t={t}: pending transaction {txn.tid} requests objects "
                    f"{sorted(missing)} that have no copy anywhere"
                )

    def check_commit(
        self,
        t: int,
        txn,
        position: Mapping[int, int],
        moving: Iterable[int],
        release: Mapping[int, int],
    ) -> None:
        """No commit before release; all objects present and idle."""
        if not self.enabled:
            return
        self.checks += 1
        rel = release.get(txn.tid)
        if rel is not None and t < rel:
            self._fail(
                f"t={t}: transaction {txn.tid} commits before its release "
                f"at t={rel}"
            )
        moving_set = set(moving)
        for obj in sorted(txn.objects):
            if obj in moving_set:
                self._fail(
                    f"t={t}: transaction {txn.tid} commits while object "
                    f"{obj} is still in flight"
                )
            elif position.get(obj) != txn.node:
                self._fail(
                    f"t={t}: transaction {txn.tid} commits at node "
                    f"{txn.node} but object {obj} sits at "
                    f"node {position.get(obj)}"
                )

    def check_hop(self, t: int, u: int, v: int, plan) -> None:
        """A hop entered at ``t`` must not traverse a down link."""
        if not self.enabled:
            return
        self.checks += 1
        ev = plan.link_down(u, v, t)
        if ev is not None:
            self._fail(
                f"t={t}: hop enters down link ({u},{v}) -- {ev.describe()}"
            )

    def check_dispatch(
        self,
        t: int,
        obj: int,
        target,
        pending: Mapping[int, object],
        prio: Dict[int, tuple],
    ) -> None:
        """Objects move only toward their highest-priority pending waiter."""
        if not self.enabled:
            return
        self.checks += 1
        requesters = [
            txn for txn in pending.values() if obj in txn.objects
        ]
        if not requesters:
            self._fail(
                f"t={t}: object {obj} dispatched toward transaction "
                f"{target.tid} which no pending transaction backs"
            )
            return
        best = min(requesters, key=lambda txn: prio[txn.tid])
        if prio[target.tid] > prio[best.tid]:
            self._fail(
                f"t={t}: object {obj} dispatched toward transaction "
                f"{target.tid} past higher-priority waiter {best.tid} -- "
                f"priority monotonicity broken"
            )
