"""Synchronous data-flow TM simulator: routing, execution, traces.

Also hosts the §9 extension analyses: link congestion
(:mod:`repro.sim.congestion`), asynchronous replay
(:mod:`repro.sim.asynchrony`), and the runtime invariant sanitizer
(:mod:`repro.sim.sanitizer`).
"""

from .asynchrony import AsyncResult, asynchronous_execute
from .sanitizer import InvariantSanitizer
from .congestion import (
    CongestionReport,
    congestion_report,
    serialized_edge_makespan,
)
from .capacity import CapacityResult, capacity_execute
from .engine import execute
from .reroute import ReroutePlan, reroute_for_congestion
from .routing import Hop, Leg, plan_leg
from .trace import CommitEvent, Trace

__all__ = [
    "execute",
    "plan_leg",
    "Hop",
    "Leg",
    "Trace",
    "CommitEvent",
    "CongestionReport",
    "congestion_report",
    "serialized_edge_makespan",
    "AsyncResult",
    "asynchronous_execute",
    "ReroutePlan",
    "reroute_for_congestion",
    "CapacityResult",
    "capacity_execute",
    "InvariantSanitizer",
]
