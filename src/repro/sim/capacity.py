"""Capacity-constrained execution (§9 open question 2, constructive).

:func:`capacity_execute` turns any feasible schedule into an execution
where each link carries at most ``capacity`` objects at a time: the
schedule's commit *order* is replayed (as in compaction), but every hop
must reserve a free channel on its edge, waiting when the link is busy.
The result is a genuine bounded-capacity execution whose makespan sits
between the analytical bracket of :mod:`repro.sim.congestion`
(``cap1_lower_bound <= actual <= serialized upper bound``), giving E12 a
constructive middle column.

With unbounded capacity the executor reduces exactly to
:func:`repro.core.retime.compact_schedule` (asserted in tests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.schedule import Schedule
from ..errors import SchedulingError

__all__ = ["CapacityResult", "capacity_execute"]

Edge = Tuple[int, int]


@dataclass
class CapacityResult:
    """Outcome of a bounded-capacity replay."""

    commit_times: Dict[int, int]
    capacity: int
    #: total steps objects spent waiting for busy links
    link_wait: int
    #: per-edge reservation count (traffic under the chosen routes)
    edge_traffic: Dict[Edge, int]

    @property
    def makespan(self) -> int:
        return max(self.commit_times.values())


def _edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def capacity_execute(schedule: Schedule, capacity: int = 1) -> CapacityResult:
    """Replay ``schedule``'s commit order under per-link capacity.

    Objects depart toward their next user as soon as released; each hop
    claims the earliest free channel of its edge (FIFO per processing
    order).  Commit fires when all of a transaction's objects arrive.
    """
    if capacity < 1:
        raise SchedulingError(f"capacity must be >= 1, got {capacity}")
    inst = schedule.instance
    net = inst.network

    # per-edge heap of busy-channel end times (size grows lazily up to
    # `capacity`, so huge capacities cost nothing)
    channels: Dict[Edge, List[int]] = {}
    release: Dict[int, int] = {}
    position: Dict[int, int] = dict(inst.object_homes)
    commits: Dict[int, int] = {}
    traffic: Dict[Edge, int] = {}
    wait_total = 0

    order = sorted(
        inst.transactions, key=lambda t: (schedule.time_of(t.tid), t.tid)
    )
    for t in order:
        ready = 1
        for obj in sorted(t.objects):
            src = position[obj]
            cur = release.get(obj, 0)
            if src != t.node:
                path = net.shortest_path(src, t.node)
                for a, b in zip(path, path[1:]):
                    w = net.edge_weight(a, b)
                    edge = _edge(a, b)
                    chans = channels.setdefault(edge, [])
                    if len(chans) < capacity:
                        start = cur
                        heapq.heappush(chans, start + w)
                    else:
                        start = max(cur, chans[0])
                        heapq.heapreplace(chans, start + w)
                    wait_total += start - cur
                    traffic[edge] = traffic.get(edge, 0) + 1
                    cur = start + w
            ready = max(ready, cur)
        commits[t.tid] = ready
        for obj in t.objects:
            release[obj] = ready
            position[obj] = t.node
    return CapacityResult(
        commit_times=commits,
        capacity=capacity,
        link_wait=wait_total,
        edge_traffic=traffic,
    )
