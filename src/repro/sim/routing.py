"""Object routing: turn itinerary legs into hop-level route plans.

In the data-flow model an object forwarded at commit time travels along a
shortest path, one weight-unit per time step.  A :class:`RoutePlan` pins
down exactly which edge the object occupies during which interval, which
the engine uses to verify timing and to accumulate per-edge traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.graph import Network

__all__ = ["Hop", "Leg", "plan_leg"]


@dataclass(frozen=True)
class Hop:
    """One edge traversal: occupy ``(src, dst)`` during ``[enter, exit)``."""

    src: int
    dst: int
    enter: int
    exit: int


@dataclass(frozen=True)
class Leg:
    """One itinerary leg routed along a shortest path."""

    obj: int
    depart: int
    deadline: int
    path: tuple[int, ...]
    hops: tuple[Hop, ...]

    @property
    def arrive(self) -> int:
        """Arrival time at the leg's destination."""
        return self.hops[-1].exit if self.hops else self.depart

    @property
    def distance(self) -> int:
        """Total distance covered."""
        return sum(h.exit - h.enter for h in self.hops)


def plan_leg(
    net: Network, obj: int, src: int, dst: int, depart: int, deadline: int
) -> Leg:
    """Route ``obj`` from ``src`` to ``dst`` departing at ``depart``.

    The caller checks ``arrive <= deadline``; this function only builds
    the hop sequence along a shortest path.
    """
    path = net.shortest_path(src, dst)
    hops = []
    t = depart
    for a, b in zip(path, path[1:]):
        w = net.edge_weight(a, b)
        hops.append(Hop(a, b, t, t + w))
        t += w
    return Leg(
        obj=obj,
        depart=depart,
        deadline=deadline,
        path=tuple(path),
        hops=tuple(hops),
    )
