"""Asynchronous execution (§9 conclusion: the synchronicity factor).

The paper notes its bounds degrade by the *synchronicity factor*
``phi = max delay / min delay`` when the system is not fully synchronous.
:func:`asynchronous_execute` replays a feasible synchronous schedule in a
jittered network where every hop's delay is independently stretched by a
factor drawn uniformly from ``[1, phi]``, preserving the schedule's
commit *order* (the conflict-serialization the offline scheduler chose)
while letting every commit happen as early as its objects' jittered
arrivals allow.  The realized makespan is guaranteed to stay within
``phi x`` the synchronous makespan -- the claim the E13 experiment checks
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.schedule import Schedule
from .routing import plan_leg

__all__ = ["AsyncResult", "asynchronous_execute"]


@dataclass(frozen=True)
class AsyncResult:
    """Outcome of an asynchronous replay."""

    realized_commits: Dict[int, int]
    phi: float

    @property
    def makespan(self) -> int:
        return max(self.realized_commits.values())


def asynchronous_execute(
    schedule: Schedule,
    phi: float,
    rng: np.random.Generator,
) -> AsyncResult:
    """Replay ``schedule`` with per-hop delays stretched into ``[1, phi]``.

    Transactions commit in the original order; each commit fires as soon
    as every one of its objects has arrived under the jittered delays
    (and not before time 1).  Returns the realized commit times.
    """
    if phi < 1.0:
        raise ValueError(f"synchronicity factor must be >= 1, got {phi}")
    inst = schedule.instance
    net = inst.network

    # per-object cursor: (current node, time it becomes free there)
    position: Dict[int, int] = dict(inst.object_homes)
    free_at: Dict[int, float] = {o: 0.0 for o in inst.objects}
    realized: Dict[int, int] = {}

    order = sorted(
        inst.transactions, key=lambda t: (schedule.time_of(t.tid), t.tid)
    )
    for txn in order:
        ready = 1.0
        for obj in sorted(txn.objects):
            src = position[obj]
            travel = 0.0
            if src != txn.node:
                leg = plan_leg(net, obj, src, txn.node, 0, 10**9)
                for hop in leg.hops:
                    w = hop.exit - hop.enter
                    travel += w * rng.uniform(1.0, phi)
            ready = max(ready, free_at[obj] + travel)
        commit = int(np.ceil(ready))
        realized[txn.tid] = commit
        # normalized to sorted order like the jitter-drawing loop above:
        # replays must touch per-object state in one canonical order so a
        # fixed seed yields a bit-identical result regardless of how the
        # object set happens to iterate
        for obj in sorted(txn.objects):
            position[obj] = txn.node
            free_at[obj] = commit
    return AsyncResult(realized_commits=realized, phi=phi)
