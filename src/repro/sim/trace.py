"""Execution traces produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["CommitEvent", "Trace"]


@dataclass(frozen=True)
class CommitEvent:
    """A transaction commit observed during simulation."""

    time: int
    tid: int
    node: int
    objects: Tuple[int, ...]


@dataclass
class Trace:
    """What actually happened when a schedule was executed.

    Attributes
    ----------
    makespan:
        Time of the last commit (matches ``Schedule.makespan`` when the
        schedule is feasible -- asserted by the engine).
    total_distance:
        Total distance travelled by all objects (communication cost).
    object_distance:
        Per-object distance travelled.
    edge_traffic:
        Traversal count per undirected edge ``(min(u,v), max(u,v))`` --
        the congestion view the paper's conclusion flags as future work.
    max_in_flight:
        Peak number of objects simultaneously in transit.
    commits:
        Commit events in time order.
    idle_object_time:
        Total steps objects spent parked between legs (slack), summed.
    """

    makespan: int
    total_distance: int
    object_distance: Dict[int, int] = field(default_factory=dict)
    edge_traffic: Dict[Tuple[int, int], int] = field(default_factory=dict)
    max_in_flight: int = 0
    commits: Tuple[CommitEvent, ...] = ()
    idle_object_time: int = 0

    @property
    def hottest_edge(self) -> Tuple[Tuple[int, int], int] | None:
        """The most-traversed edge and its traffic, or None."""
        if not self.edge_traffic:
            return None
        edge = max(self.edge_traffic, key=lambda e: (self.edge_traffic[e], e))
        return edge, self.edge_traffic[edge]

    def as_dict(self) -> dict[str, object]:
        """Plain-data summary for tables."""
        return {
            "makespan": self.makespan,
            "total_distance": self.total_distance,
            "max_in_flight": self.max_in_flight,
            "idle_object_time": self.idle_object_time,
            "commits": len(self.commits),
        }
