"""Congestion-aware rerouting of object legs (§9 open question 2, deeper).

A feasible schedule fixes *when* objects move but not *which path* they
take: any route no longer than ``deadline - depart`` works.  This module
exploits that slack to spread traffic: legs are processed most-constrained
first, each choosing -- among its shortest path and detours through an
intermediate node that still meet the deadline -- the path minimizing the
worst per-edge occupancy so far.

The result never changes commit times (the schedule stays feasible as-is)
but can substantially lower the peak link concurrency that
:func:`repro.sim.congestion.congestion_report` measures -- quantifying how
much of the capacity problem smart routing alone absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.schedule import Schedule
from ..errors import InfeasibleScheduleError

__all__ = ["ReroutePlan", "detour_candidates", "reroute_for_congestion"]

Edge = Tuple[int, int]


@dataclass
class ReroutePlan:
    """Chosen paths per leg plus the resulting congestion profile."""

    #: (obj, depart, src, dst) -> node path
    paths: Dict[Tuple[int, int, int, int], Tuple[int, ...]]
    peak_concurrency: Dict[Edge, int]
    detoured_legs: int
    total_legs: int

    @property
    def max_peak(self) -> int:
        """Worst per-link simultaneous occupancy under the chosen routes."""
        return max(self.peak_concurrency.values(), default=0)


def _edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def _path_intervals(net, path: List[int], depart: int) -> List[Tuple[Edge, int, int]]:
    out = []
    t = depart
    for a, b in zip(path, path[1:]):
        w = net.edge_weight(a, b)
        out.append((_edge(a, b), t, t + w))
        t += w
    return out


def _peak_increase(
    usage: Dict[Edge, Tuple[List[int], List[int]]],
    intervals: List[Tuple[Edge, int, int]],
) -> int:
    """Worst per-edge overlap this path would reach against current usage.

    A plain loop over the per-edge interval lists: vectorizing this with
    numpy was measured *slower* (array conversion dominates on the small
    per-edge lists), so it stays scalar -- see bench_kernels.py.
    """
    worst = 1 if intervals else 0
    for edge, enter, exit_ in intervals:
        used = usage.get(edge)
        if used is None:
            continue
        enters, exits = used
        overlap = 1
        for a, b in zip(enters, exits):
            if enter < b and a < exit_:
                overlap += 1
        if overlap > worst:
            worst = overlap
    return worst


def detour_candidates(
    net, src: int, dst: int, slack: int, max_detours: int = 8
) -> List[List[int]]:
    """Candidate paths from ``src`` to ``dst``: shortest path, then detours.

    Returns the base shortest path first, followed by up to ``max_detours``
    paths through an intermediate node whose added length does not exceed
    ``slack``, nearest candidates first (``extra == 0`` captures equal-length
    alternative shortest paths).  This is the shared detour machinery: the
    congestion rerouter picks the least-loaded candidate, and the fault
    engine (:mod:`repro.faults`) picks the first candidate avoiding failed
    links.

    Vectorized over the distance matrix: the scalar ``dist()`` loop here
    dominated the whole rerouter (profiled in bench_kernels.py).
    """
    base_path = net.shortest_path(src, dst)
    on_base = set(base_path)
    candidates = [base_path]
    dmat = net.distance_matrix
    extra = dmat[src] + dmat[:, dst] - dmat[src, dst]
    eligible = np.flatnonzero(extra <= slack)
    order = eligible[np.argsort(extra[eligible], kind="stable")]
    taken = 0
    for mid in order:
        mid = int(mid)
        if mid in on_base:
            continue
        candidates.append(
            net.shortest_path(src, mid)[:-1] + net.shortest_path(mid, dst)
        )
        taken += 1
        if taken >= max_detours:
            break
    return candidates


def reroute_for_congestion(
    schedule: Schedule, max_detours: int = 8
) -> ReroutePlan:
    """Choose per-leg paths minimizing peak link occupancy.

    ``max_detours`` caps how many intermediate-node detours are evaluated
    per leg (the nearest candidates by added length are tried first).
    """
    inst = schedule.instance
    net = inst.network
    dist = net.dist

    # collect legs with their slack, most constrained first
    legs: List[Tuple[int, int, int, int, int]] = []  # (slack, obj, depart, src, dst)
    for obj, visits in schedule.itineraries():
        for a, b in zip(visits, visits[1:]):
            if a.node == b.node:
                continue
            slack = (b.time - a.time) - dist(a.node, b.node)
            if slack < 0:  # pragma: no cover - schedule assumed feasible
                raise InfeasibleScheduleError(
                    f"object {obj} leg {a.node}->{b.node} is infeasible"
                )
            legs.append((slack, obj, a.time, a.node, b.node))
    legs.sort()

    usage: Dict[Edge, Tuple[List[int], List[int]]] = {}
    paths: Dict[Tuple[int, int, int, int], Tuple[int, ...]] = {}
    detoured = 0
    for slack, obj, depart, src, dst in legs:
        candidates = detour_candidates(net, src, dst, slack, max_detours)
        base_path = candidates[0]
        best_path, best_cost = None, None
        for path in candidates:
            intervals = _path_intervals(net, path, depart)
            cost = _peak_increase(usage, intervals)
            if best_cost is None or cost < best_cost:
                best_path, best_cost = path, cost
        assert best_path is not None
        if best_path != base_path:
            detoured += 1
        for edge, enter, exit_ in _path_intervals(net, best_path, depart):
            ent, exi = usage.setdefault(edge, ([], []))
            ent.append(enter)
            exi.append(exit_)
        paths[(obj, depart, src, dst)] = tuple(best_path)

    peaks: Dict[Edge, int] = {}
    for edge, (enters, exits) in usage.items():
        events = sorted(
            [(a, 1) for a in enters] + [(b, -1) for b in exits]
        )
        cur = best = 0
        for _, delta in events:
            cur += delta
            best = max(best, cur)
        peaks[edge] = best
    return ReroutePlan(
        paths=paths,
        peak_concurrency=peaks,
        detoured_legs=detoured,
        total_legs=len(legs),
    )
