"""Link congestion analysis (§9, open question 2).

The paper's model lets any number of objects cross an edge concurrently;
its second open question asks what bounded link capacity would change.
This module measures how much a schedule *relies* on unbounded capacity:

* :func:`congestion_report` -- per-edge peak concurrency (how many objects
  occupy an edge at once) and the *capacity-1 dilation lower bound*: with
  unit capacity, an edge traversed ``c`` times at weight ``w`` needs
  ``c * w`` exclusive time, so ``max_e traffic(e) * weight(e)`` lower
  bounds any capacity-feasible makespan alongside the original bound.
* :func:`serialized_edge_makespan` -- an upper bound achieved by the
  trivial capacity-respecting execution: delay whole phases so every
  object leg is exclusive (the makespan inflates by at most the peak
  concurrency factor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.schedule import Schedule
from ..obs.recorder import Recorder, active
from .routing import Hop, plan_leg

__all__ = ["CongestionReport", "congestion_report", "serialized_edge_makespan"]


@dataclass(frozen=True)
class CongestionReport:
    """How a schedule uses link capacity."""

    #: per-edge peak simultaneous occupancy
    peak_concurrency: Dict[Tuple[int, int], int]
    #: per-edge total exclusive time needed under capacity 1
    exclusive_time: Dict[Tuple[int, int], int]
    #: max over edges of exclusive time: capacity-1 makespan lower bound
    capacity1_lower_bound: int
    #: the schedule's makespan in the uncapacitated model
    makespan: int

    @property
    def max_peak(self) -> int:
        """Worst single-link concurrency (1 = already capacity-feasible)."""
        return max(self.peak_concurrency.values(), default=0)

    @property
    def congestion_gap(self) -> float:
        """``capacity1_lower_bound / makespan``: > 1 means capacity binds."""
        return self.capacity1_lower_bound / max(self.makespan, 1)


def _edge_key(hop: Hop) -> Tuple[int, int]:
    return (min(hop.src, hop.dst), max(hop.src, hop.dst))


def congestion_report(
    schedule: Schedule, recorder: Recorder | None = None
) -> CongestionReport:
    """Measure the schedule's per-link concurrency and capacity-1 bound.

    ``recorder`` is an optional observability sink; the analysis phase is
    timed and the headline congestion gauges are published through it.
    """
    rec = active(recorder)
    inst = schedule.instance
    net = inst.network
    with rec.phase("congestion"):
        intervals: Dict[Tuple[int, int], list[tuple[int, int]]] = {}
        for obj, visits in schedule.itineraries():
            for a, b in zip(visits, visits[1:]):
                if a.node == b.node:
                    continue
                leg = plan_leg(net, obj, a.node, b.node, a.time, b.time)
                for hop in leg.hops:
                    intervals.setdefault(_edge_key(hop), []).append(
                        (hop.enter, hop.exit)
                    )

        peak: Dict[Tuple[int, int], int] = {}
        exclusive: Dict[Tuple[int, int], int] = {}
        for edge, ivals in intervals.items():
            events: list[tuple[int, int]] = []
            total = 0
            for enter, exit_ in ivals:
                events.append((enter, 1))
                events.append((exit_, -1))
                total += exit_ - enter
            events.sort()
            cur = best = 0
            for _, delta in events:
                cur += delta
                best = max(best, cur)
            peak[edge] = best
            exclusive[edge] = total

    report = CongestionReport(
        peak_concurrency=peak,
        exclusive_time=exclusive,
        capacity1_lower_bound=max(exclusive.values(), default=0),
        makespan=schedule.makespan,
    )
    if rec.enabled:
        rec.gauge("congestion.max_peak", report.max_peak)
        rec.gauge(
            "congestion.capacity1_lower_bound", report.capacity1_lower_bound
        )
    return report


def serialized_edge_makespan(schedule: Schedule) -> int:
    """Capacity-1-feasible makespan via whole-schedule dilation.

    Stretching the time axis by the worst per-link concurrency ``c`` and
    round-robining concurrent occupants gives a capacity-1 execution in
    ``c * makespan`` steps; combined with the report's lower bound this
    brackets the true capacity-1 optimum within the concurrency factor.
    """
    report = congestion_report(schedule)
    return max(report.max_peak, 1) * schedule.makespan
