"""Synchronous data-flow TM execution engine (§2.1's step semantics).

The engine *executes* a schedule rather than merely checking leg lengths:
every object is routed hop-by-hop along shortest paths, transactions commit
at their scheduled step only if all their objects are physically on-node,
and commit-then-forward happens within one step exactly as the model
allows.  This is an independent implementation of feasibility (path sums
instead of the cached distance matrix), so ``Schedule.validate`` and
:func:`execute` cross-check each other throughout the test suite.  The
returned :class:`~repro.sim.trace.Trace` additionally reports the
communication cost, per-edge traffic, peak in-flight objects, and object
idle time -- the quantities the paper's related-work and future-work
discussions care about.
"""

from __future__ import annotations

import math
from typing import Dict, List

from ..core.schedule import Schedule
from ..errors import InfeasibleScheduleError
from ..obs import events as obs_events
from ..obs.recorder import Recorder, active
from .routing import Leg, plan_leg
from .trace import CommitEvent, Trace

__all__ = ["execute"]


def execute(
    schedule: Schedule,
    record_commits: bool = True,
    recorder: Recorder | None = None,
) -> Trace:
    """Run ``schedule`` through the synchronous engine.

    Raises :class:`InfeasibleScheduleError` if any object cannot make a
    scheduled trip in time or any transaction commits without its objects
    present.  Returns the execution trace.  ``recorder`` is an optional
    :class:`~repro.obs.Recorder` observability sink; recording is passive
    (the returned trace is identical with or without it).
    """
    rec = active(recorder)
    inst = schedule.instance
    net = inst.network

    legs: List[Leg] = []
    # presence[(obj, tid)] = (arrival, departure, node): the interval during
    # which `obj` sits at the committing transaction's node for that visit.
    presence: Dict[tuple[int, int], tuple[float, float, int]] = {}

    with rec.phase("route"):
        for obj, visits in schedule.itineraries():
            # time the object becomes present at each visit
            arrivals: List[int] = [0]
            for a, b in zip(visits, visits[1:]):
                if a.node == b.node:
                    arrivals.append(arrivals[-1])
                    continue
                leg = plan_leg(net, obj, a.node, b.node, a.time, b.time)
                if leg.arrive > b.time:
                    raise InfeasibleScheduleError(
                        f"object {obj} departs node {a.node} at t={a.time} "
                        f"but reaches node {b.node} at t={leg.arrive} > "
                        f"commit t={b.time}"
                    )
                legs.append(leg)
                arrivals.append(leg.arrive)
            for i, v in enumerate(visits):
                if v.tid < 0:
                    continue
                # the object departs toward the next *distinct* node at that
                # visit's scheduled time; until then it stays put
                departure: float = math.inf
                for nxt in visits[i + 1 :]:
                    if nxt.node != v.node:
                        departure = v.time  # forwarded right after commit
                        break
                    # consecutive same-node visits share the object in place
                presence[(obj, v.tid)] = (arrivals[i], departure, v.node)

    commits: List[CommitEvent] = []
    with rec.phase("execute"):
        for t in sorted(
            inst.transactions, key=lambda t: schedule.time_of(t.tid)
        ):
            ct = schedule.time_of(t.tid)
            for obj in sorted(t.objects):
                entry = presence.get((obj, t.tid))
                if entry is None:  # pragma: no cover - itinerary covers users
                    raise InfeasibleScheduleError(
                        f"transaction {t.tid} commits at t={ct} but object "
                        f"{obj} has no visit for it"
                    )
                arrival, departure, node = entry
                if node != t.node:  # pragma: no cover - itinerary invariant
                    raise InfeasibleScheduleError(
                        f"object {obj} visit for transaction {t.tid} targets "
                        f"node {node}, not the transaction's node {t.node}"
                    )
                if arrival > ct:
                    raise InfeasibleScheduleError(
                        f"transaction {t.tid} commits at t={ct} but object "
                        f"{obj} only arrives at node {t.node} at t={arrival}"
                    )
                if departure < ct:
                    raise InfeasibleScheduleError(
                        f"object {obj} departs node {t.node} at "
                        f"t={departure}, before transaction {t.tid}'s "
                        f"commit at t={ct}"
                    )
            if record_commits:
                commits.append(
                    CommitEvent(ct, t.tid, t.node, tuple(sorted(t.objects)))
                )
            if rec.enabled:
                rec.record(
                    obs_events.CommitEvent(
                        ct, t.tid, t.node, tuple(sorted(t.objects))
                    )
                )
                rec.count("sim.commits")

        # statistics
        object_distance: Dict[int, int] = {}
        edge_traffic: Dict[tuple[int, int], int] = {}
        idle = 0
        events: List[tuple[int, int]] = []  # (time, +1/-1) in-flight sweep
        for leg in legs:
            object_distance[leg.obj] = (
                object_distance.get(leg.obj, 0) + leg.distance
            )
            for hop in leg.hops:
                key = (min(hop.src, hop.dst), max(hop.src, hop.dst))
                edge_traffic[key] = edge_traffic.get(key, 0) + 1
                if rec.enabled:
                    rec.record(
                        obs_events.HopEvent(
                            hop.enter, leg.obj, hop.src, hop.dst
                        )
                    )
            idle += leg.deadline - leg.arrive
            events.append((leg.depart, 1))
            events.append((leg.arrive, -1))
        events.sort(key=lambda e: (e[0], e[1]))
        in_flight = 0
        max_in_flight = 0
        for _, delta in events:
            in_flight += delta
            max_in_flight = max(max_in_flight, in_flight)

    if rec.enabled:
        rec.count("sim.hops", sum(len(leg.hops) for leg in legs))
        rec.count("sim.legs", len(legs))
        for leg in legs:
            rec.observe("sim.leg_distance", leg.distance)
        rec.gauge("sim.makespan", schedule.makespan)
        rec.gauge("sim.max_in_flight", max_in_flight)
        rec.gauge("sim.total_distance", sum(object_distance.values()))
        rec.gauge("sim.idle_object_time", idle)

    return Trace(
        makespan=schedule.makespan,
        total_distance=sum(object_distance.values()),
        object_distance=object_distance,
        edge_traffic=edge_traffic,
        max_in_flight=max_in_flight,
        commits=tuple(commits),
        idle_object_time=idle,
    )
