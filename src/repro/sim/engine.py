"""Synchronous data-flow TM execution engine (§2.1's step semantics).

The engine *executes* a schedule rather than merely checking leg lengths:
every object is routed hop-by-hop along shortest paths, transactions commit
at their scheduled step only if all their objects are physically on-node,
and commit-then-forward happens within one step exactly as the model
allows.  This is an independent implementation of feasibility (path sums
instead of the cached distance matrix), so ``Schedule.validate`` and
:func:`execute` cross-check each other throughout the test suite.  The
returned :class:`~repro.sim.trace.Trace` additionally reports the
communication cost, per-edge traffic, peak in-flight objects, and object
idle time -- the quantities the paper's related-work and future-work
discussions care about.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..core.kernels import resolve_kernel
from ..core.schedule import Schedule
from ..errors import InfeasibleScheduleError
from ..obs import events as obs_events
from ..obs.recorder import Recorder, active
from .routing import Leg, plan_leg
from .trace import CommitEvent, Trace

__all__ = ["execute"]


def execute(
    schedule: Schedule,
    record_commits: bool = True,
    recorder: Recorder | None = None,
    kernel: str = "auto",
) -> Trace:
    """Run ``schedule`` through the synchronous engine.

    Raises :class:`InfeasibleScheduleError` if any object cannot make a
    scheduled trip in time or any transaction commits without its objects
    present.  Returns the execution trace.  ``recorder`` is an optional
    :class:`~repro.obs.Recorder` observability sink; recording is passive
    (the returned trace is identical with or without it).  ``kernel``
    selects the replay implementation (see :mod:`repro.core.kernels`);
    both produce field-by-field identical traces, recorded events
    included.
    """
    if resolve_kernel(kernel) == "vectorized":
        return _execute_vectorized(schedule, record_commits, recorder)
    rec = active(recorder)
    inst = schedule.instance
    net = inst.network

    legs: List[Leg] = []
    # presence[(obj, tid)] = (arrival, departure, node): the interval during
    # which `obj` sits at the committing transaction's node for that visit.
    presence: Dict[tuple[int, int], tuple[float, float, int]] = {}

    with rec.phase("route"):
        for obj, visits in schedule.itineraries():
            # time the object becomes present at each visit
            arrivals: List[int] = [0]
            for a, b in zip(visits, visits[1:]):
                if a.node == b.node:
                    arrivals.append(arrivals[-1])
                    continue
                leg = plan_leg(net, obj, a.node, b.node, a.time, b.time)
                if leg.arrive > b.time:
                    raise InfeasibleScheduleError(
                        f"object {obj} departs node {a.node} at t={a.time} "
                        f"but reaches node {b.node} at t={leg.arrive} > "
                        f"commit t={b.time}"
                    )
                legs.append(leg)
                arrivals.append(leg.arrive)
            for i, v in enumerate(visits):
                if v.tid < 0:
                    continue
                # the object departs toward the next *distinct* node at that
                # visit's scheduled time; until then it stays put
                departure: float = math.inf
                for nxt in visits[i + 1 :]:
                    if nxt.node != v.node:
                        departure = v.time  # forwarded right after commit
                        break
                    # consecutive same-node visits share the object in place
                presence[(obj, v.tid)] = (arrivals[i], departure, v.node)

    commits: List[CommitEvent] = []
    with rec.phase("execute"):
        for t in sorted(
            inst.transactions, key=lambda t: schedule.time_of(t.tid)
        ):
            ct = schedule.time_of(t.tid)
            for obj in sorted(t.objects):
                entry = presence.get((obj, t.tid))
                if entry is None:  # pragma: no cover - itinerary covers users
                    raise InfeasibleScheduleError(
                        f"transaction {t.tid} commits at t={ct} but object "
                        f"{obj} has no visit for it"
                    )
                arrival, departure, node = entry
                if node != t.node:  # pragma: no cover - itinerary invariant
                    raise InfeasibleScheduleError(
                        f"object {obj} visit for transaction {t.tid} targets "
                        f"node {node}, not the transaction's node {t.node}"
                    )
                if arrival > ct:
                    raise InfeasibleScheduleError(
                        f"transaction {t.tid} commits at t={ct} but object "
                        f"{obj} only arrives at node {t.node} at t={arrival}"
                    )
                if departure < ct:
                    raise InfeasibleScheduleError(
                        f"object {obj} departs node {t.node} at "
                        f"t={departure}, before transaction {t.tid}'s "
                        f"commit at t={ct}"
                    )
            if record_commits:
                commits.append(
                    CommitEvent(ct, t.tid, t.node, tuple(sorted(t.objects)))
                )
            if rec.enabled:
                rec.record(
                    obs_events.CommitEvent(
                        ct, t.tid, t.node, tuple(sorted(t.objects))
                    )
                )
                rec.count("sim.commits")

        # statistics
        object_distance: Dict[int, int] = {}
        edge_traffic: Dict[tuple[int, int], int] = {}
        idle = 0
        events: List[tuple[int, int]] = []  # (time, +1/-1) in-flight sweep
        for leg in legs:
            object_distance[leg.obj] = (
                object_distance.get(leg.obj, 0) + leg.distance
            )
            for hop in leg.hops:
                key = (min(hop.src, hop.dst), max(hop.src, hop.dst))
                edge_traffic[key] = edge_traffic.get(key, 0) + 1
                if rec.enabled:
                    rec.record(
                        obs_events.HopEvent(
                            hop.enter, leg.obj, hop.src, hop.dst
                        )
                    )
            idle += leg.deadline - leg.arrive
            events.append((leg.depart, 1))
            events.append((leg.arrive, -1))
        events.sort(key=lambda e: (e[0], e[1]))
        in_flight = 0
        max_in_flight = 0
        for _, delta in events:
            in_flight += delta
            max_in_flight = max(max_in_flight, in_flight)

    if rec.enabled:
        rec.count("sim.hops", sum(len(leg.hops) for leg in legs))
        rec.count("sim.legs", len(legs))
        for leg in legs:
            rec.observe("sim.leg_distance", leg.distance)
        rec.gauge("sim.makespan", schedule.makespan)
        rec.gauge("sim.max_in_flight", max_in_flight)
        rec.gauge("sim.total_distance", sum(object_distance.values()))
        rec.gauge("sim.idle_object_time", idle)

    return Trace(
        makespan=schedule.makespan,
        total_distance=sum(object_distance.values()),
        object_distance=object_distance,
        edge_traffic=edge_traffic,
        max_in_flight=max_in_flight,
        commits=tuple(commits),
        idle_object_time=idle,
    )


def _execute_vectorized(
    schedule: Schedule,
    record_commits: bool = True,
    recorder: Recorder | None = None,
) -> Trace:
    """Array-based implementation of :func:`execute`.

    One Python pass flattens every itinerary into parallel leg arrays;
    arrivals are a single batched gather from the cached distance matrix
    (exact, since legs follow shortest paths), feasibility and commit
    checks are array comparisons (with a reference-order replay on the
    slow path so the first violation raises the identical message), and
    edge traffic walks all legs' predecessor chains simultaneously.  When
    a recorder is attached, hops are reconstructed per leg in reference
    order so the recorded event stream matches byte for byte.
    """
    rec = active(recorder)
    inst = schedule.instance
    net = inst.network

    # flat leg arrays (one entry per node-changing itinerary leg)
    leg_obj: List[int] = []
    leg_src: List[int] = []
    leg_dst: List[int] = []
    leg_depart: List[int] = []
    leg_deadline: List[int] = []
    # flat presence entries; arr_leg points at the leg whose arrival time
    # is the visit's arrival (-1: the object has not moved yet -> t=0)
    p_key: Dict[tuple[int, int], int] = {}
    p_tid: List[int] = []
    p_arr_leg: List[int] = []
    p_dep: List[float] = []

    with rec.phase("route"):
        for obj, visits in schedule.itineraries():
            cur_leg = -1
            arr_leg: List[int] = [-1]
            for a, b in zip(visits, visits[1:]):
                if a.node != b.node:
                    cur_leg = len(leg_obj)
                    leg_obj.append(obj)
                    leg_src.append(a.node)
                    leg_dst.append(b.node)
                    leg_depart.append(a.time)
                    leg_deadline.append(b.time)
                arr_leg.append(cur_leg)
            # departure is the visit's own time iff some later visit needs
            # the object at a different node: one reverse pass tracking
            # whether the suffix of visits is uniform in node
            nvis = len(visits)
            dep: List[float] = [math.inf] * nvis
            tail = -1  # uniform node of the suffix, or -1 for empty
            mixed = False
            for i in range(nvis - 1, -1, -1):
                v = visits[i]
                if tail >= 0 and (mixed or tail != v.node):
                    dep[i] = v.time  # forwarded right after commit
                if tail >= 0 and tail != v.node:
                    mixed = True
                tail = v.node
            for i, v in enumerate(visits):
                if v.tid < 0:
                    continue
                p_key[(obj, v.tid)] = len(p_tid)
                p_tid.append(v.tid)
                p_arr_leg.append(arr_leg[i])
                p_dep.append(dep[i])

        src = np.asarray(leg_src, dtype=np.int64)
        dst = np.asarray(leg_dst, dtype=np.int64)
        depart = np.asarray(leg_depart, dtype=np.int64)
        deadline = np.asarray(leg_deadline, dtype=np.int64)
        if len(src):
            d = net.pair_distances(src, dst)
        else:
            d = np.zeros(0, dtype=np.int64)
        arrive = depart + d
        late = np.flatnonzero(arrive > deadline)
        if len(late):
            i = int(late[0])  # legs are built in reference order
            raise InfeasibleScheduleError(
                f"object {leg_obj[i]} departs node {leg_src[i]} at "
                f"t={leg_depart[i]} but reaches node {leg_dst[i]} at "
                f"t={int(arrive[i])} > commit t={leg_deadline[i]}"
            )

    commits: List[CommitEvent] = []
    txns = sorted(inst.transactions, key=lambda t: schedule.time_of(t.tid))
    with rec.phase("execute"):
        if p_tid:
            arr_leg_a = np.asarray(p_arr_leg, dtype=np.int64)
            if len(arrive):
                p_arr = np.where(arr_leg_a >= 0, arrive[arr_leg_a], 0)
            else:
                p_arr = np.zeros(len(p_tid), dtype=np.int64)
            ent_ct = np.asarray(
                [schedule.commit_times[t] for t in p_tid], dtype=np.int64
            )
            dep_a = np.asarray(p_dep, dtype=np.float64)
            if bool(((p_arr > ent_ct) | (dep_a < ent_ct)).any()):
                _raise_commit_violation(schedule, txns, p_key, p_arr, p_dep)

        if record_commits or rec.enabled:
            for t in txns:
                ct = schedule.time_of(t.tid)
                objs = tuple(sorted(t.objects))
                if record_commits:
                    commits.append(CommitEvent(ct, t.tid, t.node, objs))
                if rec.enabled:
                    rec.record(
                        obs_events.CommitEvent(ct, t.tid, t.node, objs)
                    )
                    rec.count("sim.commits")

        # statistics
        object_distance: Dict[int, int] = {}
        d_list = d.tolist()
        for o, dd in zip(leg_obj, d_list):
            object_distance[o] = object_distance.get(o, 0) + dd
        idle = int((deadline - arrive).sum()) if len(src) else 0

        edge_traffic: Dict[tuple[int, int], int] = {}
        hops_total = 0
        if rec.enabled:
            # reconstruct hops per leg, forward, so HopEvents come out in
            # the reference order (tracing is opt-in; parity over speed)
            for i, o in enumerate(leg_obj):
                path = net.shortest_path(leg_src[i], leg_dst[i])
                t_at = leg_depart[i]
                for a, b in zip(path, path[1:]):
                    key = (a, b) if a < b else (b, a)
                    edge_traffic[key] = edge_traffic.get(key, 0) + 1
                    rec.record(obs_events.HopEvent(t_at, o, a, b))
                    t_at += net.edge_weight(a, b)
                hops_total += len(path) - 1
        elif len(src):
            # walk every leg's predecessor chain simultaneously: each
            # round moves all still-travelling legs one hop toward their
            # source, emitting the traversed edges
            pred = net._ensure_pred()
            cur = dst.copy()
            eu: List[np.ndarray] = []
            ev: List[np.ndarray] = []
            alive = np.flatnonzero(cur != src)
            while len(alive):
                prev = pred[src[alive], cur[alive]].astype(np.int64)
                eu.append(prev)
                ev.append(cur[alive])
                cur[alive] = prev
                alive = alive[prev != src[alive]]
            u = np.concatenate(eu)
            v = np.concatenate(ev)
            hops_total = len(u)
            keys = np.sort(np.minimum(u, v) * net.n + np.maximum(u, v))
            change = np.flatnonzero(
                np.concatenate(([True], keys[1:] != keys[:-1]))
            )
            counts = np.diff(np.concatenate((change, [len(keys)])))
            for k, c in zip(keys[change].tolist(), counts.tolist()):
                edge_traffic[(k // net.n, k % net.n)] = c

        max_in_flight = 0
        if len(src):
            times = np.concatenate((depart, arrive))
            delta = np.concatenate(
                (
                    np.ones(len(src), dtype=np.int64),
                    -np.ones(len(src), dtype=np.int64),
                )
            )
            run = np.cumsum(delta[np.lexsort((delta, times))])
            max_in_flight = max(int(run.max()), 0)

    if rec.enabled:
        rec.count("sim.hops", hops_total)
        rec.count("sim.legs", len(leg_obj))
        for dd in d_list:
            rec.observe("sim.leg_distance", dd)
        rec.gauge("sim.makespan", schedule.makespan)
        rec.gauge("sim.max_in_flight", max_in_flight)
        rec.gauge("sim.total_distance", sum(object_distance.values()))
        rec.gauge("sim.idle_object_time", idle)

    return Trace(
        makespan=schedule.makespan,
        total_distance=sum(object_distance.values()),
        object_distance=object_distance,
        edge_traffic=edge_traffic,
        max_in_flight=max_in_flight,
        commits=tuple(commits),
        idle_object_time=idle,
    )


def _raise_commit_violation(schedule, txns, p_key, p_arr, p_dep) -> None:
    """Replay commit checks in reference order to raise the exact error."""
    for t in txns:
        ct = schedule.time_of(t.tid)
        for obj in sorted(t.objects):
            i = p_key[(obj, t.tid)]
            arrival = int(p_arr[i])
            departure = p_dep[i]
            if arrival > ct:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} commits at t={ct} but object "
                    f"{obj} only arrives at node {t.node} at t={arrival}"
                )
            if departure < ct:
                raise InfeasibleScheduleError(
                    f"object {obj} departs node {t.node} at "
                    f"t={departure}, before transaction {t.tid}'s "
                    f"commit at t={ct}"
                )
    raise AssertionError(  # pragma: no cover - caller saw a violation
        "vectorized commit check flagged a violation the replay missed"
    )
