"""Baseline schedulers the paper's algorithms are compared against (E9)."""

from .list_scheduler import (
    ListScheduler,
    RandomOrderScheduler,
    SequentialScheduler,
    TSPOrderScheduler,
)

__all__ = [
    "ListScheduler",
    "SequentialScheduler",
    "RandomOrderScheduler",
    "TSPOrderScheduler",
]
