"""Priority list scheduling: the baseline family (E9).

A list scheduler processes transactions in a fixed priority order and
commits each as early as its objects allow: a transaction's commit time is
the maximum, over its objects, of *(the object's release time at its
previous user, plus the travel distance to this transaction)*.  Commit
times are feasible by construction -- consecutive users of an object are
spaced by at least their distance -- so any priority order yields a valid
schedule, and the order is the entire policy:

* :class:`SequentialScheduler` additionally serializes *all* transactions
  (at most one commit per step), modelling a global-lock/serialization-
  lease distributed TM (the related-work designs of [2, 9, 24]);
* :class:`RandomOrderScheduler` uses a uniformly random priority;
* :class:`TSPOrderScheduler` prioritizes by position on a heuristic TSP
  tour of the hottest object's requesters (the communication-cost-first
  strategy of Zhang et al. [37], which Busch et al. [3] prove cannot also
  optimize execution time).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..bounds.walks import nearest_neighbor_path, two_opt_path
from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.scheduler import Scheduler, register

__all__ = [
    "ListScheduler",
    "SequentialScheduler",
    "RandomOrderScheduler",
    "TSPOrderScheduler",
]


class ListScheduler(Scheduler):
    """Greedy list scheduling over a transaction priority order."""

    name = "list"

    #: When True, at most one transaction commits per time step (global lock).
    serialize: bool = False

    def priority(
        self, instance: Instance, rng: np.random.Generator | None
    ) -> List[int]:
        """Transaction ids in processing order; subclasses override."""
        return [t.tid for t in instance.transactions]

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        dist = instance.network.dist
        release: Dict[int, int] = {}  # object -> time it can leave its position
        position: Dict[int, int] = dict(instance.object_homes)
        commits: Dict[int, int] = {}
        last_commit = 0
        for tid in self.priority(instance, rng):
            t = instance.transaction(tid)
            ct = 1
            for obj in t.objects:
                ready = release.get(obj, 0) + dist(position[obj], t.node)
                ct = max(ct, ready)
            if self.serialize:
                ct = max(ct, last_commit + 1)
            commits[tid] = ct
            last_commit = max(last_commit, ct)
            for obj in t.objects:
                release[obj] = ct
                position[obj] = t.node
        meta = {"scheduler": self.name, "serialize": self.serialize}
        return Schedule(instance, commits, meta)


@register("sequential")
class SequentialScheduler(ListScheduler):
    """One commit per step, id order: the global-serialization baseline."""

    serialize = True


@register("random-order")
class RandomOrderScheduler(ListScheduler):
    """List scheduling with a uniformly random priority order."""

    def priority(
        self, instance: Instance, rng: np.random.Generator | None
    ) -> List[int]:
        if rng is None:
            rng = np.random.default_rng(0)
        tids = np.asarray([t.tid for t in instance.transactions])
        return [int(x) for x in rng.permutation(tids)]


@register("tsp-order")
class TSPOrderScheduler(ListScheduler):
    """Prioritize by position on the hottest object's heuristic TSP walk.

    The walk starts at the hottest object's home and visits all its
    requesters (nearest-neighbour + 2-opt); transactions not on the walk
    keep id order after the walk's members.  This mimics schedulers that
    chase the communication-cost (TSP) objective.
    """

    def priority(
        self, instance: Instance, rng: np.random.Generator | None
    ) -> List[int]:
        hot = max(instance.objects, key=lambda o: (instance.load(o), -o))
        users = sorted(instance.users(hot), key=lambda t: t.tid)
        if len(users) <= 1:
            return [t.tid for t in instance.transactions]
        nodes = [instance.home(hot)] + [t.node for t in users]
        idx = np.asarray(nodes, dtype=np.intp)
        sub = instance.network.distance_matrix[np.ix_(idx, idx)]
        order = two_opt_path(sub, nearest_neighbor_path(sub, 0))
        ranked: List[int] = []
        for pos in order:
            if pos == 0:
                continue  # the home placeholder
            ranked.append(users[pos - 1].tid)
        seen = set(ranked)
        ranked.extend(
            t.tid for t in instance.transactions if t.tid not in seen
        )
        return ranked
