"""Rolling-session benchmark: incremental maintenance vs per-window rebuild.

The kernel benches in :mod:`.harness` time one-shot batch scheduling;
this module times the *sustained* regime the session API exists for: a
rolling window of ``WINDOW`` live transactions over a 24x24 grid, where
every epoch commits the ``EPOCH_BATCH`` oldest transactions, admits the
next ``EPOCH_BATCH`` arrivals, and re-reads the full schedule.  The
incremental engine repairs only the dirty neighborhood per delta; the
baseline rebuilds the conflict graph and recolors from scratch each
epoch (the pre-1.1.0 service behavior).  Both produce identical
schedules -- the parity tests prove it -- so the comparison is pure
overhead.

Reported per engine: sustained throughput (committed transactions per
second of scheduling work) and the p99 epoch latency.  The snapshot
gate (:func:`~repro.benchreg.compare.check_session_gate`) requires the
incremental engine to sustain at least ``MIN_SESSION_SPEEDUP``x the
rebuild throughput.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "SESSION_TOTAL",
    "QUICK_SESSION_TOTAL",
    "WINDOW",
    "EPOCH_BATCH",
    "run_session_bench",
    "attach_session_results",
]

SESSION_TOTAL = 100_000
QUICK_SESSION_TOTAL = 20_000
WINDOW = 512
EPOCH_BATCH = 32
OBJECT_POOL = 2048
OBJECTS_PER_TXN = 2
_SEED = 20170722


def _session_workload(total: int):
    """``total`` pre-generated arrivals on grid(24), pool of 96 objects.

    Node assignment is ``tid % n`` so any ``WINDOW``-sized slice of the
    stream keeps the one-transaction-per-node invariant (WINDOW < 576).
    """
    from ..core.transaction import Transaction
    from ..network import grid

    net = grid(24)  # 576 nodes > WINDOW
    net.distance_matrix  # pay the all-pairs solve outside the timers
    rng = np.random.default_rng(_SEED)
    homes = {
        obj: int(node)
        for obj, node in enumerate(rng.integers(0, net.n, size=OBJECT_POOL))
    }
    txns = [
        Transaction(
            tid,
            tid % net.n,
            rng.choice(OBJECT_POOL, size=OBJECTS_PER_TXN, replace=False),
        )
        for tid in range(total)
    ]
    return net, homes, txns


def _epoch_metrics(latencies: List[float], committed: int) -> Dict[str, Any]:
    lat = np.asarray(latencies, dtype=np.float64)
    total_s = float(lat.sum())
    return {
        "committed": committed,
        "epochs": len(latencies),
        "total_s": total_s,
        "throughput_txn_s": committed / total_s if total_s > 0 else 0.0,
        "p50_latency_s": float(np.percentile(lat, 50)),
        "p99_latency_s": float(np.percentile(lat, 99)),
        "max_latency_s": float(lat.max()),
    }


def _run_incremental(net, homes, txns) -> Dict[str, Any]:
    from ..core.incremental import SchedulerSession

    with SchedulerSession(
        net, algo="greedy", mode="incremental", object_homes=homes
    ) as sess:
        sess.submit(txns[:WINDOW])
        sess.current_schedule()  # warm: first full coloring is untimed
        latencies: List[float] = []
        committed = 0
        next_tid = WINDOW
        while next_tid + EPOCH_BATCH <= len(txns):
            oldest = sess.active_ids()[:EPOCH_BATCH]
            batch = txns[next_tid:next_tid + EPOCH_BATCH]
            t0 = time.perf_counter()
            sess.commit(oldest)
            sess.submit(batch)
            sess.current_schedule()
            latencies.append(time.perf_counter() - t0)
            committed += len(oldest)
            next_tid += EPOCH_BATCH
        stats = sess.stats
    out = _epoch_metrics(latencies, committed)
    out["engine_stats"] = {
        k: v for k, v in stats.items()
        if k in ("repairs_examined", "repairs_changed", "full_rebuilds",
                 "memo_hits", "memo_misses")
    }
    return out


def _run_rebuild(net, homes, txns) -> Dict[str, Any]:
    from ..core.greedy import GreedyScheduler
    from ..core.instance import Instance

    sched = GreedyScheduler(kernel="vectorized")
    active: List = list(txns[:WINDOW])
    # warm: numba/numpy paths and the first instance build are untimed
    used = {o for t in active for o in t.objects}
    sched.schedule(Instance(net, active,
                            {o: homes[o] for o in sorted(used)}))
    latencies: List[float] = []
    committed = 0
    next_tid = WINDOW
    while next_tid + EPOCH_BATCH <= len(txns):
        batch = txns[next_tid:next_tid + EPOCH_BATCH]
        t0 = time.perf_counter()
        active = active[EPOCH_BATCH:] + batch
        used = {o for t in active for o in t.objects}
        inst = Instance(net, active, {o: homes[o] for o in sorted(used)})
        sched.schedule(inst)
        latencies.append(time.perf_counter() - t0)
        committed += EPOCH_BATCH
        next_tid += EPOCH_BATCH
    return _epoch_metrics(latencies, committed)


def run_session_bench(
    quick: bool = False, verbose: bool = False
) -> Dict[str, Any]:
    """Run both engines over the rolling workload; return the session block.

    The block is snapshot-ready: ``attach_session_results`` merges it
    into a :func:`~repro.benchreg.harness.run_harness` body.
    """
    total = QUICK_SESSION_TOTAL if quick else SESSION_TOTAL
    net, homes, txns = _session_workload(total)
    incremental = _run_incremental(net, homes, txns)
    rebuild = _run_rebuild(net, homes, txns)
    speedup = (
        incremental["throughput_txn_s"] / rebuild["throughput_txn_s"]
        if rebuild["throughput_txn_s"] > 0 else 0.0
    )
    block = {
        "workload": {
            "topology": "grid(24)",
            "total_transactions": total,
            "window": WINDOW,
            "epoch_batch": EPOCH_BATCH,
            "object_pool": OBJECT_POOL,
            "objects_per_txn": OBJECTS_PER_TXN,
        },
        "incremental": incremental,
        "rebuild": rebuild,
        "throughput_speedup": speedup,
    }
    if verbose:
        print(
            f"  session/incremental  {incremental['throughput_txn_s']:10.0f}"
            f" txn/s  p99 {incremental['p99_latency_s'] * 1e3:7.2f} ms"
        )
        print(
            f"  session/rebuild      {rebuild['throughput_txn_s']:10.0f}"
            f" txn/s  p99 {rebuild['p99_latency_s'] * 1e3:7.2f} ms"
        )
        print(f"  session speedup      {speedup:10.2f}x")
    return block


def attach_session_results(
    body: Dict[str, Any], block: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge a session block into a harness body (in place, returned).

    Adds per-engine entries under ``results`` (group ``session_rolling``
    keyed by per-epoch latency, so the generic 20%-regression compare
    covers them too) and the full block under ``session``.  The rebuild
    engine is filed as kernel ``reference`` and the incremental engine
    as ``vectorized`` so the group picks up an automatic speedup entry.
    """
    cal = body.get("calibration_s", 1.0) or 1.0
    pairs: Tuple[Tuple[str, str, Dict[str, Any]], ...] = (
        ("session_rolling/incremental", "vectorized", block["incremental"]),
        ("session_rolling/rebuild", "reference", block["rebuild"]),
    )
    meta = dict(block["workload"])
    for name, kernel, metrics in pairs:
        raw = metrics["total_s"] / metrics["epochs"]
        body.setdefault("results", {})[name] = {
            "raw_s": raw,
            "normalized": raw / cal,
            "group": "session_rolling",
            "kernel": kernel,
            "repeats": metrics["epochs"],
            "meta": dict(
                meta,
                throughput_txn_s=metrics["throughput_txn_s"],
                p99_latency_s=metrics["p99_latency_s"],
            ),
        }
    body.setdefault("speedups", {})["session_rolling"] = {
        "reference_s": block["rebuild"]["total_s"],
        "vectorized_s": block["incremental"]["total_s"],
        "speedup": block["throughput_speedup"],
    }
    body["session"] = block
    return body
