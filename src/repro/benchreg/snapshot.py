"""Snapshot persistence: ``BENCH_<n>.json`` files at the repo root.

Snapshots ride the same versioned JSON envelope as every other document
the library emits (:mod:`repro.io.serialize`), with kind
``"bench_snapshot"`` and their own ``bench_schema`` counter inside the
body.  ``<n>`` increments per snapshot; the regression gate compares the
newest run against the highest committed ``<n>``.
"""

from __future__ import annotations

import platform
import re
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..io.serialize import read_json, write_json

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SNAPSHOT_KIND",
    "write_snapshot",
    "load_snapshot",
    "latest_snapshot_path",
    "next_snapshot_path",
]

BENCH_SCHEMA_VERSION = 1
SNAPSHOT_KIND = "bench_snapshot"
_NAME_RE = re.compile(r"^BENCH_(\d+)\.json$")


def _machine() -> Dict[str, Any]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
    }


def write_snapshot(body: Dict[str, Any], path: str | Path) -> Path:
    """Write a harness result (from ``run_harness``) as a snapshot file."""
    path = Path(path)
    doc = {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": _machine(),
        **body,
    }
    write_json(path, SNAPSHOT_KIND, doc)
    return path


def load_snapshot(path: str | Path) -> Dict[str, Any]:
    """Read a snapshot body, validating envelope kind and bench schema."""
    from ..errors import ReproError

    body = read_json(path, expected_kind=SNAPSHOT_KIND)
    if body.get("bench_schema") != BENCH_SCHEMA_VERSION:
        raise ReproError(
            f"{path}: unsupported bench_schema {body.get('bench_schema')!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    return body


def _numbered(root: Path) -> Dict[int, Path]:
    out = {}
    for p in root.glob("BENCH_*.json"):
        m = _NAME_RE.match(p.name)
        if m:
            out[int(m.group(1))] = p
    return out


def latest_snapshot_path(root: str | Path = ".") -> Optional[Path]:
    """The highest-numbered ``BENCH_<n>.json`` under ``root``, if any."""
    found = _numbered(Path(root))
    return found[max(found)] if found else None


def next_snapshot_path(root: str | Path = ".") -> Path:
    """The next unused ``BENCH_<n>.json`` name under ``root``."""
    found = _numbered(Path(root))
    n = max(found) + 1 if found else 1
    return Path(root) / f"BENCH_{n}.json"
