"""Regression comparison between two bench snapshots.

A benchmark regresses only when it slowed past the threshold in *both*
raw seconds and calibration-normalized units.  The normalized check
makes snapshots portable -- a uniformly slower machine shifts every
benchmark and the calibration together, cancelling out -- while the raw
check keeps calibration jitter from amplifying same-machine noise into
a false failure.  A real slowdown moves both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = [
    "MIN_SESSION_SPEEDUP",
    "REGRESSION_THRESHOLD",
    "Regression",
    "check_session_gate",
    "compare_snapshots",
]

REGRESSION_THRESHOLD = 0.20
#: the incremental engine must sustain at least this multiple of the
#: per-window-rebuild throughput on the rolling-session workload
MIN_SESSION_SPEEDUP = 2.0


@dataclass(frozen=True)
class Regression:
    """One benchmark that slowed past the threshold (raw and normalized)."""

    name: str
    baseline: float
    current: float
    baseline_raw_s: float
    current_raw_s: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline

    def describe(self) -> str:
        return (
            f"{self.name}: {self.baseline:.3f} -> {self.current:.3f} "
            f"normalized ({(self.ratio - 1) * 100:+.1f}%), "
            f"{self.baseline_raw_s * 1e3:.2f} -> "
            f"{self.current_raw_s * 1e3:.2f} ms raw"
        )


def compare_snapshots(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
) -> Tuple[List[Regression], List[str]]:
    """Regressions plus human-readable notes (new/removed benchmarks).

    Only benchmark names present in both snapshots are compared;
    additions and removals are reported as notes, never failures.
    """
    base = baseline.get("results", {})
    cur = current.get("results", {})
    regressions: List[Regression] = []
    notes: List[str] = []
    for name in sorted(set(base) & set(cur)):
        b = float(base[name]["normalized"])
        c = float(cur[name]["normalized"])
        b_raw = float(base[name]["raw_s"])
        c_raw = float(cur[name]["raw_s"])
        if c > b * (1.0 + threshold) and c_raw > b_raw * (1.0 + threshold):
            regressions.append(Regression(name, b, c, b_raw, c_raw))
    for name in sorted(set(cur) - set(base)):
        notes.append(f"new benchmark (no baseline): {name}")
    for name in sorted(set(base) - set(cur)):
        notes.append(f"benchmark removed: {name}")
    return regressions, notes


def check_session_gate(
    body: Dict[str, Any], min_speedup: float = MIN_SESSION_SPEEDUP
) -> Tuple[bool, str]:
    """The rolling-session acceptance gate on one snapshot body.

    Passes iff the snapshot carries a ``session`` block whose incremental
    throughput is at least ``min_speedup`` times the rebuild engine's.
    Returns ``(ok, detail)``; a snapshot without a session block fails,
    so the gate cannot silently pass on a stale pre-session baseline.
    """
    block = body.get("session")
    if not block:
        return False, "snapshot has no session block (run with sessions on)"
    speedup = float(block.get("throughput_speedup", 0.0))
    inc = block.get("incremental", {})
    reb = block.get("rebuild", {})
    detail = (
        f"incremental {inc.get('throughput_txn_s', 0):.0f} txn/s "
        f"(p99 {inc.get('p99_latency_s', 0) * 1e3:.2f} ms) vs rebuild "
        f"{reb.get('throughput_txn_s', 0):.0f} txn/s "
        f"(p99 {reb.get('p99_latency_s', 0) * 1e3:.2f} ms): "
        f"{speedup:.2f}x (need >= {min_speedup:.1f}x)"
    )
    return speedup >= min_speedup, detail
