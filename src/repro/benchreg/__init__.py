"""Bench-regression harness: schema-versioned performance snapshots.

``run_harness`` times a fixed set of kernel benchmarks (reference vs
vectorized where both exist), normalizes the timings by a calibration
workload so snapshots from different machines stay comparable, and
writes ``BENCH_<n>.json``.  ``compare_snapshots`` flags any benchmark
whose normalized time regressed by more than the threshold -- the
``make bench-check`` gate.
"""

from .harness import BENCH_SPECS, BenchSpec, merge_runs, run_harness
from .session import attach_session_results, run_session_bench
from .snapshot import (
    BENCH_SCHEMA_VERSION,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    write_snapshot,
)
from .compare import (
    MIN_SESSION_SPEEDUP,
    REGRESSION_THRESHOLD,
    Regression,
    check_session_gate,
    compare_snapshots,
)

__all__ = [
    "BENCH_SPECS",
    "BenchSpec",
    "run_harness",
    "merge_runs",
    "run_session_bench",
    "attach_session_results",
    "MIN_SESSION_SPEEDUP",
    "check_session_gate",
    "BENCH_SCHEMA_VERSION",
    "write_snapshot",
    "load_snapshot",
    "latest_snapshot_path",
    "next_snapshot_path",
    "REGRESSION_THRESHOLD",
    "Regression",
    "compare_snapshots",
]
