"""The benchmark definitions and timing loop.

Each :class:`BenchSpec` names one timed closure over a shared, seeded
workload (576 transactions on a 24x24 grid -- above the 512-transaction
floor where the vectorized kernels earn their keep).  Timing takes the
minimum over ``repeats`` runs (minimum, not mean: noise only ever adds
time), and every snapshot records a calibration measurement of a fixed
numpy+python workload so times can be compared across machines as
multiples of the calibration rather than raw seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

import numpy as np

__all__ = ["BenchSpec", "BENCH_SPECS", "run_harness", "merge_runs", "calibrate"]

SEED = 20170722
#: per-benchmark sampling budget, seconds: keep re-running until this much
#: timed work has accumulated (min 5 runs, capped at MAX_RUNS).  A fixed
#: repeat count under-samples sub-millisecond benches, whose min-of-few is
#: then dominated by scheduler noise.
BUDGET_S = 0.5
QUICK_BUDGET_S = 0.35
MAX_RUNS = 200


@dataclass(frozen=True)
class BenchSpec:
    """One timed benchmark.

    ``setup`` builds the inputs once (untimed); ``run`` is the timed
    closure, called with setup's result.  Specs sharing a ``group`` with
    kernels ``reference`` and ``vectorized`` get a speedup entry in the
    snapshot.
    """

    name: str
    group: str
    kernel: str
    setup: Callable[[], Any]
    run: Callable[[Any], Any]
    meta: Dict[str, Any] = field(default_factory=dict)


def _workload():
    from ..network import grid
    from ..workloads import random_k_subsets

    rng = np.random.default_rng(SEED)
    net = grid(24)  # 576 nodes
    inst = random_k_subsets(net, w=96, k=4, rng=rng)
    net.distance_matrix  # pay the all-pairs solve outside the timers
    return net, inst


_META = {"topology": "grid(24)", "transactions": 576, "w": 96, "k": 4}


def _dep_setup():
    _, inst = _workload()
    return inst


def _color_setup(kernel):
    """Graph built by the *same* kernel family that will colour it --
    the pairing each pipeline actually runs."""

    def setup():
        from ..core.dependency import DependencyGraph

        _, inst = _workload()
        return DependencyGraph.build(inst, kernel=kernel)

    return setup


def _schedule_setup():
    _, inst = _workload()
    return inst


def _execute_setup():
    from ..core.greedy import GreedyScheduler

    _, inst = _workload()
    return GreedyScheduler(kernel="vectorized").schedule(inst)


def _masked_setup():
    net, inst = _workload()
    net._ensure_pred()
    return net, inst


def _dep_run(kernel):
    from ..core.dependency import DependencyGraph

    return lambda inst: DependencyGraph.build(inst, kernel=kernel)


def _color_run(kernel):
    from ..core.coloring import greedy_color

    return lambda graph: greedy_color(graph, kernel=kernel)


def _pipeline_run(kernel):
    from ..core.coloring import greedy_color
    from ..core.dependency import DependencyGraph

    def run(inst):
        return greedy_color(DependencyGraph.build(inst, kernel=kernel),
                            kernel=kernel)

    return run


def _schedule_run(kernel):
    from ..core.greedy import GreedyScheduler

    return lambda inst: GreedyScheduler(kernel=kernel).schedule(inst)


def _execute_run(kernel):
    from ..sim.engine import execute

    def run(sched):
        sched._itineraries = None  # force a fresh routing pass
        return execute(sched, kernel=kernel)

    return run


def _masked_run(arg):
    net, inst = arg
    view = net.masked([(0, 1), (24, 25)])
    src = np.arange(0, 570, dtype=np.int64)
    dst = (src * 7 + 3) % net.n
    return view.pair_distances(src, dst)


def _specs() -> Tuple[BenchSpec, ...]:
    specs = []
    for group, setupf, runf in (
        ("dependency_build", lambda kernel: _dep_setup, _dep_run),
        ("greedy_color", _color_setup, _color_run),
        ("dependency_greedy", lambda kernel: _dep_setup, _pipeline_run),
        ("greedy_schedule", lambda kernel: _schedule_setup, _schedule_run),
        ("execute", lambda kernel: _execute_setup, _execute_run),
    ):
        for kernel in ("reference", "vectorized"):
            specs.append(
                BenchSpec(
                    name=f"{group}/{kernel}",
                    group=group,
                    kernel=kernel,
                    setup=setupf(kernel),
                    run=runf(kernel),
                    meta=dict(_META),
                )
            )
    specs.append(
        BenchSpec(
            name="masked_network/pair_distances",
            group="masked_network",
            kernel="vectorized",
            setup=_masked_setup,
            run=_masked_run,
            meta={"topology": "grid(24)", "down_edges": 2, "pairs": 570},
        )
    )
    return tuple(specs)


BENCH_SPECS: Tuple[BenchSpec, ...] = _specs()


def calibrate() -> float:
    """Seconds for a fixed numpy+python reference workload.

    A mix of array sorting and a python-level loop, roughly mirroring the
    kernels' own mix; used as the unit for machine-normalized timings.
    """
    rng = np.random.default_rng(0)
    a = rng.integers(0, 1 << 30, size=200_000)
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        np.sort(a)
        acc = 0
        for i in range(50_000):
            acc += i * 31 % 1009
        best = min(best, time.perf_counter() - t0)
    return best


def _time(spec: BenchSpec, budget_s: float) -> Tuple[float, int]:
    """Minimum runtime over as many runs as fit in ``budget_s``."""
    arg = spec.setup()
    spec.run(arg)  # warm caches outside the timed region
    best = float("inf")
    spent = 0.0
    runs = 0
    while runs < 5 or (spent < budget_s and runs < MAX_RUNS):
        t0 = time.perf_counter()
        spec.run(arg)
        dt = time.perf_counter() - t0
        best = min(best, dt)
        spent += dt
        runs += 1
    return best, runs


def run_harness(quick: bool = False, verbose: bool = False) -> Dict[str, Any]:
    """Time every spec and return the snapshot body (see snapshot.py).

    ``quick`` shrinks the sampling budget -- same benchmarks, same sizes,
    so quick results remain comparable to full snapshots (just noisier).
    """
    budget = QUICK_BUDGET_S if quick else BUDGET_S
    cal = calibrate()
    raws = {spec.name: _time(spec, budget) for spec in BENCH_SPECS}
    # recalibrate after the timing pass and keep the faster measurement:
    # machine-load drift during the run otherwise skews every normalization
    cal = min(cal, calibrate())
    results: Dict[str, Any] = {}
    for spec in BENCH_SPECS:
        raw, runs = raws[spec.name]
        results[spec.name] = {
            "raw_s": raw,
            "normalized": raw / cal,
            "group": spec.group,
            "kernel": spec.kernel,
            "repeats": runs,
            "meta": spec.meta,
        }
        if verbose:
            print(f"  {spec.name:32s} {raw * 1e3:9.2f} ms "
                  f"({raw / cal:6.2f}x cal)")
    speedups: Dict[str, Any] = {}
    by_group: Dict[str, Dict[str, float]] = {}
    for name, res in results.items():
        by_group.setdefault(res["group"], {})[res["kernel"]] = res["raw_s"]
    for group, kernels in by_group.items():
        if "reference" in kernels and "vectorized" in kernels:
            speedups[group] = {
                "reference_s": kernels["reference"],
                "vectorized_s": kernels["vectorized"],
                "speedup": kernels["reference"] / kernels["vectorized"],
            }
    return {
        "calibration_s": cal,
        "quick": quick,
        "results": results,
        "speedups": speedups,
    }


def merge_runs(bodies, reduce="median"):
    """Merge several ``run_harness`` bodies into one, per-bench.

    ``reduce="median"`` (baselines): a single pass inherits whatever
    machine window it lands in, and a min caught in an anomalously fast
    window makes every later comparison look like a regression -- the
    median across passes votes such windows out.  ``reduce="min"``
    (regression checks): noise only ever inflates a timing, so the best
    the machine can do *now*, compared against the baseline's typical
    speed, is robust to load spikes during the check while a real
    slowdown still shows up in every pass.
    """
    if not bodies:
        raise ValueError("merge_runs(): need at least one harness body")
    if reduce not in ("median", "min"):
        raise ValueError(f"merge_runs(): unknown reduce {reduce!r}")
    agg = np.median if reduce == "median" else np.min
    if len(bodies) == 1:
        return bodies[0]
    names = list(bodies[0]["results"])
    cal = float(agg([b["calibration_s"] for b in bodies]))
    results = {}
    for name in names:
        raw = float(agg([b["results"][name]["raw_s"] for b in bodies]))
        res = dict(bodies[0]["results"][name])
        res["raw_s"] = raw
        res["normalized"] = raw / cal
        res["repeats"] = sum(b["results"][name]["repeats"] for b in bodies)
        results[name] = res
    speedups = {}
    by_group = {}
    for name, res in results.items():
        by_group.setdefault(res["group"], {})[res["kernel"]] = res["raw_s"]
    for group, kernels in by_group.items():
        if "reference" in kernels and "vectorized" in kernels:
            speedups[group] = {
                "reference_s": kernels["reference"],
                "vectorized_s": kernels["vectorized"],
                "speedup": kernels["reference"] / kernels["vectorized"],
            }
    return {
        "calibration_s": cal,
        "quick": bodies[0]["quick"],
        "merged_runs": len(bodies),
        "results": results,
        "speedups": speedups,
    }
