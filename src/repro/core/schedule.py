"""Execution schedules and their feasibility semantics (§2.1, Def. 1).

A schedule assigns every transaction its commit time step ``t(T_i)``.  The
induced *itinerary* of each object is: start at its home at time 0, then
visit its requesting transactions in commit-time order.  The schedule is
feasible iff every itinerary leg ``(t_a, u) -> (t_b, v)`` satisfies
``t_b - t_a >= dist(u, v)``: objects move at unit speed along shortest
paths, and a transaction may forward its objects in the same step it
commits (the paper's receive/execute/forward step semantics).

Two transactions sharing an object therefore can never commit at the same
time step (their nodes are distinct, so the distance between them is >= 1);
the checker rejects such ties, which is exactly the conflict-freedom the
paper's schedules guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import InfeasibleScheduleError
from .instance import Instance

__all__ = ["Visit", "Schedule"]


@dataclass(frozen=True, order=True)
class Visit:
    """One stop of an object's itinerary: be at ``node`` at time ``time``."""

    time: int
    node: int
    tid: int = -1  # committing transaction, or -1 for the initial placement


class Schedule:
    """Commit times for every transaction of an :class:`Instance`.

    Parameters
    ----------
    instance:
        The problem being scheduled.
    commit_times:
        ``tid -> commit time step``; must cover every transaction with a
        positive integer time.
    meta:
        Free-form diagnostics recorded by the scheduler (phase boundaries,
        rounds used, colour counts, ...); surfaced in experiment reports.
    """

    def __init__(
        self,
        instance: Instance,
        commit_times: Mapping[int, int],
        meta: Mapping[str, object] | None = None,
    ) -> None:
        self.instance = instance
        self.commit_times: dict[int, int] = {}
        for t in instance.transactions:
            if t.tid not in commit_times:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} has no commit time"
                )
            ct = int(commit_times[t.tid])
            if ct < 1:
                raise InfeasibleScheduleError(
                    f"transaction {t.tid} commit time {ct} must be >= 1"
                )
            self.commit_times[t.tid] = ct
        self.meta: dict[str, object] = dict(meta or {})
        self._itineraries: dict[int, tuple[Visit, ...]] | None = None

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #

    @property
    def makespan(self) -> int:
        """Time at which the last transaction commits (Def. 1)."""
        return max(self.commit_times.values())

    def time_of(self, tid: int) -> int:
        """Commit time of transaction ``tid``."""
        return self.commit_times[tid]

    def itinerary(self, obj: int) -> tuple[Visit, ...]:
        """The object's visit sequence: home at t=0, then users by commit time."""
        return self._build_itineraries()[obj]

    def itineraries(self) -> Iterator[tuple[int, tuple[Visit, ...]]]:
        """Iterate ``(object id, itinerary)`` for every object."""
        return iter(self._build_itineraries().items())

    def _build_itineraries(self) -> dict[int, tuple[Visit, ...]]:
        if self._itineraries is None:
            inst = self.instance
            built: dict[int, tuple[Visit, ...]] = {}
            for obj in inst.objects:
                visits = [Visit(0, inst.home(obj), -1)]
                stops = sorted(
                    (self.commit_times[t.tid], t.node, t.tid)
                    for t in inst.users(obj)
                )
                visits.extend(Visit(tm, nd, td) for tm, nd, td in stops)
                built[obj] = tuple(visits)
            self._itineraries = built
        return self._itineraries

    # ------------------------------------------------------------------ #
    # feasibility
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Raise :class:`InfeasibleScheduleError` unless feasible.

        Checks every itinerary leg against the shortest-path distance and
        rejects simultaneous commits of conflicting transactions.
        """
        dist = self.instance.network.dist
        for obj, visits in self._build_itineraries().items():
            for a, b in zip(visits, visits[1:]):
                gap = b.time - a.time
                d = dist(a.node, b.node)
                if gap < d:
                    raise InfeasibleScheduleError(
                        f"object {obj}: leg (t={a.time}, node {a.node}) -> "
                        f"(t={b.time}, node {b.node}) allows {gap} steps but "
                        f"needs {d}"
                    )
                if gap == 0 and a.node != b.node:
                    raise InfeasibleScheduleError(
                        f"object {obj} required at nodes {a.node} and "
                        f"{b.node} simultaneously at t={a.time}"
                    )

    def is_feasible(self) -> bool:
        """True iff :meth:`validate` passes."""
        try:
            self.validate()
        except InfeasibleScheduleError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #

    @property
    def communication_cost(self) -> int:
        """Total shortest-path distance travelled by all objects.

        This is the communication-cost objective of the prior work the
        paper contrasts with (Busch et al. [3] show it trades off against
        execution time).
        """
        dist = self.instance.network.dist
        total = 0
        for _, visits in self._build_itineraries().items():
            for a, b in zip(visits, visits[1:]):
                total += dist(a.node, b.node)
        return total

    def as_dict(self) -> dict[str, object]:
        """Plain-data summary (for tables / JSON)."""
        return {
            "makespan": self.makespan,
            "communication_cost": self.communication_cost,
            "transactions": len(self.commit_times),
            **{f"meta.{k}": v for k, v in self.meta.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(m={len(self.commit_times)}, makespan={self.makespan})"
        )
