"""Weighted transaction dependency (conflict) graph ``H`` (§2.3).

Each node of ``H`` is a transaction; an edge joins two transactions that
share at least one object, weighted by the shortest-path distance in ``G``
between their host nodes.  The greedy schedule colours this graph; the key
quantities are ``h_max`` (maximum edge weight -- itself a lower bound on
execution time, since some object must cross that distance) and the maximum
degree ``Delta``, giving the weighted degree ``Gamma = h_max * Delta`` that
bounds the number of colours.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator

from .instance import Instance

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """The conflict graph of an instance (or of a subset of it)."""

    def __init__(self, adjacency: Dict[int, Dict[int, int]]) -> None:
        self._adj = adjacency

    @classmethod
    def build(
        cls, instance: Instance, tids: Iterable[int] | None = None
    ) -> "DependencyGraph":
        """Construct ``H`` for ``instance``, optionally restricted to ``tids``.

        Distances are measured in the full graph ``G`` even for restricted
        builds (the restriction narrows *which* transactions participate,
        not how far apart they are).
        """
        keep = None if tids is None else set(tids)
        dist = instance.network.dist
        adj: Dict[int, Dict[int, int]] = {}
        for t in instance.transactions:
            if keep is None or t.tid in keep:
                adj[t.tid] = {}
        for obj in instance.objects:
            users = [
                t
                for t in instance.users(obj)
                if keep is None or t.tid in keep
            ]
            for i, a in enumerate(users):
                for b in users[i + 1 :]:
                    if b.tid not in adj[a.tid]:
                        d = dist(a.node, b.node)
                        adj[a.tid][b.tid] = d
                        adj[b.tid][a.tid] = d
        return cls(adj)

    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of transactions in ``H``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of conflict edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[int]:
        """Transaction ids, ascending."""
        return iter(sorted(self._adj))

    def neighbors(self, tid: int) -> Dict[int, int]:
        """``neighbor tid -> edge weight`` map for ``tid``."""
        return self._adj[tid]

    def degree(self, tid: int) -> int:
        """Number of conflicting transactions."""
        return len(self._adj[tid])

    @property
    def max_degree(self) -> int:
        """``Delta``: the most conflicts any transaction has."""
        return max((len(n) for n in self._adj.values()), default=0)

    @property
    def h_max(self) -> int:
        """Maximum conflict-edge weight (1 if there are no edges).

        ``h_max`` is both the colour spacing used by the greedy schedule and
        a lower bound on any schedule's makespan when an edge exists.
        """
        best = 0
        for nbrs in self._adj.values():
            for w in nbrs.values():
                if w > best:
                    best = w
        return max(best, 1)

    @property
    def weighted_degree(self) -> int:
        """``Gamma = h_max * Delta``; greedy uses at most ``Gamma + 1`` colours."""
        return self.h_max * self.max_degree

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DependencyGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"h_max={self.h_max}, Delta={self.max_degree})"
        )
