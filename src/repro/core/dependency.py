"""Weighted transaction dependency (conflict) graph ``H`` (§2.3).

Each node of ``H`` is a transaction; an edge joins two transactions that
share at least one object, weighted by the shortest-path distance in ``G``
between their host nodes.  The greedy schedule colours this graph; the key
quantities are ``h_max`` (maximum edge weight -- itself a lower bound on
execution time, since some object must cross that distance) and the maximum
degree ``Delta``, giving the weighted degree ``Gamma = h_max * Delta`` that
bounds the number of colours.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

import numpy as np

from .instance import Instance
from .kernels import resolve_kernel

__all__ = ["DependencyGraph", "ArrayDependencyGraph"]


class DependencyGraph:
    """The conflict graph of an instance (or of a subset of it)."""

    def __init__(self, adjacency: Dict[int, Dict[int, int]]) -> None:
        self._adj = adjacency

    @classmethod
    def build(
        cls,
        instance: Instance,
        tids: Iterable[int] | None = None,
        kernel: str = "auto",
    ) -> "DependencyGraph":
        """Construct ``H`` for ``instance``, optionally restricted to ``tids``.

        Distances are measured in the full graph ``G`` even for restricted
        builds (the restriction narrows *which* transactions participate,
        not how far apart they are).  ``kernel`` selects the construction
        path (see :mod:`repro.core.kernels`); both produce the same graph.
        """
        if resolve_kernel(kernel) == "vectorized":
            return ArrayDependencyGraph.build_arrays(instance, tids)
        keep = None if tids is None else set(tids)
        dist = instance.network.dist
        adj: Dict[int, Dict[int, int]] = {}
        for t in instance.transactions:
            if keep is None or t.tid in keep:
                adj[t.tid] = {}
        for obj in instance.objects:
            users = [
                t
                for t in instance.users(obj)
                if keep is None or t.tid in keep
            ]
            for i, a in enumerate(users):
                for b in users[i + 1 :]:
                    if b.tid not in adj[a.tid]:
                        d = dist(a.node, b.node)
                        adj[a.tid][b.tid] = d
                        adj[b.tid][a.tid] = d
        return cls(adj)

    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of transactions in ``H``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of conflict edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[int]:
        """Transaction ids, ascending."""
        return iter(sorted(self._adj))

    def neighbors(self, tid: int) -> Dict[int, int]:
        """``neighbor tid -> edge weight`` map for ``tid``."""
        return self._adj[tid]

    def degree(self, tid: int) -> int:
        """Number of conflicting transactions."""
        return len(self._adj[tid])

    @property
    def max_degree(self) -> int:
        """``Delta``: the most conflicts any transaction has."""
        return max((len(n) for n in self._adj.values()), default=0)

    @property
    def h_max(self) -> int:
        """Maximum conflict-edge weight (1 if there are no edges).

        ``h_max`` is both the colour spacing used by the greedy schedule and
        a lower bound on any schedule's makespan when an edge exists.
        """
        best = 0
        for nbrs in self._adj.values():
            for w in nbrs.values():
                if w > best:
                    best = w
        return max(best, 1)

    @property
    def weighted_degree(self) -> int:
        """``Gamma = h_max * Delta``; greedy uses at most ``Gamma + 1`` colours."""
        return self.h_max * self.max_degree

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR view ``(tids, indptr, indices, weights)`` of the graph.

        ``tids`` is the sorted vertex list; row ``i`` of the CSR structure
        holds the neighbours of ``tids[i]`` as *positions into ``tids``*
        (``indices``) with parallel edge ``weights``.  Both directions of
        every edge are present.  The vectorized colourer consumes this
        view; the dict-backed graph materializes it on demand.
        """
        tids = sorted(self._adj)
        pos = {t: i for i, t in enumerate(tids)}
        indptr = np.zeros(len(tids) + 1, dtype=np.int64)
        indices: list[int] = []
        weights: list[int] = []
        for i, t in enumerate(tids):
            nbrs = self._adj[t]
            for nbr in sorted(nbrs):
                indices.append(pos[nbr])
                weights.append(nbrs[nbr])
            indptr[i + 1] = len(indices)
        return (
            np.asarray(tids, dtype=np.int64),
            indptr,
            np.asarray(indices, dtype=np.int64),
            np.asarray(weights, dtype=np.int64),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DependencyGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"h_max={self.h_max}, Delta={self.max_degree})"
        )


class ArrayDependencyGraph(DependencyGraph):
    """CSR-backed conflict graph built by the vectorized kernel.

    Same public surface as :class:`DependencyGraph`; the adjacency dicts
    are materialized lazily, so the hot pipeline (build then colour) never
    pays for per-edge Python dict construction.  The builder enumerates
    conflict pairs per object with ``triu_indices`` (the object ->
    transaction inverted index the :class:`Instance` already maintains),
    dedupes pairs with one ``np.unique``, and gathers all edge weights in
    a single fancy-index read of the cached distance matrix.
    """

    def __init__(
        self,
        tids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        self._tids = tids
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._adj_lazy: Dict[int, Dict[int, int]] | None = None

    @classmethod
    def build_arrays(
        cls, instance: Instance, tids: Iterable[int] | None = None
    ) -> "ArrayDependencyGraph":
        """Vectorized construction of ``H`` (see :meth:`DependencyGraph.build`)."""
        keep = None if tids is None else set(tids)
        kept = [
            t
            for t in instance.transactions
            if keep is None or t.tid in keep
        ]
        tid_arr = np.asarray([t.tid for t in kept], dtype=np.int64)
        perm = np.argsort(tid_arr, kind="stable")
        vert = tid_arr[perm]
        node_of = np.asarray([t.node for t in kept], dtype=np.int64)[perm]
        m = len(vert)
        pos_of = {int(t): i for i, t in enumerate(vert.tolist())}

        # flat (object, user) incidence list over objects with >= 2 users
        seg_lens: list[int] = []
        upos_flat: list[int] = []
        for obj in instance.objects:
            users = instance.users(obj)
            if keep is None:
                ps = [pos_of[t.tid] for t in users]
            else:
                ps = [pos_of[t.tid] for t in users if t.tid in keep]
            if len(ps) >= 2:
                seg_lens.append(len(ps))
                upos_flat.extend(ps)

        if not seg_lens:
            empty = np.zeros(0, dtype=np.int64)
            return cls(vert, np.zeros(m + 1, dtype=np.int64), empty, empty)

        # all within-object pairs in one shot: incidence i pairs with the
        # counts[i] incidences after it in its own segment
        seg = np.asarray(seg_lens, dtype=np.int64)
        upos = np.asarray(upos_flat, dtype=np.int64)
        n_inc = len(upos)
        starts = np.zeros(len(seg), dtype=np.int64)
        np.cumsum(seg[:-1], out=starts[1:])
        pos_in_seg = np.arange(n_inc, dtype=np.int64) - np.repeat(starts, seg)
        counts = np.repeat(seg, seg) - 1 - pos_in_seg
        total = int(counts.sum())
        a_idx = np.repeat(np.arange(n_inc, dtype=np.int64), counts)
        cum = np.zeros(n_inc, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        b_idx = a_idx + 1 + (np.arange(total, dtype=np.int64)
                             - np.repeat(cum, counts))
        a = upos[a_idx]
        b = upos[b_idx]

        # dedupe pairs sharing several objects: sort-based unique (the
        # hash-based np.unique is ~15x slower at this size)
        keys = np.sort(np.minimum(a, b) * m + np.maximum(a, b))
        if len(keys) > 1:
            keys = keys[np.concatenate(([True], keys[1:] != keys[:-1]))]
        lo, hi = keys // m, keys % m
        w = instance.network.pair_distances(node_of[lo], node_of[hi])

        # both edge directions, compacted by scipy's C-level COO -> CSR
        from scipy.sparse import csr_array

        mat = csr_array(
            (
                np.concatenate([w, w]),
                (np.concatenate([lo, hi]), np.concatenate([hi, lo])),
            ),
            shape=(m, m),
        )
        return cls(
            vert,
            mat.indptr.astype(np.int64),
            mat.indices.astype(np.int64),
            mat.data.astype(np.int64),
        )

    # ------------------------------------------------------------------ #
    # lazy dict view (for callers that want the reference surface)
    # ------------------------------------------------------------------ #

    @property
    def _adj(self) -> Dict[int, Dict[int, int]]:
        if self._adj_lazy is None:
            tids = self._tids.tolist()
            indptr = self._indptr.tolist()
            nbr_tids = self._tids[self._indices].tolist()
            weights = self._weights.tolist()
            self._adj_lazy = {
                t: dict(
                    zip(
                        nbr_tids[indptr[i] : indptr[i + 1]],
                        weights[indptr[i] : indptr[i + 1]],
                    )
                )
                for i, t in enumerate(tids)
            }
        return self._adj_lazy

    # ------------------------------------------------------------------ #
    # array-native accessors (no dict materialization)
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of transactions in ``H``."""
        return len(self._tids)

    @property
    def num_edges(self) -> int:
        """Number of conflict edges."""
        return len(self._indices) // 2

    def vertices(self) -> Iterator[int]:
        """Transaction ids, ascending."""
        return iter(self._tids.tolist())

    def degree(self, tid: int) -> int:
        """Number of conflicting transactions."""
        i = int(np.searchsorted(self._tids, tid))
        return int(self._indptr[i + 1] - self._indptr[i])

    @property
    def max_degree(self) -> int:
        """``Delta``: the most conflicts any transaction has."""
        if len(self._tids) == 0:
            return 0
        return int(np.diff(self._indptr).max())

    @property
    def h_max(self) -> int:
        """Maximum conflict-edge weight (1 if there are no edges)."""
        if len(self._weights) == 0:
            return 1
        return max(int(self._weights.max()), 1)

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The stored CSR arrays (no conversion needed)."""
        return self._tids, self._indptr, self._indices, self._weights
