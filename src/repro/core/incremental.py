"""Incremental scheduling engine behind the stateful session API.

The offline schedulers rebuild the conflict graph ``H`` and recolor from
scratch on every batch.  This module maintains ``H`` *under deltas*: a
per-object inverted index finds the conflict neighborhood of an arriving
transaction, a :class:`DistanceMemo` caches every
``Network.pair_distances`` gather across epochs keyed by unordered
``(src, dst)`` node pairs, and a bounded repair frontier recolors only
the dirty neighborhoods a delta invalidates (falling back to a full
recolor of the live window when the frontier exceeds a threshold).

The load-bearing invariant is that the batch greedy colouring of §2.3,
run in ascending-tid order, is a *canonical fixpoint*: each vertex's
slot is the minimum excludant of its smaller-tid neighbours' slots,

    ``slot(v) = mex{ slot(u) : u in N(v), u < v }``

so a vertex's colour never depends on larger-tid vertices.  Any delta
therefore dirties only the *higher*-tid side of the touched
neighbourhood, and repairing dirty vertices in ascending tid order
converges to exactly the schedule the batch scheduler would produce on
the equivalent static instance -- regardless of submission order.  That
is what makes the session's ``current_schedule()`` bit-identical to
``repro.schedule()`` (the parity property tests assert it field by
field) while each delta costs ``O(|frontier| * Delta)`` instead of the
batch ``O(m * Delta)`` rebuild.

Public surface:

* :class:`SchedulerSession` -- the stateful session with ``submit`` /
  ``commit`` / ``abort`` / ``current_schedule`` / ``snapshot``;
* :func:`open_session` -- the facade constructor re-exported as
  ``repro.open_session(network)``;
* :class:`IncrementalScheduler` -- a one-shot :class:`Scheduler`
  adapter so ``schedule(inst, algo="incremental")`` and the
  ``SCHEDULER_INFO`` listing work unchanged;
* :class:`IncrementalConflictGraph` / :class:`DistanceMemo` -- the
  engine pieces, exposed for tests and benchmarks.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..errors import SessionError
from ..obs.events import SessionDeltaEvent
from ..obs.recorder import Recorder, active
from .dependency import ArrayDependencyGraph
from .instance import Instance
from .kernels import resolve_kernel
from .schedule import Schedule
from .scheduler import Scheduler, register
from .transaction import Transaction

__all__ = [
    "GREEDY_FAMILY",
    "DistanceMemo",
    "IncrementalConflictGraph",
    "SchedulerSession",
    "IncrementalScheduler",
    "open_session",
]

#: scheduler names the incremental engine can maintain: they all run the
#: identical §2.3 greedy colouring (clique / diameter merely attach
#: different theorem bounds), so the mex fixpoint above applies.
GREEDY_FAMILY: Tuple[str, ...] = ("greedy", "clique", "diameter")

_MODES = ("auto", "batch", "incremental")
_HOME_POLICIES = ("static", "follow")

#: repair frontiers never fall back to a full recolor below this many
#: examined vertices, whatever the threshold says -- tiny windows are
#: cheaper to repair than to rebuild.
_MIN_FRONTIER = 16


class DistanceMemo:
    """Shortest-path distances memoized across epochs by node pair.

    The vectorized batch builder pays one ``Network.pair_distances``
    gather per rebuild; a long-lived session sees the same (src, dst)
    pairs over and over as transactions on the same nodes conflict in
    window after window.  The memo keys on the unordered pair, serves
    repeats from the cache, and gathers only the misses in a single
    vectorized call.
    """

    def __init__(self, network) -> None:
        self.network = network
        self._cache: Dict[Tuple[int, int], int] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def dist(self, u: int, v: int) -> int:
        """Memoized ``network.dist(u, v)``."""
        key = (u, v) if u <= v else (v, u)
        d = self._cache.get(key)
        if d is None:
            self.misses += 1
            d = int(self.network.dist(u, v))
            self._cache[key] = d
        else:
            self.hits += 1
        return d

    def pair_distances(self, us: List[int], vs: List[int]) -> List[int]:
        """Memoized ``network.pair_distances`` gather (misses batched)."""
        out: List[int] = [0] * len(us)
        miss: List[int] = []
        for i, (u, v) in enumerate(zip(us, vs)):
            key = (u, v) if u <= v else (v, u)
            d = self._cache.get(key)
            if d is None:
                miss.append(i)
            else:
                self.hits += 1
                out[i] = d
        if miss:
            self.misses += len(miss)
            mu = np.asarray([us[i] for i in miss], dtype=np.int64)
            mv = np.asarray([vs[i] for i in miss], dtype=np.int64)
            ds = self.network.pair_distances(mu, mv)
            for i, d in zip(miss, ds.tolist()):
                u, v = us[i], vs[i]
                key = (u, v) if u <= v else (v, u)
                self._cache[key] = int(d)
                out[i] = int(d)
        return out

    def stats(self) -> Dict[str, int]:
        """``{"hits", "misses", "size"}`` counters (JSON-safe)."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


class IncrementalConflictGraph:
    """The conflict graph ``H`` maintained under transaction deltas.

    Keeps, for the live transaction set: the per-object inverted index
    (object -> user tids), the weighted adjacency, the greedy colour
    *slots* (the colour is derived as ``slot * h_max + 1`` on read, so a
    changing ``h_max`` never invalidates stored state), and the edge
    weight multiset backing an O(1)-amortized ``h_max``.

    ``add`` / ``remove`` return ``(examined, changed, rebuilt)`` repair
    statistics; the invariant after every delta is that slots equal the
    batch greedy colouring of the live set in ascending-tid order.
    """

    def __init__(self, network, *, rebuild_threshold: float = 0.5) -> None:
        if not 0.0 < rebuild_threshold <= 1.0:
            raise SessionError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold!r}"
            )
        self.memo = DistanceMemo(network)
        self.rebuild_threshold = float(rebuild_threshold)
        self._txn: Dict[int, Transaction] = {}
        self._node_tid: Dict[int, int] = {}
        self._obj_users: Dict[int, Set[int]] = {}
        self._adj: Dict[int, Dict[int, int]] = {}
        self._slot: Dict[int, int] = {}
        self._wcount: Dict[int, int] = {}
        self._hraw = 0
        # refcount mirrors of the derived quantities, so reads stay O(1)
        # amortized instead of rescanning the live window per epoch
        self._slot_count: Dict[int, int] = {}
        self._degcount: Dict[int, int] = {}
        self._degmax = 0
        # objects whose positioning need may have changed since the last
        # drain (slot moved, user set changed); an h_max change, which
        # shifts every colour at once, sets the all-dirty flag instead
        self._dirty_objs: Set[int] = set()
        self._all_dirty = True
        self._graph_cache: Optional[ArrayDependencyGraph] = None
        self.repairs_examined = 0
        self.repairs_changed = 0
        self.full_rebuilds = 0

    # ------------------------------------------------------------------ #
    # read surface (mirrors DependencyGraph's quantities)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._txn)

    def __contains__(self, tid: int) -> bool:
        return tid in self._txn

    @property
    def h_max(self) -> int:
        """Maximum live conflict-edge weight (1 if there are no edges)."""
        return max(self._hraw, 1)

    @property
    def max_degree(self) -> int:
        """``Delta`` over the live set."""
        return self._degmax

    @property
    def weighted_degree(self) -> int:
        """``Gamma = h_max * Delta`` over the live set."""
        return self.h_max * self.max_degree

    @property
    def colors_used(self) -> int:
        """Distinct colours in the current colouring."""
        return len(self._slot_count)

    def tids(self) -> List[int]:
        """Live transaction ids, ascending."""
        return sorted(self._txn)

    def transaction(self, tid: int) -> Transaction:
        """The live transaction with id ``tid``."""
        return self._txn[tid]

    def color(self, tid: int) -> int:
        """Current colour (= uncorrected commit step) of a live tid."""
        return self._slot[tid] * self.h_max + 1

    def slots(self) -> Dict[int, int]:
        """``tid -> slot`` copy of the current colouring."""
        return dict(self._slot)

    def graph(self) -> ArrayDependencyGraph:
        """CSR view of the live conflict graph (cached until the next delta)."""
        if self._graph_cache is None:
            tids = sorted(self._adj)
            pos = {t: i for i, t in enumerate(tids)}
            indptr = np.zeros(len(tids) + 1, dtype=np.int64)
            indices: List[int] = []
            weights: List[int] = []
            for i, t in enumerate(tids):
                nbrs = self._adj[t]
                for nbr in sorted(nbrs):
                    indices.append(pos[nbr])
                    weights.append(nbrs[nbr])
                indptr[i + 1] = len(indices)
            self._graph_cache = ArrayDependencyGraph(
                np.asarray(tids, dtype=np.int64),
                indptr,
                np.asarray(indices, dtype=np.int64),
                np.asarray(weights, dtype=np.int64),
            )
        return self._graph_cache

    # ------------------------------------------------------------------ #
    # refcount maintenance
    # ------------------------------------------------------------------ #

    def _set_slot(self, tid: int, j: int) -> bool:
        """Write a slot through the colour refcount; True if it changed."""
        old = self._slot.get(tid)
        if old == j:
            return False
        if old is not None:
            count = self._slot_count[old] - 1
            if count:
                self._slot_count[old] = count
            else:
                del self._slot_count[old]
        self._slot[tid] = j
        self._slot_count[j] = self._slot_count.get(j, 0) + 1
        self._dirty_objs.update(self._txn[tid].objects)
        return True

    def _del_slot(self, tid: int) -> None:
        old = self._slot.pop(tid)
        count = self._slot_count[old] - 1
        if count:
            self._slot_count[old] = count
        else:
            del self._slot_count[old]

    def _deg_change(self, old: Optional[int], new: Optional[int]) -> None:
        """Move one vertex between degree buckets (None = absent)."""
        if old == new:
            return
        if new is not None:
            self._degcount[new] = self._degcount.get(new, 0) + 1
            if new > self._degmax:
                self._degmax = new
        if old is not None:
            count = self._degcount[old] - 1
            if count:
                self._degcount[old] = count
            else:
                del self._degcount[old]
                if old == self._degmax:
                    self._degmax = max(self._degcount) if self._degcount else 0

    def mark_objects_dirty(self, objs: Iterable[int]) -> None:
        """Invalidate cached positioning needs (e.g. after a home move)."""
        self._dirty_objs.update(objs)

    def drain_dirty_objects(self) -> Tuple[Set[int], bool]:
        """Objects dirtied since the last drain, plus the all-dirty flag."""
        dirty, all_dirty = self._dirty_objs, self._all_dirty
        self._dirty_objs = set()
        self._all_dirty = False
        return dirty, all_dirty

    # ------------------------------------------------------------------ #
    # deltas
    # ------------------------------------------------------------------ #

    def add(self, txn: Transaction) -> Tuple[int, int, bool]:
        """Insert a transaction; repair the dirtied neighbourhood.

        Returns ``(examined, changed, rebuilt)`` repair statistics.  The
        caller is responsible for admission checks (unique tid, free
        node); this engine assumes them.
        """
        tid = txn.tid
        nbrs: Set[int] = set()
        for obj in sorted(txn.objects):
            nbrs.update(self._obj_users.get(obj, ()))
        nbr_list = sorted(nbrs)
        if nbr_list:
            ws = self.memo.pair_distances(
                [txn.node] * len(nbr_list),
                [self._txn[u].node for u in nbr_list],
            )
        else:
            ws = []
        self._txn[tid] = txn
        self._node_tid[txn.node] = tid
        for obj in sorted(txn.objects):
            self._obj_users.setdefault(obj, set()).add(tid)
        h_before = self.h_max
        row: Dict[int, int] = {}
        for u, w in zip(nbr_list, ws):
            row[u] = w
            adj_u = self._adj[u]
            self._deg_change(len(adj_u), len(adj_u) + 1)
            adj_u[tid] = w
            self._wcount[w] = self._wcount.get(w, 0) + 1
            if w > self._hraw:
                self._hraw = w
        self._adj[tid] = row
        self._deg_change(None, len(row))
        if self.h_max != h_before:
            self._all_dirty = True
        # the new vertex's own slot depends only on smaller-tid
        # neighbours, none of whom a pure insertion can change
        self._set_slot(tid, self._mex(tid))
        self._graph_cache = None
        return self._repair([u for u in nbr_list if u > tid])

    def remove(self, tid: int) -> Tuple[int, int, bool]:
        """Remove a live transaction (commit or abort); repair the hole."""
        txn = self._txn.pop(tid)
        del self._node_tid[txn.node]
        for obj in sorted(txn.objects):
            users = self._obj_users[obj]
            users.discard(tid)
            if not users:
                del self._obj_users[obj]
        self._dirty_objs.update(txn.objects)
        h_before = self.h_max
        nbrs = self._adj.pop(tid)
        self._deg_change(len(nbrs), None)
        hole_in_max = False
        for u, w in nbrs.items():
            adj_u = self._adj[u]
            self._deg_change(len(adj_u), len(adj_u) - 1)
            del adj_u[tid]
            count = self._wcount[w] - 1
            if count:
                self._wcount[w] = count
            else:
                del self._wcount[w]
                if w == self._hraw:
                    hole_in_max = True
        if hole_in_max:
            self._hraw = max(self._wcount) if self._wcount else 0
        if self.h_max != h_before:
            self._all_dirty = True
        self._del_slot(tid)
        self._graph_cache = None
        return self._repair([u for u in nbrs if u > tid])

    # ------------------------------------------------------------------ #
    # repair frontier
    # ------------------------------------------------------------------ #

    def _mex(self, tid: int) -> int:
        """Minimum excludant over the smaller-tid neighbours' slots."""
        used = {self._slot[u] for u in self._adj[tid] if u < tid}
        j = 0
        while j in used:
            j += 1
        return j

    def _repair(self, dirty: List[int]) -> Tuple[int, int, bool]:
        """Re-settle the mex fixpoint from an initial dirty frontier.

        Processes dirty vertices in ascending tid order (a min-heap), so
        when a vertex is examined every smaller-tid neighbour already
        holds its final slot and the vertex is settled in one mex
        computation; a change pushes only *larger*-tid neighbours.  If
        the frontier exceeds ``max(16, threshold * live)`` examined
        vertices, repairing is no longer cheaper than rebuilding and the
        engine recolors the whole live window instead.
        """
        examined = changed = 0
        limit = max(_MIN_FRONTIER, int(self.rebuild_threshold * len(self._txn)))
        heap = sorted(set(dirty))
        queued = set(heap)
        while heap:
            tid = heapq.heappop(heap)
            queued.discard(tid)
            if tid not in self._slot:
                continue
            examined += 1
            if examined > limit:
                self._recolor_all()
                self.repairs_examined += examined
                self.repairs_changed += changed
                return examined, changed, True
            if self._set_slot(tid, self._mex(tid)):
                changed += 1
                for u in self._adj[tid]:
                    if u > tid and u not in queued:
                        heapq.heappush(heap, u)
                        queued.add(u)
        self.repairs_examined += examined
        self.repairs_changed += changed
        return examined, changed, False

    def _recolor_all(self) -> None:
        """Full greedy recolor of the live set (the batch fixpoint)."""
        self.full_rebuilds += 1
        for tid in sorted(self._txn):
            self._set_slot(tid, self._mex(tid))

    def stats(self) -> Dict[str, int]:
        """Repair and memo counters (JSON-safe)."""
        rec = {
            "repairs_examined": self.repairs_examined,
            "repairs_changed": self.repairs_changed,
            "full_rebuilds": self.full_rebuilds,
        }
        rec.update({f"memo_{k}": v for k, v in self.memo.stats().items()})
        return rec


class SchedulerSession:
    """A long-lived scheduling conversation with one network.

    Open one with :func:`repro.open_session`; feed it transaction
    arrivals with :meth:`submit`, retire them with :meth:`commit` (which
    returns their commit times) or :meth:`abort`, and read the full
    schedule of the live window with :meth:`current_schedule` at any
    point.  In ``"incremental"`` mode (the default whenever the resolved
    scheduler is in the greedy family) deltas repair the conflict graph
    and colouring in place; in ``"batch"`` mode the session transparently
    falls back to rebuilding with the topology's paper scheduler per
    read, so every topology keeps its specialized algorithm and bound.

    Either way the schedule observed through the session is identical,
    field by field, to ``repro.schedule()`` on the equivalent static
    instance -- sessions change the *cost* of heavy traffic, never the
    result.  Sessions are also deliberately cheap to snapshot: state is
    plain data (:meth:`snapshot`), which is what lets the service and
    cluster checkpointing keep working unchanged.
    """

    def __init__(
        self,
        network,
        *,
        algo: str = "auto",
        kernel: str = "auto",
        mode: str = "auto",
        object_homes: Optional[Dict[int, int]] = None,
        home_policy: str = "static",
        rebuild_threshold: float = 0.5,
        rng: Optional[np.random.Generator] = None,
        recorder: Optional[Recorder] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        from .dispatch import _TOPOLOGY_TO_ALGO, resolve_scheduler

        if mode not in _MODES:
            raise SessionError(
                f"unknown session mode {mode!r}; expected one of {_MODES}"
            )
        if home_policy not in _HOME_POLICIES:
            raise SessionError(
                f"unknown home_policy {home_policy!r}; "
                f"expected one of {_HOME_POLICIES}"
            )
        resolve_kernel(kernel)  # fail fast on typos
        self.network = network
        self.kernel = kernel
        self.home_policy = home_policy
        base = algo
        if algo == "auto":
            base = _TOPOLOGY_TO_ALGO.get(network.topology.name, "greedy")
        elif algo.startswith("incremental"):
            if mode == "batch":
                raise SessionError(
                    f"algo={algo!r} forces the incremental engine; "
                    "it cannot run with mode='batch'"
                )
            mode = "incremental"
            base = algo[len("incremental"):].lstrip("-") or "greedy"
        if mode == "auto":
            mode = "incremental" if base in GREEDY_FAMILY else "batch"
        if mode == "incremental" and base not in GREEDY_FAMILY:
            if algo == "auto":
                # the generic greedy guarantee holds on any graph (§3.1)
                base = "greedy"
            else:
                raise SessionError(
                    f"scheduler {base!r} cannot run incrementally; the "
                    f"incremental engine maintains the greedy-family "
                    f"colouring only ({', '.join(GREEDY_FAMILY)}). "
                    "Use mode='batch' (or mode='auto') to keep it."
                )
        self.mode = mode
        self.algo = base
        self._homes: Dict[int, int] = dict(object_homes or {})
        self._rng = rng
        self._recorder = active(recorder)
        self._options = dict(options or {})
        self._epoch = 0
        self._closed = False
        self._submitted = 0
        self._committed = 0
        self._aborted = 0
        if mode == "incremental":
            if self._options:
                raise SessionError(
                    "incremental sessions accept no extra scheduler "
                    f"options, got {sorted(self._options)}"
                )
            self._engine: Optional[IncrementalConflictGraph] = (
                IncrementalConflictGraph(
                    network, rebuild_threshold=rebuild_threshold
                )
            )
            self._scheduler: Optional[Scheduler] = None
            self._active: Dict[int, Transaction] = {}
            self._node_tid: Dict[int, int] = {}
        else:
            self._engine = None
            self._scheduler = resolve_scheduler(
                base,
                topology=network.topology.name,
                kernel=kernel,
                **self._options,
            )
            self._active = {}
            self._node_tid = {}
        self._cached: Optional[Schedule] = None
        # per-object positioning needs, kept current lazily from the
        # engine's dirty-object drain (incremental mode only)
        self._needs: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "SchedulerSession":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Close the session; further deltas raise :class:`SessionError`."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def epoch(self) -> int:
        """Number of commit epochs completed so far."""
        return self._epoch

    @property
    def active_count(self) -> int:
        """Number of live (submitted, not yet committed/aborted) txns."""
        if self._engine is not None:
            return len(self._engine)
        return len(self._active)

    def active_ids(self) -> List[int]:
        """Live transaction ids, ascending."""
        if self._engine is not None:
            return self._engine.tids()
        return sorted(self._active)

    def homes(self) -> Dict[int, int]:
        """Current ``object -> home node`` map (a copy)."""
        return dict(self._homes)

    @property
    def stats(self) -> Dict[str, int]:
        """Lifetime session counters (JSON-safe)."""
        rec = {
            "submitted": self._submitted,
            "committed": self._committed,
            "aborted": self._aborted,
            "epochs": self._epoch,
            "active": self.active_count,
        }
        if self._engine is not None:
            rec.update(self._engine.stats())
        return rec

    # ------------------------------------------------------------------ #
    # deltas
    # ------------------------------------------------------------------ #

    def _live(self, tid: int) -> bool:
        if self._engine is not None:
            return tid in self._engine
        return tid in self._active

    def _txn_of(self, tid: int) -> Transaction:
        if self._engine is not None:
            return self._engine.transaction(tid)
        return self._active[tid]

    def _node_map(self) -> Dict[int, int]:
        if self._engine is not None:
            return self._engine._node_tid
        return self._node_tid

    def submit(self, txns: Iterable[Transaction] | Transaction) -> None:
        """Admit new transactions into the live window.

        Validates the whole delta before applying any of it (an invalid
        batch leaves the session untouched): unique live tids, at most
        one live transaction per node, nodes in range, and every used
        object homed -- the same constraints the batch
        :class:`~repro.core.instance.Instance` enforces, surfaced as
        :class:`~repro.errors.SessionError` at the delta instead of at
        rebuild time.
        """
        self._check_open()
        batch = [txns] if isinstance(txns, Transaction) else list(txns)
        if not batch:
            return
        node_map = self._node_map()
        seen_tids: Set[int] = set()
        seen_nodes: Set[int] = set()
        n = self.network.n
        for t in batch:
            if t.tid in seen_tids or self._live(t.tid):
                raise SessionError(f"transaction {t.tid} is already live")
            if not 0 <= t.node < n:
                raise SessionError(
                    f"transaction {t.tid} pinned to node {t.node}, "
                    f"network has nodes 0..{n - 1}"
                )
            if t.node in seen_nodes or t.node in node_map:
                raise SessionError(
                    f"node {t.node} already hosts a live transaction "
                    f"(model allows one per node); cannot submit {t.tid}"
                )
            missing = sorted(o for o in t.objects if o not in self._homes)
            if missing:
                raise SessionError(
                    f"transaction {t.tid} uses unhomed objects {missing}"
                )
            seen_tids.add(t.tid)
            seen_nodes.add(t.node)
        examined = changed = 0
        rebuilt = False
        if self._engine is not None:
            for t in batch:
                e, c, r = self._engine.add(t)
                examined += e
                changed += c
                rebuilt = rebuilt or r
        else:
            for t in batch:
                self._active[t.tid] = t
                self._node_tid[t.node] = t.tid
        self._submitted += len(batch)
        self._cached = None
        if self._recorder.enabled:
            self._recorder.record(
                SessionDeltaEvent(
                    time=self._epoch,
                    op="submit",
                    count=len(batch),
                    dirty=examined,
                    repaired=changed,
                    rebuilt=rebuilt,
                )
            )
            self._recorder.count("session.submitted", len(batch))

    def commit(self, ids: Optional[Iterable[int]] = None) -> Dict[int, int]:
        """Retire transactions, returning their commit times.

        ``ids=None`` commits the whole live window.  Commit times are
        read from the *current* schedule of the full live set (colour
        plus the global positioning offset) before removal, so they are
        exactly what :meth:`current_schedule` would report.  Under
        ``home_policy="follow"`` each committed object's home moves to
        its last committing user, modelling the data-flow rule that
        objects stay where they were last written.
        """
        self._check_open()
        tids = self.active_ids() if ids is None else sorted(set(ids))
        for tid in tids:
            if not self._live(tid):
                raise SessionError(f"cannot commit {tid}: not a live transaction")
        if not tids:
            return {}
        times = self._commit_times(tids)
        committed = {tid: self._txn_of(tid) for tid in tids}
        examined, changed, rebuilt = self._remove(tids)
        if self.home_policy == "follow":
            movers: Dict[int, Tuple[int, int, int]] = {}
            for tid in tids:
                t = committed[tid]
                rank = (times[tid], tid)
                for obj in sorted(t.objects):
                    prev = movers.get(obj)
                    if prev is None or rank > (prev[0], prev[1]):
                        movers[obj] = (times[tid], tid, t.node)
            for obj in sorted(movers):
                self._homes[obj] = movers[obj][2]
            if self._engine is not None:
                self._engine.mark_objects_dirty(movers)
        self._committed += len(tids)
        self._epoch += 1
        self._cached = None
        if self._recorder.enabled:
            self._recorder.record(
                SessionDeltaEvent(
                    time=self._epoch,
                    op="commit",
                    count=len(tids),
                    dirty=examined,
                    repaired=changed,
                    rebuilt=rebuilt,
                )
            )
            self._recorder.count("session.committed", len(tids))
        return times

    def abort(self, ids: Optional[Iterable[int]] = None) -> None:
        """Retire transactions without committing (no times, no home moves)."""
        self._check_open()
        tids = self.active_ids() if ids is None else sorted(set(ids))
        for tid in tids:
            if not self._live(tid):
                raise SessionError(f"cannot abort {tid}: not a live transaction")
        if not tids:
            return
        examined, changed, rebuilt = self._remove(tids)
        self._aborted += len(tids)
        self._cached = None
        if self._recorder.enabled:
            self._recorder.record(
                SessionDeltaEvent(
                    time=self._epoch,
                    op="abort",
                    count=len(tids),
                    dirty=examined,
                    repaired=changed,
                    rebuilt=rebuilt,
                )
            )
            self._recorder.count("session.aborted", len(tids))

    def _remove(self, tids: List[int]) -> Tuple[int, int, bool]:
        examined = changed = 0
        rebuilt = False
        if self._engine is not None:
            for tid in tids:
                e, c, r = self._engine.remove(tid)
                examined += e
                changed += c
                rebuilt = rebuilt or r
        else:
            for tid in tids:
                txn = self._active.pop(tid)
                del self._node_tid[txn.node]
        return examined, changed, rebuilt

    # ------------------------------------------------------------------ #
    # schedule reads
    # ------------------------------------------------------------------ #

    def _positioning_offset(self) -> int:
        """Batch-identical offset over the live window (memoized dists).

        Per-object needs are cached in ``self._needs`` and refreshed only
        for objects the engine dirtied since the last read (slot moved,
        user set changed, home moved); an ``h_max`` change shifts every
        colour and invalidates the whole cache.
        """
        engine = self._engine
        assert engine is not None
        dirty, all_dirty = engine.drain_dirty_objects()
        if all_dirty:
            self._needs.clear()
            dirty = set(engine._obj_users)
        h = engine.h_max
        slot = engine._slot
        txn = engine._txn
        if dirty:
            objs: List[int] = []
            firsts: List[int] = []
            for obj in dirty:
                users = engine._obj_users.get(obj)
                if not users:
                    self._needs.pop(obj, None)
                    continue
                if len(users) == 1:
                    (first,) = users
                else:
                    first = min(users, key=lambda t: (slot[t], t))
                objs.append(obj)
                firsts.append(first)
            if objs:
                ds = engine.memo.pair_distances(
                    [self._homes[obj] for obj in objs],
                    [txn[first].node for first in firsts],
                )
                for obj, first, d in zip(objs, firsts, ds):
                    self._needs[obj] = d - (slot[first] * h + 1)
        offset = max(self._needs.values(), default=0)
        return offset if offset > 0 else 0

    def _commit_times(self, tids: List[int]) -> Dict[int, int]:
        engine = self._engine
        if engine is not None:
            h = engine.h_max
            offset = self._positioning_offset()
            return {tid: engine._slot[tid] * h + 1 + offset for tid in tids}
        sched = self._batch_schedule()
        return {tid: sched.commit_times[tid] for tid in tids}

    def _build_instance(self) -> Instance:
        engine = self._engine
        if engine is None:
            txns = [self._txn_of(tid) for tid in self.active_ids()]
            used: Set[int] = set()
            for t in txns:
                used.update(t.objects)
            homes = {obj: self._homes[obj] for obj in sorted(used)}
            return Instance(self.network, txns, homes)
        # the session enforced every Instance invariant at submit time
        # (unique tids, one txn per node, nodes in range, used objects
        # homed), so skip re-validation on the per-epoch read path
        txn_map = engine._txn
        txns = [txn_map[tid] for tid in sorted(txn_map)]
        homes = {obj: self._homes[obj] for obj in sorted(engine._obj_users)}
        return Instance._from_validated(self.network, txns, homes)

    def _batch_schedule(self, instance: Optional[Instance] = None) -> Schedule:
        if self._cached is None:
            assert self._scheduler is not None
            inst = instance if instance is not None else self._build_instance()
            self._cached = self._scheduler.schedule(inst, self._rng)
        return self._cached

    def current_schedule(self, instance: Optional[Instance] = None) -> Schedule:
        """The schedule of the live window, as the batch scheduler sees it.

        Pass ``instance`` to bind the returned :class:`Schedule` to an
        existing equivalent :class:`Instance` (the one-shot facade does
        this); it must contain exactly the live transactions.
        """
        self._check_open()
        if self.active_count == 0:
            raise SessionError("empty session has no schedule")
        if instance is not None:
            have = [t.tid for t in instance.transactions]
            if sorted(have) != self.active_ids():
                raise SessionError(
                    "current_schedule(instance=...): instance transactions "
                    "do not match the session's live window"
                )
        engine = self._engine
        if engine is None:
            sched = self._batch_schedule(instance)
            if instance is None or sched.instance is instance:
                return sched
            return Schedule(instance, dict(sched.commit_times), dict(sched.meta))
        if instance is None:
            instance = self._build_instance()
        h = engine.h_max
        offset = self._positioning_offset()
        commits = {
            tid: engine._slot[tid] * h + 1 + offset for tid in engine.tids()
        }
        name = (
            "incremental" if self.algo == "greedy" else f"incremental-{self.algo}"
        )
        meta = {
            "scheduler": name,
            "colors_used": engine.colors_used,
            "h_max": h,
            "delta": engine.max_degree,
            "gamma": engine.weighted_degree,
            "offset": offset,
            "engine": "incremental",
        }
        return Schedule(instance, commits, meta)

    def run_epoch(
        self, txns: Iterable[Transaction]
    ) -> Tuple[Dict[int, int], int]:
        """Submit a window, commit everything live, return (times, makespan).

        This is the service loop's per-window hook: equivalent to the
        old per-window ``schedule()`` rebuild -- same commit times, same
        makespan -- but served by the incremental engine when the
        topology's scheduler allows it.
        """
        self.submit(txns)
        times = self.commit()
        return times, max(times.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe summary of the session's state and lifetime counters."""
        return {
            "mode": self.mode,
            "algo": self.algo,
            "kernel": self.kernel,
            "home_policy": self.home_policy,
            "epoch": self._epoch,
            "closed": self._closed,
            "active": [
                {
                    "tid": t.tid,
                    "node": t.node,
                    "objects": sorted(t.objects),
                }
                for t in (self._txn_of(tid) for tid in self.active_ids())
            ],
            "homes": {int(k): int(v) for k, v in sorted(self._homes.items())},
            "stats": self.stats,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SchedulerSession(mode={self.mode!r}, algo={self.algo!r}, "
            f"active={self.active_count}, epoch={self._epoch})"
        )


def open_session(
    network,
    algo: str = "auto",
    kernel: str = "auto",
    **kwargs: Any,
) -> SchedulerSession:
    """Open a :class:`SchedulerSession` on ``network``.

    The session-first entry point: ``repro.open_session(net)`` then
    ``submit`` / ``commit`` / ``current_schedule`` / ``snapshot``.  See
    :class:`SchedulerSession` for the keyword surface (``mode``,
    ``object_homes``, ``home_policy``, ``rebuild_threshold``, ``rng``,
    ``recorder``).  Usable as a context manager::

        with repro.open_session(net, object_homes=homes) as sess:
            sess.submit(txns)
            print(sess.current_schedule().makespan)
            sess.commit()
    """
    return SchedulerSession(network, algo=algo, kernel=kernel, **kwargs)


@register("incremental")
class IncrementalScheduler(Scheduler):
    """One-shot adapter: run a whole instance through a session.

    Makes the incremental engine a drop-in :class:`Scheduler`, so
    ``schedule(inst, algo="incremental")`` (and the ``incremental-clique``
    / ``incremental-diameter`` listings) work through the ordinary
    facade.  ``base`` picks which greedy-family bound the schedule
    claims; the colouring is identical across the family.
    """

    def __init__(
        self,
        base: str = "greedy",
        kernel: str = "auto",
        rebuild_threshold: float = 0.5,
    ) -> None:
        if base not in GREEDY_FAMILY:
            raise SessionError(
                f"IncrementalScheduler base must be one of {GREEDY_FAMILY}, "
                f"got {base!r}"
            )
        self.base = base
        self.kernel = kernel
        self.rebuild_threshold = rebuild_threshold
        self.name = "incremental" if base == "greedy" else f"incremental-{base}"

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        homes = {obj: instance.home(obj) for obj in instance.objects}
        with SchedulerSession(
            instance.network,
            algo=self.base,
            kernel=self.kernel,
            mode="incremental",
            object_homes=homes,
            rebuild_threshold=self.rebuild_threshold,
            rng=rng,
        ) as sess:
            sess.submit(instance.transactions)
            return sess.current_schedule(instance=instance)
