"""Schedule compaction: earliest-feasible retiming of a fixed commit order.

The greedy colouring spaces *every* pair of conflicting commits by
``h_max`` (the worst conflict distance), even when the actual objects
have shorter trips.  Compaction keeps the schedule's per-object visit
orders -- the serialization the colouring chose, which carries the
theorem's guarantee -- and re-times every commit to the earliest step its
objects can actually arrive.  The result is never later than the input
(so all upper bounds still hold) and is often 2-4x shorter in practice
(quantified in E10's ``compaction`` ablation).

Correctness: processing transactions in the original commit order, each
commit is placed at ``max(1, max_o(release_o + dist(pos_o, node)))``;
consecutive users of an object are therefore spaced by exactly their
distance or more, and first legs from homes are respected, so the result
passes ``Schedule.validate`` by construction.
"""

from __future__ import annotations

from typing import Dict

from .schedule import Schedule

__all__ = ["compact_schedule"]


def compact_schedule(schedule: Schedule) -> Schedule:
    """Earliest-feasible retiming preserving the commit order.

    Returns a new :class:`Schedule` whose makespan is at most the
    original's; ``meta`` gains ``compacted_from`` recording the original
    makespan.
    """
    inst = schedule.instance
    dist = inst.network.dist
    order = sorted(
        inst.transactions,
        key=lambda t: (schedule.time_of(t.tid), t.tid),
    )
    release: Dict[int, int] = {}
    position: Dict[int, int] = dict(inst.object_homes)
    commits: Dict[int, int] = {}
    for t in order:
        ct = 1
        for obj in t.objects:
            ready = release.get(obj, 0) + dist(position[obj], t.node)
            ct = max(ct, ready)
        commits[t.tid] = ct
        for obj in t.objects:
            release[obj] = ct
            position[obj] = t.node
    meta = dict(schedule.meta)
    meta["compacted_from"] = schedule.makespan
    return Schedule(inst, commits, meta)
