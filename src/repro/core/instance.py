"""Batch scheduling problem instances (§2.1).

An :class:`Instance` bundles a communication graph, a batch of transactions
(at most one per node), and the initial home node of every shared object
(single copy each).  It validates the model constraints at construction and
precomputes the users-per-object index that every scheduler needs.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import InstanceError
from ..network.graph import Network
from .transaction import Transaction

__all__ = ["Instance"]


class Instance:
    """A validated batch scheduling problem.

    Parameters
    ----------
    network:
        The communication graph ``G``.
    transactions:
        The batch ``T = {T_1..T_m}``; at most one transaction per node, all
        tids unique, every referenced object must have a home.
    object_homes:
        ``object id -> initial node``.  The paper usually assumes each
        object starts at a node whose transaction requests it; this is not
        enforced (schedulers handle arbitrary homes) but
        :attr:`homes_at_requesters` reports whether it holds.
    """

    def __init__(
        self,
        network: Network,
        transactions: Iterable[Transaction],
        object_homes: Mapping[int, int],
    ) -> None:
        self.network = network
        self.transactions: tuple[Transaction, ...] = tuple(transactions)
        self.object_homes: dict[int, int] = {
            int(o): int(v) for o, v in object_homes.items()
        }

        if not self.transactions:
            raise InstanceError("instance must contain at least one transaction")
        if len(self.transactions) > network.n:
            raise InstanceError(
                f"{len(self.transactions)} transactions exceed {network.n} nodes"
            )

        seen_nodes: set[int] = set()
        seen_tids: set[int] = set()
        users: dict[int, list[Transaction]] = {}
        for t in self.transactions:
            if t.tid in seen_tids:
                raise InstanceError(f"duplicate transaction id {t.tid}")
            seen_tids.add(t.tid)
            if not (0 <= t.node < network.n):
                raise InstanceError(
                    f"transaction {t.tid} placed at node {t.node} outside graph"
                )
            if t.node in seen_nodes:
                raise InstanceError(
                    f"node {t.node} hosts more than one transaction"
                )
            seen_nodes.add(t.node)
            for o in t.objects:
                users.setdefault(o, []).append(t)

        for o in users:
            if o not in self.object_homes:
                raise InstanceError(f"object {o} has no home node")
        for o, v in self.object_homes.items():
            if not (0 <= v < network.n):
                raise InstanceError(f"object {o} home {v} outside graph")

        self._users: dict[int, tuple[Transaction, ...]] | None = {
            o: tuple(ts) for o, ts in users.items()
        }
        self._by_tid: dict[int, Transaction] = {
            t.tid: t for t in self.transactions
        }
        self._by_node: dict[int, Transaction] = {
            t.node: t for t in self.transactions
        }

    @classmethod
    def _from_validated(
        cls,
        network: Network,
        transactions: Sequence[Transaction],
        object_homes: dict[int, int],
    ) -> "Instance":
        """Construct without re-running the constructor checks.

        Fast path for callers that already maintain every constructor
        invariant themselves (the incremental
        :class:`~repro.core.incremental.SchedulerSession` validates each
        delta at submit time): ``transactions`` unique by tid and node,
        nodes in range, ``object_homes`` covering every used object.
        The users-per-object index is built lazily on first access.
        """
        inst = cls.__new__(cls)
        inst.network = network
        inst.transactions = tuple(transactions)
        inst.object_homes = object_homes
        inst._users = None
        inst._by_tid = {t.tid: t for t in inst.transactions}
        inst._by_node = {t.node: t for t in inst.transactions}
        return inst

    def _user_index(self) -> dict[int, tuple[Transaction, ...]]:
        if self._users is None:
            users: dict[int, list[Transaction]] = {}
            for t in self.transactions:
                for o in t.objects:
                    users.setdefault(o, []).append(t)
            self._users = {o: tuple(ts) for o, ts in users.items()}
        return self._users

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def m(self) -> int:
        """Number of transactions in the batch."""
        return len(self.transactions)

    @property
    def objects(self) -> tuple[int, ...]:
        """All object ids with a home, sorted."""
        return tuple(sorted(self.object_homes))

    @property
    def num_objects(self) -> int:
        """Number of shared objects ``w``."""
        return len(self.object_homes)

    @property
    def max_k(self) -> int:
        """Largest per-transaction object count ``k``."""
        return max(t.k for t in self.transactions)

    @property
    def paper_m(self) -> int:
        """The paper's ``m = max(n, w)`` used in the w.h.p. bounds."""
        return max(self.network.n, self.num_objects)

    def users(self, obj: int) -> tuple[Transaction, ...]:
        """Transactions requesting object ``obj`` (may be empty)."""
        return self._user_index().get(obj, ())

    def load(self, obj: int) -> int:
        """``ell_i``: number of transactions requesting object ``obj``."""
        return len(self._user_index().get(obj, ()))

    @property
    def max_load(self) -> int:
        """``ell = max_i ell_i``: the heaviest object's user count."""
        return max(
            (len(ts) for ts in self._user_index().values()), default=0
        )

    def transaction(self, tid: int) -> Transaction:
        """Lookup by transaction id."""
        return self._by_tid[tid]

    def transaction_at(self, node: int) -> Transaction | None:
        """The transaction hosted at ``node``, or None."""
        return self._by_node.get(node)

    def home(self, obj: int) -> int:
        """Initial node of object ``obj``."""
        return self.object_homes[obj]

    @property
    def homes_at_requesters(self) -> bool:
        """True iff every used object starts at a node that requests it.

        This is the paper's standing assumption for the Line/Grid/§8
        constructions; the schedulers remain correct without it.
        """
        for o, ts in self._user_index().items():
            home = self.object_homes[o]
            if all(t.node != home for t in ts):
                return False
        return True

    def restrict(
        self,
        tids: Sequence[int],
        object_positions: Mapping[int, int] | None = None,
    ) -> "Instance":
        """Sub-instance over a subset of transactions.

        ``object_positions`` overrides homes (used by phased schedulers that
        hand a later phase the objects' *current* locations); only objects
        referenced by the kept transactions need positions.
        """
        keep = [self._by_tid[t] for t in tids]
        needed = set()
        for t in keep:
            needed |= t.objects
        pos = dict(self.object_homes)
        if object_positions:
            pos.update(object_positions)
        homes = {o: pos[o] for o in needed}
        return Instance(self.network, keep, homes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(n={self.network.n}, m={self.m}, "
            f"w={self.num_objects}, k<={self.max_k})"
        )
