"""Line graph scheduler (§4, Theorem 2, Fig 1).

The line algorithm is asymptotically optimal: with ``ell`` the longest
shortest *walk* any object needs (start at its home, visit all its
requesters), the line is cut into consecutive blocks of ``ell`` nodes; the
even-indexed blocks execute in phase 1 and the odd-indexed blocks in
phase 2.  Because same-phase blocks are separated by a full block
(distance > object span), no object is needed by two same-phase blocks, so
all blocks of a phase run in parallel as left-to-right waves.  Each phase
is preceded by a repositioning period that parks every object at the
leftmost node of its (unique) block that requests it.

Makespan is at most ``reposition_1 + ell + reposition_2 + ell <= 4 * ell``,
and ``ell`` (the max shortest walk) is itself a lower bound on any
schedule, so the result is a 4-approximation -- Theorem 2's constant
factor.  (The paper quotes ``4*ell - 2`` under its convention that objects
start strictly inside their span; we use the measured repositioning
distances, which match or beat that bound on the paper's instances.)
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import TopologyError
from .instance import Instance
from .schedule import Schedule
from .scheduler import Scheduler, register

__all__ = ["LineScheduler", "line_walk_length"]


def line_walk_length(home: int, left: int, right: int) -> int:
    """Shortest walk length on a line: start at ``home``, visit ``[left, right]``."""
    if home < left:
        return right - home
    if home > right:
        return home - left
    return (right - left) + min(home - left, right - home)


@register("line")
class LineScheduler(Scheduler):
    """Two-phase block-wave schedule for the line graph."""

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        net = instance.network
        if net.topology.name != "line":
            raise TopologyError(
                f"LineScheduler needs a 'line' network, got {net.topology.name!r}"
            )
        n = net.n

        # node id == position on the line
        span: Dict[int, tuple[int, int]] = {}
        ell = 1
        for obj in instance.objects:
            users = instance.users(obj)
            if not users:
                continue
            left = min(t.node for t in users)
            right = max(t.node for t in users)
            span[obj] = (left, right)
            ell = max(ell, line_walk_length(instance.home(obj), left, right))

        def block_index(node: int) -> int:
            return node // ell

        commits: Dict[int, int] = {}
        positions = dict(instance.object_homes)

        def run_wave(parity: int, t0: int) -> int:
            """Reposition + execute all blocks with ``index % 2 == parity``.

            Returns the absolute end time of the wave.
            """
            # target: leftmost requesting node inside this parity's blocks
            targets: Dict[int, int] = {}
            for obj, (_, _) in span.items():
                nodes = [
                    t.node
                    for t in instance.users(obj)
                    if t.tid not in commits and block_index(t.node) % 2 == parity
                ]
                if nodes:
                    targets[obj] = min(nodes)
            reposition = 0
            for obj, tgt in targets.items():
                reposition = max(reposition, abs(positions[obj] - tgt))
            start = t0 + reposition
            wave_len = 0
            for t in instance.transactions:
                if t.tid in commits:
                    continue
                b = block_index(t.node)
                if b % 2 != parity:
                    continue
                rel = t.node - b * ell
                commits[t.tid] = start + 1 + rel
                wave_len = max(wave_len, rel + 1)
            for obj, tgt in targets.items():
                # the wave carries the object to its rightmost user
                right_user = max(
                    t.node
                    for t in instance.users(obj)
                    if block_index(t.node) % 2 == parity
                )
                positions[obj] = right_user
            return start + wave_len

        end1 = run_wave(0, 0)
        end2 = end1
        if any(t.tid not in commits for t in instance.transactions):
            end2 = run_wave(1, end1)
        assert all(t.tid in commits for t in instance.transactions)

        meta = {
            "scheduler": self.name,
            "ell": ell,
            "blocks": -(-n // ell),
            "phase1_end": end1,
            "phase2_end": end2,
        }
        return Schedule(instance, commits, meta)

    @staticmethod
    def ell(instance: Instance) -> int:
        """The algorithm's ``ell``: max shortest object walk (>= 1)."""
        best = 1
        for obj in instance.objects:
            users = instance.users(obj)
            if not users:
                continue
            left = min(t.node for t in users)
            right = max(t.node for t in users)
            best = max(
                best, line_walk_length(instance.home(obj), left, right)
            )
        return best

    @classmethod
    def theorem_bound(cls, instance: Instance) -> int:
        """Theorem 2's makespan guarantee: ``4 * ell``."""
        return 4 * cls.ell(instance)
