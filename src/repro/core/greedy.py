"""The basic greedy schedule (§2.3) as a generic scheduler.

Colour the dependency graph, read the colour as the commit time step, and
shift everything by a *positioning offset* so each object's first leg (home
node to first user) fits.  The paper's ``O(Delta + 1)``-approximation
statement assumes objects start at their first user (offset 0); for
arbitrary homes the offset equals the worst first-leg slack, which Theorem 3
absorbs as the extra ``tau`` term.

This one scheduler *is* the clique algorithm of Theorem 1, and -- run on the
true shortest-path distances -- the hypercube/butterfly/diameter-``d``
algorithm of §3.1.  Subclasses merely attach the topology-specific
theoretical bound for test/bench assertions.
"""

from __future__ import annotations

import numpy as np

from .coloring import greedy_color, order_vertices
from .dependency import DependencyGraph
from .instance import Instance
from .schedule import Schedule
from .scheduler import Scheduler, register

__all__ = ["GreedyScheduler", "positioning_offset"]


def positioning_offset(
    instance: Instance, colors: dict[int, int]
) -> int:
    """Smallest global time shift making every object's first leg feasible.

    For each object, the first user is the one with the smallest colour;
    the object must cover ``dist(home, first user)`` by that commit time,
    so the shift is ``max(0, max_o (dist_o - color_first_o))``.
    """
    dist = instance.network.dist
    offset = 0
    for obj in instance.objects:
        users = instance.users(obj)
        if not users:
            continue
        first = min(users, key=lambda t: (colors[t.tid], t.tid))
        need = dist(instance.home(obj), first.node) - colors[first.tid]
        if need > offset:
            offset = need
    return offset


@register("greedy")
class GreedyScheduler(Scheduler):
    """Greedy colouring schedule of §2.3.

    Parameters
    ----------
    order:
        Vertex ordering strategy (``"id"``, ``"degree"``, ``"random"``);
        any strategy preserves the ``Gamma + 1`` colour bound.
    compact:
        When True, apply :func:`repro.core.retime.compact_schedule` to the
        coloured schedule: keeps the colouring's commit order (and hence
        the theorem bound, which can only improve) while shifting every
        commit to the earliest step its objects can actually arrive.
    kernel:
        Implementation switch for the dependency build and colouring
        passes (``"reference"``, ``"vectorized"``, or ``"auto"``; see
        :mod:`repro.core.kernels`).  Both kernels produce identical
        schedules.
    """

    def __init__(
        self,
        order: str = "id",
        compact: bool = False,
        kernel: str = "auto",
    ) -> None:
        self.order = order
        self.compact = compact
        self.kernel = kernel

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        graph = DependencyGraph.build(instance, kernel=self.kernel)
        order = order_vertices(graph, self.order, rng)
        colors = greedy_color(graph, order, kernel=self.kernel)
        offset = positioning_offset(instance, colors)
        commits = {tid: c + offset for tid, c in colors.items()}
        meta = {
            "scheduler": self.name,
            "colors_used": len(set(colors.values())),
            "h_max": graph.h_max,
            "delta": graph.max_degree,
            "gamma": graph.weighted_degree,
            "offset": offset,
        }
        schedule = Schedule(instance, commits, meta)
        if self.compact:
            from .retime import compact_schedule

            schedule = compact_schedule(schedule)
        return schedule

    @staticmethod
    def color_bound(instance: Instance) -> int:
        """The §2.3 guarantee: greedy uses at most ``Gamma + 1`` colours."""
        graph = DependencyGraph.build(instance)
        return graph.weighted_degree + 1


@register("clique")
class CliqueScheduler(GreedyScheduler):
    """Theorem 1: on a clique, greedy is an ``O(k)`` approximation.

    Identical algorithm to :class:`GreedyScheduler`; adds the theorem's
    makespan bound ``k * ell + 1`` for assertions.
    """

    @staticmethod
    def theorem_bound(instance: Instance) -> int:
        """Thm 1 colour bound ``k * ell + 1`` (unit-weight clique)."""
        return instance.max_k * instance.max_load + 1


@register("diameter")
class DiameterScheduler(GreedyScheduler):
    """§3.1: greedy on any diameter-``d`` graph (hypercube, butterfly, ...).

    The makespan guarantee scales the clique bound by ``d``:
    ``k * ell * d + 1`` colours, i.e. an ``O(k d)`` approximation against
    the ``chi >= ell`` lower bound.
    """

    @staticmethod
    def theorem_bound(instance: Instance) -> int:
        """§3.1 bound ``k * ell * d + 1``."""
        d = instance.network.diameter()
        return instance.max_k * instance.max_load * max(d, 1) + 1
