"""Randomized activation-round engine (Algorithm 1 of §6, generalized).

Both the Cluster scheduler's Approach 2 and the Star scheduler's per-ring
protocol share this structure:

1. the node set is partitioned into *groups* (clusters / ray segments);
2. groups are assigned uniformly at random to one of ``psi`` phases, where
   ``psi = ceil(sigma / (24 ln m))`` and ``sigma`` is the maximum number of
   groups any object must visit;
3. a phase is a sequence of *rounds* of fixed duration.  In each round
   every live object *activates* in one uniformly random group that still
   has an uncommitted requester in this phase; a transaction is *enabled*
   when all its objects activated in its own group; enabled transactions
   execute inside their group within the round.

The round duration budgets ``travel`` steps for objects to reach the group
plus the group's internal execution span, exactly the paper's
``beta + gamma + 2`` for clusters.  The paper proves all phase transactions
commit within ``zeta = 2 * 40^k * ln^{k+1} m`` rounds w.h.p.; since that
theoretical constant is astronomically loose, the engine by default runs
rounds *adaptively* until the phase drains (terminating almost surely, and
in practice after a handful of rounds), with a hard cap after which
leftovers fall through to a deterministic sequential tail so the scheduler
is always correct.  ``rounds_used`` and ``fallback_count`` are reported in
the schedule metadata; :func:`theoretical_zeta` exposes the paper's bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from ..errors import SchedulingError
from .instance import Instance

__all__ = [
    "RoundGroup",
    "RoundsResult",
    "activation_rounds",
    "theoretical_psi",
    "theoretical_zeta",
]


@dataclass(frozen=True)
class RoundGroup:
    """One group of the partition.

    ``nodes`` fixes the within-round execution order (clique clusters may
    use any order; line segments must be ordered along the line so that
    consecutive spacing equals line distance).
    """

    gid: int
    nodes: tuple[int, ...]


@dataclass
class RoundsResult:
    """Outcome of :func:`activation_rounds`."""

    commits: Dict[int, int]
    end_time: int
    positions: Dict[int, int]
    psi: int
    rounds_used: int
    fallback_count: int
    round_duration: int


def theoretical_psi(sigma: int, m: int, ln_factor: float = 24.0) -> int:
    """The paper's phase count ``ceil(sigma / (24 ln m))`` (>= 1)."""
    lnm = max(math.log(max(m, 3)), 1.0)
    return max(1, math.ceil(sigma / (ln_factor * lnm)))

def theoretical_zeta(k: int, m: int) -> int:
    """The paper's per-phase round count ``2 * 40^k * ceil(ln^{k+1} m)``.

    Reported for comparison only; see the module docstring for why the
    engine drains phases adaptively instead of literally spinning this
    many rounds.
    """
    lnm = max(math.log(max(m, 3)), 1.0)
    return 2 * (40 ** k) * math.ceil(lnm ** (k + 1))


def _group_span(instance: Instance, group: RoundGroup) -> int:
    """Worst-case in-group execution span: consecutive-node distances summed."""
    dist = instance.network.dist
    span = 0
    for a, b in zip(group.nodes, group.nodes[1:]):
        span += dist(a, b)
    return span


def activation_rounds(
    instance: Instance,
    tids: Sequence[int],
    positions: Mapping[int, int],
    start_time: int,
    groups: Sequence[RoundGroup],
    travel: int,
    rng: np.random.Generator,
    max_rounds_per_phase: int = 10_000,
    ln_factor: float = 24.0,
) -> RoundsResult:
    """Run the randomized phase/round protocol over ``tids``.

    Parameters
    ----------
    travel:
        Budget (time steps) for any live object to reach any node of any
        group from its current position; the caller must guarantee
        ``travel >= dist(pos, node)`` for every live object position and
        every group node (and ``>= 1``).
    groups:
        Partition of the nodes hosting ``tids`` (extra nodes allowed).
    """
    if travel < 1:
        raise SchedulingError(f"travel budget must be >= 1, got {travel}")
    dist = instance.network.dist
    by_tid = {t.tid: t for t in instance.transactions}
    txns = [by_tid[t] for t in tids]

    group_of: Dict[int, int] = {}
    for g in groups:
        for node in g.nodes:
            group_of[node] = g.gid
    by_gid = {g.gid: g for g in groups}
    for t in txns:
        if t.node not in group_of:
            raise SchedulingError(
                f"transaction {t.tid} at node {t.node} is outside all groups"
            )

    # object -> groups that (still) have an uncommitted requester
    live_users: Dict[int, set[int]] = {}
    for t in txns:
        for o in t.objects:
            live_users.setdefault(o, set()).add(t.tid)

    def groups_of_object(o: int, allowed: set[int]) -> list[int]:
        gids = {
            group_of[by_tid[u].node]
            for u in live_users.get(o, ())
        }
        return sorted(gids & allowed)

    sigma = 0
    for o in live_users:
        g = len({group_of[by_tid[u].node] for u in live_users[o]})
        sigma = max(sigma, g)
    psi = theoretical_psi(sigma, instance.paper_m, ln_factor)

    span = max((_group_span(instance, g) for g in groups), default=0)
    duration = travel + span + 1

    # random phase per group (only groups hosting transactions matter)
    active_gids = sorted({group_of[t.node] for t in txns})
    phase_of = {
        gid: int(p) for gid, p in zip(active_gids, rng.integers(1, psi + 1, len(active_gids)))
    }

    commits: Dict[int, int] = {}
    pos = dict(positions)
    t_cur = start_time
    rounds_used = 0

    for p in range(1, psi + 1):
        phase_gids = {g for g, ph in phase_of.items() if ph == p}
        if not phase_gids:
            continue
        pending = {
            t.tid for t in txns if group_of[t.node] in phase_gids and t.tid not in commits
        }
        rounds_this_phase = 0
        while pending and rounds_this_phase < max_rounds_per_phase:
            rounds_this_phase += 1
            rounds_used += 1
            # activation: every live object picks one random candidate group
            activated: Dict[int, int] = {}
            live_objs = sorted(
                {o for tid in pending for o in by_tid[tid].objects}
            )
            for o in live_objs:
                cands = groups_of_object(o, phase_gids)
                if cands:
                    activated[o] = cands[int(rng.integers(0, len(cands)))]
            # enabling
            enabled_by_group: Dict[int, list] = {}
            for tid in sorted(pending):
                t = by_tid[tid]
                g = group_of[t.node]
                if all(activated.get(o) == g for o in t.objects):
                    enabled_by_group.setdefault(g, []).append(t)
            # in-group execution, ordered along the group's node order
            base = t_cur
            for gid, enabled in enabled_by_group.items():
                order_index = {n: i for i, n in enumerate(by_gid[gid].nodes)}
                enabled.sort(key=lambda t: order_index[t.node])
                offset = 0
                prev_node = None
                for t in enabled:
                    if prev_node is not None:
                        offset += dist(prev_node, t.node)
                    commits[t.tid] = base + travel + offset
                    prev_node = t.node
                    pending.discard(t.tid)
                    for o in t.objects:
                        pos[o] = t.node
                        live_users[o].discard(t.tid)
            t_cur += duration
        # anything still pending spills into the deterministic tail below
    leftovers = sorted(t.tid for t in txns if t.tid not in commits)
    for i, tid in enumerate(leftovers):
        t = by_tid[tid]
        commits[tid] = t_cur + (i + 1) * travel
        for o in t.objects:
            pos[o] = t.node
            live_users[o].discard(tid)
    if leftovers:
        t_cur += (len(leftovers) + 1) * travel

    return RoundsResult(
        commits=commits,
        end_time=t_cur,
        positions=pos,
        psi=psi,
        rounds_used=rounds_used,
        fallback_count=len(leftovers),
        round_duration=duration,
    )
