"""Core scheduling library: the paper's contribution.

Problem model (:class:`Transaction`, :class:`Instance`), schedules and
feasibility (:class:`Schedule`), the §2.3 greedy colouring engine, and one
scheduler per topology family of §3-§7.
"""

from .cluster import ClusterScheduler, object_cluster_spread
from .coloring import greedy_color, validate_coloring
from .dependency import DependencyGraph
from .dispatch import (
    SCHEDULER_INFO,
    SchedulerInfo,
    resolve_scheduler,
    schedule_instance,
    scheduler_for,
)
from .kernels import KERNELS, resolve_kernel
from .greedy import CliqueScheduler, DiameterScheduler, GreedyScheduler
from .grid import GridScheduler
from .incremental import (
    GREEDY_FAMILY,
    DistanceMemo,
    IncrementalConflictGraph,
    IncrementalScheduler,
    SchedulerSession,
    open_session,
)
from .instance import Instance
from .line import LineScheduler
from .retime import compact_schedule
from .schedule import Schedule, Visit
from .scheduler import Scheduler, available_schedulers, get_scheduler
from .sharded import (
    ShardedClusterScheduler,
    ShardedScheduler,
    ShardSplit,
    cross_shard_ratio,
    shard_split,
)
from .star import StarScheduler
from .transaction import Transaction

__all__ = [
    "Transaction",
    "Instance",
    "Schedule",
    "Visit",
    "DependencyGraph",
    "greedy_color",
    "validate_coloring",
    "Scheduler",
    "get_scheduler",
    "available_schedulers",
    "GreedyScheduler",
    "compact_schedule",
    "CliqueScheduler",
    "DiameterScheduler",
    "LineScheduler",
    "GridScheduler",
    "ClusterScheduler",
    "object_cluster_spread",
    "StarScheduler",
    "ShardedScheduler",
    "ShardedClusterScheduler",
    "ShardSplit",
    "shard_split",
    "cross_shard_ratio",
    "SchedulerInfo",
    "SCHEDULER_INFO",
    "resolve_scheduler",
    "scheduler_for",
    "schedule_instance",
    "KERNELS",
    "resolve_kernel",
    "GREEDY_FAMILY",
    "DistanceMemo",
    "IncrementalConflictGraph",
    "IncrementalScheduler",
    "SchedulerSession",
    "open_session",
]
