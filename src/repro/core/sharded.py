"""Sharded scheduler: parallel intra-shard phases + a serial cross phase.

The blockchain-sharding recast of the paper's model (Adhikari/Busch/
Popovic, arXiv:2405.15015) splits transactions by their objects' *home
shards*:

* **intra-shard** -- every object is homed in one shard.  Since each
  object lives in exactly one shard, the intra groups of different
  shards are conflict-disjoint, so each shard's group is greedy-coloured
  independently and *all shards run in parallel* starting at ``t = 0``;
  the intra phase ends at the slowest shard's makespan.
* **cross-shard** -- objects homed in >= 2 shards, so the transaction
  necessarily pays inter-shard (``gamma``-weight) itinerary legs.  The
  cross phase starts after the intra phase and is serialised by a
  cluster-greedy pass over the objects' *current* positions (wherever
  the intra phase left them) -- the same phase-composition argument as
  :mod:`repro.core.phasing`: the sub-schedule's positioning offset
  covers every first leg, and phase disjointness gives the inter-phase
  legs at least that much slack.

:class:`ShardedScheduler` (registered ``sharded``) runs the cross phase
as a deterministic greedy colouring; :class:`ShardedClusterScheduler`
(registered ``sharded-cluster``) instead drives the cross phase through
the §6 randomized activation-round protocol with the shards as the
round groups -- the Algorithm 1 analogue for cross-shard commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..network.graph import Network
from ..network.sharding import node_shards, shard_members
from .greedy import GreedyScheduler
from .instance import Instance
from .phasing import last_user_positions
from .rounds import RoundGroup, activation_rounds
from .schedule import Schedule
from .scheduler import Scheduler, register

__all__ = [
    "ShardSplit",
    "shard_split",
    "cross_shard_ratio",
    "ShardedScheduler",
    "ShardedClusterScheduler",
]


@dataclass(frozen=True)
class ShardSplit:
    """Intra/cross classification of one instance's transactions.

    ``intra`` maps shard index to the (ascending) tids whose objects are
    all homed in that shard; ``cross`` lists the tids touching objects
    homed in >= 2 shards.  A transaction with no objects is intra to its
    host node's shard (it conflicts with nothing).
    """

    intra: Tuple[Tuple[int, Tuple[int, ...]], ...]
    cross: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def intra_count(self) -> int:
        """Total intra-shard transactions across all shards."""
        return sum(len(tids) for _, tids in self.intra)

    @property
    def cross_count(self) -> int:
        """Cross-shard transactions."""
        return len(self.cross)


def shard_split(instance: Instance) -> ShardSplit:
    """Classify ``instance``'s transactions as intra- vs cross-shard.

    A transaction is **cross-shard** iff its objects' homes span >= 2
    shards of the network's shard partition; otherwise it is intra to
    the single shard homing all its objects (its host node's shard when
    it touches no objects).  Requires a sharded topology family (see
    :func:`~repro.network.sharding.shard_members`).
    """
    shard_of = node_shards(instance.network)
    intra: Dict[int, List[int]] = {}
    cross: List[int] = []
    for t in instance.transactions:
        home_shards = {shard_of[instance.home(o)] for o in t.objects}
        if len(home_shards) >= 2:
            cross.append(t.tid)
        else:
            sid = home_shards.pop() if home_shards else shard_of[t.node]
            intra.setdefault(sid, []).append(t.tid)
    return ShardSplit(
        intra=tuple(
            (sid, tuple(intra[sid])) for sid in sorted(intra)
        ),
        cross=tuple(cross),
    )


def cross_shard_ratio(instance: Instance) -> float:
    """Fraction of transactions classified cross-shard (0.0 when empty)."""
    split = shard_split(instance)
    total = split.intra_count + split.cross_count
    return split.cross_count / total if total else 0.0


@register("sharded")
class ShardedScheduler(Scheduler):
    """Two-phase sharded scheduler (arXiv:2405.15015 style).

    Parameters
    ----------
    cross:
        Cross-phase engine: ``"greedy"`` (deterministic cluster-greedy
        colouring over the post-intra object positions, the default) or
        ``"rounds"`` (the §6 randomized activation-round protocol with
        shards as groups; see :class:`ShardedClusterScheduler`).
    kernel:
        Implementation switch for the greedy passes (see
        :mod:`repro.core.kernels`).
    ln_factor / max_rounds_per_phase:
        Round-protocol knobs, used only with ``cross="rounds"``.
    """

    def __init__(
        self,
        cross: str = "greedy",
        kernel: str = "auto",
        ln_factor: float = 24.0,
        max_rounds_per_phase: int = 10_000,
    ) -> None:
        if cross not in ("greedy", "rounds"):
            raise ValueError(
                f"cross must be 'greedy' or 'rounds', got {cross!r}"
            )
        self.cross = cross
        self.kernel = kernel
        self.ln_factor = ln_factor
        self.max_rounds_per_phase = max_rounds_per_phase

    # ------------------------------------------------------------------ #

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        net: Network = instance.network
        members = shard_members(net)  # TopologyError on unsharded families
        split = shard_split(instance)
        greedy = GreedyScheduler(kernel=self.kernel)

        commits: Dict[int, int] = {}
        positions = dict(instance.object_homes)
        per_shard: List[Tuple[int, int]] = []
        intra_end = 0
        for sid, tids in split.intra:
            sub_sched = greedy.schedule(instance.restrict(tids))
            commits.update(sub_sched.commit_times)
            last_user_positions(sub_sched, positions)
            per_shard.append((sid, sub_sched.makespan))
            intra_end = max(intra_end, sub_sched.makespan)

        cross_end = 0
        cross_meta: Dict[str, object] = {}
        if split.cross:
            if self.cross == "rounds":
                if rng is None:
                    rng = np.random.default_rng(0)
                groups = [
                    RoundGroup(gid=i, nodes=tuple(m))
                    for i, m in enumerate(members)
                ]
                result = activation_rounds(
                    instance,
                    tids=list(split.cross),
                    positions=positions,
                    start_time=intra_end,
                    groups=groups,
                    travel=net.diameter(),
                    rng=rng,
                    max_rounds_per_phase=self.max_rounds_per_phase,
                    ln_factor=self.ln_factor,
                )
                commits.update(result.commits)
                cross_end = result.end_time - intra_end
                cross_meta = {
                    "psi": result.psi,
                    "rounds_used": result.rounds_used,
                    "round_duration": result.round_duration,
                    "fallback_count": result.fallback_count,
                }
            else:
                sub = instance.restrict(list(split.cross), positions)
                cross_sched = greedy.schedule(sub)
                for tid, ct in cross_sched.commit_times.items():
                    commits[tid] = intra_end + ct
                cross_end = cross_sched.makespan

        total = split.intra_count + split.cross_count
        meta: Dict[str, object] = {
            "scheduler": self.name,
            "cross_mode": self.cross,
            "shards": len(members),
            "intra": split.intra_count,
            "cross": split.cross_count,
            "cross_ratio": split.cross_count / total if total else 0.0,
            "intra_makespan": intra_end,
            "cross_makespan": cross_end,
            "per_shard_makespans": tuple(per_shard),
        }
        meta.update(cross_meta)
        return Schedule(instance, commits, meta)


@register("sharded-cluster")
class ShardedClusterScheduler(ShardedScheduler):
    """Sharded scheduler whose cross phase runs Algorithm-1 rounds.

    Identical intra phase; the cross-shard phase is serialised by the
    §6 randomized activation-round protocol with the shard committees
    as the round groups (round duration budgets the network diameter,
    covering any inter-shard leg).
    """

    def __init__(
        self,
        kernel: str = "auto",
        ln_factor: float = 24.0,
        max_rounds_per_phase: int = 10_000,
    ) -> None:
        super().__init__(
            cross="rounds",
            kernel=kernel,
            ln_factor=ln_factor,
            max_rounds_per_phase=max_rounds_per_phase,
        )
