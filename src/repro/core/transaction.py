"""Transactions in the data-flow distributed TM model.

A transaction is an atomic code block pinned to a node of the communication
graph; it names the set of shared objects it needs and commits once all of
them have been assembled at its node (§2.1).  Scheduling does not
distinguish reads from writes -- any two transactions sharing an object
conflict -- so a transaction is fully described by its node and object set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from ..errors import InstanceError

__all__ = ["Transaction"]


@dataclass(frozen=True, order=True)
class Transaction:
    """An immutable transaction record.

    Attributes
    ----------
    tid:
        Unique transaction identifier within an instance.
    node:
        The graph node where the transaction executes (``v_i`` in the paper).
    objects:
        The set ``O(T_i)`` of object ids the transaction needs; must be
        non-empty (a transaction with no objects is trivially schedulable
        and excluded from the model).
    """

    tid: int
    node: int
    objects: FrozenSet[int] = field(compare=False)

    def __init__(self, tid: int, node: int, objects: Iterable[int]) -> None:
        object.__setattr__(self, "tid", int(tid))
        object.__setattr__(self, "node", int(node))
        objs = frozenset(int(o) for o in objects)
        if not objs:
            raise InstanceError(f"transaction {tid} must request >= 1 object")
        object.__setattr__(self, "objects", objs)

    @property
    def k(self) -> int:
        """Number of objects the transaction requests."""
        return len(self.objects)

    def uses(self, obj: int) -> bool:
        """True iff this transaction requests object ``obj``."""
        return obj in self.objects

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        objs = ",".join(map(str, sorted(self.objects)))
        return f"Transaction(tid={self.tid}, node={self.node}, objects={{{objs}}})"
