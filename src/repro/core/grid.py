"""Grid scheduler (§5, Theorem 3, Fig 2).

For random k-subset workloads on an ``n x n`` mesh the algorithm cuts the
grid into subgrids of side ``sqrt(xi)`` with ``xi = 27 * w * ln(m) / k``
(sized so each object is requested by ``Theta(log m)`` transactions per
subgrid w.h.p.), then executes the subgrids **one at a time** in
boustrophedon column-major order, running the basic greedy schedule inside
each subgrid and moving objects to their next subgrid between internal
schedules.  Theorem 3: ``O(k log m)``-approximate w.h.p.

Implementation notes:

* each subgrid phase is composed with :mod:`repro.core.phasing`, which
  handles the object hand-off (the greedy sub-schedule's positioning
  offset plays the role of the paper's transition period, using measured
  distances instead of the analytic ``3 * sqrt(xi)`` bound);
* if ``sqrt(xi) >= n`` there is a single subgrid and the algorithm
  degenerates to plain greedy on the whole grid, exactly as in the paper's
  ``xi > n^2 / 9`` case.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..errors import TopologyError
from .greedy import GreedyScheduler
from .instance import Instance
from .phasing import PhaseState, run_phase
from .schedule import Schedule
from .scheduler import Scheduler, register

__all__ = ["GridScheduler"]


@register("grid")
class GridScheduler(Scheduler):
    """Boustrophedon subgrid sweep with greedy internal schedules.

    Parameters
    ----------
    xi_factor:
        The constant in ``xi = xi_factor * w * ln(m) / k`` (27 in the
        paper; exposed for the E10 ablation).
    side:
        Explicit subgrid side override (wins over ``xi_factor``); used by
        tests and the ablation bench.
    kernel:
        Implementation switch for the inner greedy sub-schedules (see
        :mod:`repro.core.kernels`).
    """

    def __init__(
        self,
        xi_factor: float = 27.0,
        side: int | None = None,
        kernel: str = "auto",
    ) -> None:
        self.xi_factor = xi_factor
        self.side = side
        self.kernel = kernel

    def subgrid_side(self, instance: Instance) -> int:
        """Side length ``sqrt(xi)`` (clamped to ``[1, max(rows, cols)]``)."""
        if self.side is not None:
            return max(1, self.side)
        w = max(instance.num_objects, 1)
        k = max(instance.max_k, 1)
        m = instance.paper_m
        xi = self.xi_factor * w * max(math.log(max(m, 3)), 1.0) / k
        topo = instance.network.topology
        rows, cols = topo.require("rows"), topo.require("cols")
        return min(max(1, math.ceil(math.sqrt(xi))), max(rows, cols))

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        net = instance.network
        if net.topology.name != "grid":
            raise TopologyError(
                f"GridScheduler needs a 'grid' network, got {net.topology.name!r}"
            )
        rows = net.topology.require("rows")
        cols = net.topology.require("cols")
        side = self.subgrid_side(instance)

        sub_rows = -(-rows // side)
        sub_cols = -(-cols // side)

        # boustrophedon column-major subgrid order (Fig 2)
        order: List[tuple[int, int]] = []
        for j in range(sub_cols):
            col = range(sub_rows) if j % 2 == 0 else range(sub_rows - 1, -1, -1)
            order.extend((i, j) for i in col)

        # transactions per subgrid
        members: Dict[tuple[int, int], list[int]] = {}
        for t in instance.transactions:
            r, c = divmod(t.node, cols)
            members.setdefault((r // side, c // side), []).append(t.tid)

        state = PhaseState(instance)
        inner = GreedyScheduler(kernel=self.kernel)
        internal_spans: list[int] = []
        for key in order:
            tids = members.get(key)
            if not tids:
                continue
            sub_schedule = run_phase(state, tids, inner)
            if sub_schedule is not None:
                internal_spans.append(sub_schedule.makespan)

        meta = {
            "scheduler": self.name,
            "side": side,
            "subgrids": sub_rows * sub_cols,
            "subgrids_executed": len(internal_spans),
            "max_internal_span": max(internal_spans, default=0),
        }
        return state.finish(meta)

    @staticmethod
    def theorem_ratio(instance: Instance) -> float:
        """Theorem 3's approximation-factor shape, ``k * ln(m)``.

        Benches divide measured ratios by this to check the w.h.p. claim
        (a bounded constant across the sweep).
        """
        k = max(instance.max_k, 1)
        m = instance.paper_m
        return k * max(math.log(max(m, 3)), 1.0)
