"""Star graph scheduler (§7, Theorem 5, Fig 4).

Each of the ``alpha`` rays is split into ``eta = ceil(log2 beta)`` segments
of exponentially growing length: segment ``i`` holds the ray nodes at
distance ``2^{i-1} .. 2^i - 1`` from the center.  After the center's own
transaction commits, the schedule runs one *period* per segment index; in
period ``i`` the ring ``V_i`` (segment ``i`` of every ray) is scheduled by
treating segments as clusters that communicate through the center over
paths of length ``~2^i``:

* a greedy schedule over ``V_i`` (the Approach-1 analogue,
  ``O(k sigma_i 2^{2i})`` time), and
* the randomized activation-round protocol with segment groups and a
  travel budget covering the through-center trips (the Approach-2
  analogue, ``O(sigma_i 2^i c^k ln^k m)`` w.h.p.);

whichever finishes the period earlier is kept, yielding Theorem 5's
``O(log beta * min(k beta, c^k ln^k m))`` factor overall.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..errors import TopologyError
from .greedy import GreedyScheduler
from .instance import Instance
from .phasing import PhaseState, run_phase
from .rounds import RoundGroup, activation_rounds
from .schedule import Schedule
from .scheduler import Scheduler, register

__all__ = ["StarScheduler", "ray_segments"]


def ray_segments(beta: int) -> list[tuple[int, int]]:
    """Segment index ranges over ray positions ``0..beta-1``.

    Returns ``(start, stop)`` half-open position ranges; segment ``i``
    (1-based) covers ray depths ``2^{i-1} .. 2^i - 1`` (paper numbering),
    i.e. 0-based positions ``2^{i-1} - 1 .. 2^i - 2``, truncated at beta.
    """
    segments = []
    i = 1
    while (1 << (i - 1)) <= beta:
        start = (1 << (i - 1)) - 1
        stop = min((1 << i) - 1, beta)
        if start < stop:
            segments.append((start, stop))
        i += 1
    return segments


@register("star")
class StarScheduler(Scheduler):
    """Theorem 5 scheduler: per-ring periods with cluster-style scheduling.

    ``kernel`` switches the implementation of the per-period greedy passes
    (see :mod:`repro.core.kernels`).
    """

    def __init__(
        self, max_rounds_per_phase: int = 10_000, kernel: str = "auto"
    ) -> None:
        self.max_rounds_per_phase = max_rounds_per_phase
        self.kernel = kernel

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        net = instance.network
        if net.topology.name != "star":
            raise TopologyError(
                f"StarScheduler needs a 'star' network, got {net.topology.name!r}"
            )
        if rng is None:
            rng = np.random.default_rng(0)
        topo = net.topology
        beta = topo.require("beta")
        center = topo.require("center")
        rays = topo.require("rays")

        state = PhaseState(instance)
        period_choices: List[str] = []

        center_txn = instance.transaction_at(center)
        if center_txn is not None:
            run_phase(state, [center_txn.tid], GreedyScheduler(kernel=self.kernel))

        for seg_idx, (start, stop) in enumerate(ray_segments(beta), start=1):
            groups = []
            tids: list[int] = []
            for ray_id, ray_nodes in enumerate(rays):
                seg_nodes = tuple(ray_nodes[start:stop])
                if not seg_nodes:
                    continue
                groups.append(RoundGroup(gid=ray_id, nodes=seg_nodes))
                for node in seg_nodes:
                    t = instance.transaction_at(node)
                    if t is not None:
                        tids.append(t.tid)
            if not tids:
                continue
            greedy_end, greedy_commits, greedy_pos = self._try_greedy(
                state, tids
            )
            rounds_end, rounds_commits, rounds_pos = self._try_rounds(
                state, tids, groups, rng, instance
            )
            if greedy_end <= rounds_end:
                period_choices.append(f"V{seg_idx}:greedy")
                state.commits.update(greedy_commits)
                state.positions = greedy_pos
                state.time = greedy_end
            else:
                period_choices.append(f"V{seg_idx}:rounds")
                state.commits.update(rounds_commits)
                state.positions = rounds_pos
                state.time = rounds_end

        meta = {
            "scheduler": self.name,
            "eta": len(ray_segments(beta)),
            "period_choices": tuple(period_choices),
        }
        return state.finish(meta)

    # ------------------------------------------------------------------ #

    def _try_greedy(
        self, state: PhaseState, tids: list[int]
    ) -> tuple[int, Dict[int, int], Dict[int, int]]:
        trial = PhaseState(state.instance)
        trial.time = state.time
        trial.positions = dict(state.positions)
        trial.commits = dict(state.commits)
        run_phase(trial, tids, GreedyScheduler(kernel=self.kernel))
        new_commits = {
            t: c for t, c in trial.commits.items() if t not in state.commits
        }
        return trial.time, new_commits, trial.positions

    def _try_rounds(
        self,
        state: PhaseState,
        tids: list[int],
        groups: list[RoundGroup],
        rng: np.random.Generator,
        instance: Instance,
    ) -> tuple[int, Dict[int, int], Dict[int, int]]:
        dist = instance.network.dist
        ring_nodes = [n for g in groups for n in g.nodes]
        used_objects = {
            o for tid in tids for o in instance.transaction(tid).objects
        }
        sources = {state.positions[o] for o in used_objects} | set(ring_nodes)
        travel = 1
        for s in sources:
            for v in ring_nodes:
                d = dist(s, v)
                if d > travel:
                    travel = d
        result = activation_rounds(
            instance,
            tids=tids,
            positions=state.positions,
            start_time=state.time,
            groups=groups,
            travel=travel,
            rng=rng,
            max_rounds_per_phase=self.max_rounds_per_phase,
        )
        positions = dict(state.positions)
        positions.update(result.positions)
        return result.end_time, result.commits, positions

    # ------------------------------------------------------------------ #

    @staticmethod
    def theorem_ratio(instance: Instance) -> float:
        """Theorem 5's factor shape ``log(beta) * min(k beta, 40^k ln^k m)``."""
        topo = instance.network.topology
        beta = topo.require("beta")
        k = max(instance.max_k, 1)
        m = instance.paper_m
        lnm = max(math.log(max(m, 3)), 1.0)
        return max(math.log2(max(beta, 2)), 1.0) * min(
            k * beta, (40.0 ** k) * (lnm ** k)
        )
