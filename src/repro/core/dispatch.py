"""Automatic scheduler selection from topology metadata.

:func:`schedule_instance` is the library's one-call entry point: it reads
the network's :class:`~repro.network.graph.Topology` tag, picks the
paper's scheduler for that family, and returns a feasible schedule.
Unknown/generic topologies fall back to the basic greedy schedule, whose
``O(k * ell * d)`` guarantee (§3.1) holds on any graph.
"""

from __future__ import annotations

import numpy as np

from .cluster import ClusterScheduler
from .greedy import CliqueScheduler, DiameterScheduler, GreedyScheduler
from .grid import GridScheduler
from .instance import Instance
from .line import LineScheduler
from .schedule import Schedule
from .scheduler import Scheduler
from .star import StarScheduler

__all__ = ["scheduler_for", "schedule_instance"]

_BY_TOPOLOGY = {
    "clique": CliqueScheduler,
    "hypercube": DiameterScheduler,
    "butterfly": DiameterScheduler,
    "ddim-grid": DiameterScheduler,
    "torus": DiameterScheduler,
    "line": LineScheduler,
    "grid": GridScheduler,
    "cluster": ClusterScheduler,
    "star": StarScheduler,
}


def scheduler_for(instance: Instance) -> Scheduler:
    """Instantiate the paper's scheduler for the instance's topology."""
    factory = _BY_TOPOLOGY.get(instance.network.topology.name, GreedyScheduler)
    return factory()


def schedule_instance(
    instance: Instance, rng: np.random.Generator | None = None
) -> Schedule:
    """Schedule ``instance`` with the topology-appropriate algorithm."""
    return scheduler_for(instance).schedule(instance, rng)
