"""One-call scheduling facade and the scheduler capability registry.

:func:`schedule` is the library's one-shot entry point: it opens a
single-use :class:`~repro.core.incremental.SchedulerSession`, submits
the whole instance, and reads the schedule back -- so the batch facade
and the long-lived session API (:func:`repro.open_session`) are the same
machinery observed at two cadences.  ``algo`` reads the network's
:class:`~repro.network.graph.Topology` tag to pick the paper's scheduler
(unknown families fall back to the generic greedy schedule, whose
``O(k * ell * d)`` guarantee of §3.1 holds on any graph); ``mode``
selects the per-call engine: ``"batch"`` (rebuild-and-color, the
default) or ``"incremental"`` (delta repair -- identical output, see
:mod:`repro.core.incremental`).

:data:`SCHEDULER_INFO` mirrors the experiment registry's
``EXPERIMENT_INFO``: one :class:`SchedulerInfo` per algorithm with its
topology family, approximation bound, and capability flags, so the CLI
and docs enumerate schedulers from one place instead of hard-coding the
mapping.  The pre-facade entry points (:func:`scheduler_for`,
:func:`schedule_instance`) remain as deprecation shims for one final
release (removal scheduled for 1.2.0; see ``docs/API.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Mapping, Tuple

import numpy as np

from ..errors import SchedulingError
from ..network.registry import TOPOLOGY_INFO
from .cluster import ClusterScheduler
from .greedy import CliqueScheduler, DiameterScheduler, GreedyScheduler
from .grid import GridScheduler
from .incremental import IncrementalScheduler, SchedulerSession
from .instance import Instance
from .kernels import resolve_kernel
from .line import LineScheduler
from .schedule import Schedule
from .scheduler import Scheduler
from .sharded import ShardedClusterScheduler, ShardedScheduler
from .star import StarScheduler

__all__ = [
    "SchedulerInfo",
    "SCHEDULER_INFO",
    "schedule",
    "resolve_scheduler",
    "scheduler_for",
    "schedule_instance",
]


@dataclass(frozen=True)
class SchedulerInfo:
    """Static metadata describing one paper scheduler.

    ``topologies`` lists the :class:`~repro.network.graph.Topology` family
    names that auto-dispatch routes to this scheduler; ``bound`` is the
    paper's approximation guarantee (human-readable, for listings);
    ``capabilities`` flags optional constructor features -- ``"kernel"``
    (accepts the reference/vectorized switch), ``"rng"`` (randomized),
    ``"order"``/``"compact"`` (greedy-family tuning knobs).
    """

    name: str
    topologies: Tuple[str, ...]
    bound: str
    capabilities: frozenset
    factory: Callable[..., Scheduler]

    def make(self, kernel: str = "auto", **options) -> Scheduler:
        """Instantiate the scheduler, forwarding ``kernel`` if supported."""
        if "kernel" in self.capabilities:
            options.setdefault("kernel", kernel)
        return self.factory(**options)


SCHEDULER_INFO: Mapping[str, SchedulerInfo] = {
    info.name: info
    for info in (
        SchedulerInfo(
            "greedy",
            (),
            "Gamma + 1 = h_max * Delta + 1 colours (§2.3)",
            frozenset({"kernel", "rng", "order", "compact"}),
            GreedyScheduler,
        ),
        SchedulerInfo(
            "clique",
            ("clique",),
            "O(k): k * ell + 1 (Thm 1)",
            frozenset({"kernel", "rng", "order", "compact"}),
            CliqueScheduler,
        ),
        SchedulerInfo(
            "diameter",
            ("hypercube", "butterfly", "ddim-grid", "torus"),
            "O(k d): k * ell * d + 1 (§3.1)",
            frozenset({"kernel", "rng", "order", "compact"}),
            DiameterScheduler,
        ),
        SchedulerInfo(
            "line",
            ("line",),
            "4 * ell (Thm 2)",
            frozenset(),
            LineScheduler,
        ),
        SchedulerInfo(
            "grid",
            ("grid",),
            "O(k log m) w.h.p. (Thm 3)",
            frozenset({"kernel"}),
            GridScheduler,
        ),
        SchedulerInfo(
            "cluster",
            ("cluster",),
            "O(min(k beta, 40^k ln^k m)) (Thm 4)",
            frozenset({"kernel", "rng"}),
            ClusterScheduler,
        ),
        SchedulerInfo(
            "star",
            ("star",),
            "O(log beta * min(k beta, c^k ln^k m)) (Thm 5)",
            frozenset({"kernel", "rng"}),
            StarScheduler,
        ),
        SchedulerInfo(
            "sharded",
            ("shard-cluster", "fog-hierarchy"),
            "intra phases in parallel + serial cross-shard phase "
            "(arXiv:2405.15015)",
            frozenset({"kernel"}),
            ShardedScheduler,
        ),
        SchedulerInfo(
            "sharded-cluster",
            (),
            "sharded with Alg-1 randomized cross-phase rounds (w.h.p.)",
            frozenset({"kernel", "rng"}),
            ShardedClusterScheduler,
        ),
        SchedulerInfo(
            "incremental",
            (),
            "Gamma + 1 (== greedy, §2.3), delta-maintained",
            frozenset({"kernel"}),
            IncrementalScheduler,
        ),
        SchedulerInfo(
            "incremental-clique",
            (),
            "O(k): k * ell + 1 (Thm 1), delta-maintained",
            frozenset({"kernel"}),
            lambda **options: IncrementalScheduler(base="clique", **options),
        ),
        SchedulerInfo(
            "incremental-diameter",
            (),
            "O(k d): k * ell * d + 1 (§3.1), delta-maintained",
            frozenset({"kernel"}),
            lambda **options: IncrementalScheduler(base="diameter", **options),
        ),
    )
}

# Auto-dispatch routes each topology family to the algorithm its
# TOPOLOGY_INFO registry entry names; SCHEDULER_INFO's `topologies`
# fields must agree (a registry-drift test enforces the consistency in
# both directions).  Unknown families fall back to "greedy" at lookup.
_TOPOLOGY_TO_ALGO = {
    name: info.default_algo for name, info in TOPOLOGY_INFO.items()
}


def resolve_scheduler(
    algo: str = "auto",
    *,
    topology: str | None = None,
    kernel: str = "auto",
    **options,
) -> Scheduler:
    """Instantiate a scheduler by algorithm name or topology family.

    ``algo="auto"`` picks the paper's scheduler for ``topology`` (falling
    back to greedy for unknown families).  Any :data:`SCHEDULER_INFO`
    name, or any name in the wider :func:`~repro.core.scheduler.register`
    registry (baselines included), also works; ``kernel`` is forwarded
    only to schedulers that declare the capability.
    """
    if algo == "auto":
        info = SCHEDULER_INFO[_TOPOLOGY_TO_ALGO.get(topology, "greedy")]
    elif algo in SCHEDULER_INFO:
        info = SCHEDULER_INFO[algo]
    else:
        from .scheduler import get_scheduler

        return get_scheduler(algo, **options)
    return info.make(kernel=kernel, **options)


def schedule(
    instance: Instance,
    network=None,
    *,
    algo: str = "auto",
    kernel: str = "auto",
    mode: str | None = None,
    rng: np.random.Generator | None = None,
    **options,
) -> Schedule:
    """Schedule ``instance`` with one call: ``repro.schedule(inst)``.

    A thin wrapper over a one-shot
    :class:`~repro.core.incremental.SchedulerSession`: the instance is
    submitted in a single delta and the session's ``current_schedule()``
    is returned.  For rolling workloads, hold the session open instead
    (:func:`repro.open_session`).

    Parameters
    ----------
    instance:
        The problem to schedule (its network determines auto-dispatch).
    network:
        Optional sanity handle: if given, it must be ``instance.network``
        (instances are bound to their network at construction; rebuild
        the instance to change topology).
    algo:
        ``"auto"`` (topology-appropriate paper scheduler, the default) or
        an explicit scheduler name -- any :data:`SCHEDULER_INFO` entry or
        registered baseline.
    kernel:
        ``"auto"``, ``"reference"``, or ``"vectorized"`` (see
        :mod:`repro.core.kernels`); forwarded to schedulers that support
        the switch.  Both kernels produce identical schedules.
    mode:
        ``"batch"`` (rebuild-and-color, the default) or ``"incremental"``
        (delta-repair engine; greedy family only).  Both modes produce
        identical schedules; ``None`` infers ``"incremental"`` only when
        ``algo`` names an incremental variant.
    rng:
        Randomness source for randomized schedulers.
    options:
        Extra keyword arguments for the scheduler's constructor
        (e.g. ``order="degree"`` for the greedy family).
    """
    if network is not None and network is not instance.network:
        raise SchedulingError(
            "schedule(): `network` must be the instance's own network; "
            "rebuild the Instance to schedule on a different topology"
        )
    resolve_kernel(kernel)  # fail fast on typos, before any work
    if mode is None:
        mode = "incremental" if algo.startswith("incremental") else "batch"
    if mode not in ("batch", "incremental"):
        raise SchedulingError(
            f"schedule(): unknown mode {mode!r}; "
            "expected 'batch' or 'incremental'"
        )
    session_kwargs = {}
    if mode == "incremental" or algo.startswith("incremental"):
        if "rebuild_threshold" in options:
            session_kwargs["rebuild_threshold"] = options.pop("rebuild_threshold")
    homes = {obj: instance.home(obj) for obj in instance.objects}
    with SchedulerSession(
        instance.network,
        algo=algo,
        kernel=kernel,
        mode=mode,
        object_homes=homes,
        rng=rng,
        options=options,
        **session_kwargs,
    ) as sess:
        sess.submit(instance.transactions)
        return sess.current_schedule(instance=instance)


# ---------------------------------------------------------------------- #
# pre-facade entry points (deprecated)
# ---------------------------------------------------------------------- #


def scheduler_for(instance: Instance) -> Scheduler:
    """Deprecated: use :func:`resolve_scheduler` (or :func:`schedule`)."""
    warnings.warn(
        "scheduler_for() is deprecated since 1.1.0 and will be removed in "
        "1.2.0; migrate to repro.schedule(instance) for one-shot scheduling, "
        "resolve_scheduler(topology=...) for a scheduler object, or "
        "repro.open_session(network) for rolling workloads (docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return resolve_scheduler(topology=instance.network.topology.name)


def schedule_instance(
    instance: Instance, rng: np.random.Generator | None = None
) -> Schedule:
    """Deprecated: use :func:`schedule`."""
    warnings.warn(
        "schedule_instance() is deprecated since 1.1.0 and will be removed "
        "in 1.2.0; migrate to repro.schedule(instance) or "
        "repro.open_session(network) for rolling workloads (docs/API.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    return schedule(instance, rng=rng)
