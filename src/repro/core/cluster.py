"""Cluster graph scheduler (§6, Theorem 4, Algorithm 1, Fig 3).

The cluster graph is ``alpha`` cliques of ``beta`` nodes whose designated
bridge nodes form a complete graph with edge weight ``gamma >= beta``.
With ``sigma`` the maximum number of clusters any object must visit:

* ``sigma == 1``: every object is cluster-local; the basic greedy schedule
  colours each cluster independently and all clusters run in parallel --
  an ``O(k)`` approximation, as in Theorem 1.
* **Approach 1** (greedy on the whole graph): ``O(k * beta)`` factor
  (Lemma 6: makespan ``O(k sigma beta gamma)`` vs the ``Omega(sigma gamma)``
  lower bound).
* **Approach 2** (Algorithm 1): clusters are randomly assigned to
  ``ceil(sigma / (24 ln m))`` phases; within a phase, rounds of duration
  ``beta + gamma + 2`` let each object activate in a random requesting
  cluster, enabling and executing transactions -- an
  ``O(40^k ln^k m)`` factor w.h.p. (Lemma 9).

``approach="auto"`` (the default) computes both and keeps the better
schedule, realizing Theorem 4's ``O(min(k beta, 40^k ln^k m))``.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import TopologyError
from .greedy import GreedyScheduler
from .instance import Instance
from .rounds import RoundGroup, activation_rounds, theoretical_zeta
from .schedule import Schedule
from .scheduler import Scheduler, register

__all__ = ["ClusterScheduler", "object_cluster_spread"]


def object_cluster_spread(instance: Instance) -> int:
    """``sigma``: the maximum number of clusters any object is requested in."""
    topo = instance.network.topology
    clusters = topo.require("clusters")
    cluster_of = {}
    for idx, members in enumerate(clusters):
        for node in members:
            cluster_of[node] = idx
    sigma = 0
    for obj in instance.objects:
        spread = {cluster_of[t.node] for t in instance.users(obj)}
        sigma = max(sigma, len(spread))
    return sigma


@register("cluster")
class ClusterScheduler(Scheduler):
    """Theorem 4 scheduler for cluster graphs.

    Parameters
    ----------
    approach:
        ``"auto"`` (default, take the better of both), ``1`` (plain
        greedy), or ``2`` (Algorithm 1's randomized phases/rounds).
    ln_factor:
        The phase-count constant (24 in the paper; E10 ablates it).
    max_rounds_per_phase:
        Safety cap before the deterministic tail takes over.
    kernel:
        Implementation switch for the Approach-1 greedy pass (see
        :mod:`repro.core.kernels`).
    """

    def __init__(
        self,
        approach: str | int = "auto",
        ln_factor: float = 24.0,
        max_rounds_per_phase: int = 10_000,
        kernel: str = "auto",
    ) -> None:
        if approach not in ("auto", 1, 2):
            raise ValueError(f"approach must be 'auto', 1 or 2, got {approach!r}")
        self.approach = approach
        self.ln_factor = ln_factor
        self.max_rounds_per_phase = max_rounds_per_phase
        self.kernel = kernel

    # ------------------------------------------------------------------ #

    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        net = instance.network
        # any cluster-family network qualifies: the §6 graph itself or a
        # sharded variant carrying the same clusters/bridges/gamma metadata
        # (e.g. shard-cluster, which is a cluster graph with shard semantics)
        if "clusters" not in net.topology.params:
            raise TopologyError(
                f"ClusterScheduler needs a 'cluster' network, got "
                f"{net.topology.name!r}"
            )
        if rng is None:
            rng = np.random.default_rng(0)
        sigma = object_cluster_spread(instance)

        if self.approach == 1 or sigma <= 1:
            return self._approach1(instance, sigma)
        if self.approach == 2:
            return self._approach2(instance, rng, sigma)
        s1 = self._approach1(instance, sigma)
        s2 = self._approach2(instance, rng, sigma)
        best = s1 if s1.makespan <= s2.makespan else s2
        best.meta["auto_choice"] = best.meta["approach"]
        best.meta["approach1_makespan"] = s1.makespan
        best.meta["approach2_makespan"] = s2.makespan
        return best

    def _approach1(self, instance: Instance, sigma: int) -> Schedule:
        sched = GreedyScheduler(kernel=self.kernel).schedule(instance)
        sched.meta.update(
            {"scheduler": self.name, "approach": 1, "sigma": sigma}
        )
        return sched

    def _approach2(
        self, instance: Instance, rng: np.random.Generator, sigma: int
    ) -> Schedule:
        topo = instance.network.topology
        clusters = topo.require("clusters")
        gamma = topo.require("gamma")
        groups = [
            RoundGroup(gid=i, nodes=tuple(members))
            for i, members in enumerate(clusters)
        ]
        # gamma + 2 covers any node -> bridge -> bridge -> node trip, which
        # is the cluster graph's diameter, so it bounds every object leg.
        travel = gamma + 2
        result = activation_rounds(
            instance,
            tids=[t.tid for t in instance.transactions],
            positions=instance.object_homes,
            start_time=0,
            groups=groups,
            travel=travel,
            rng=rng,
            max_rounds_per_phase=self.max_rounds_per_phase,
            ln_factor=self.ln_factor,
        )
        meta = {
            "scheduler": self.name,
            "approach": 2,
            "sigma": sigma,
            "psi": result.psi,
            "rounds_used": result.rounds_used,
            "round_duration": result.round_duration,
            "fallback_count": result.fallback_count,
            "theoretical_zeta": theoretical_zeta(
                instance.max_k, instance.paper_m
            ),
        }
        return Schedule(instance, result.commits, meta)

    # ------------------------------------------------------------------ #

    @staticmethod
    def theorem_ratio(instance: Instance) -> float:
        """Theorem 4's factor shape ``min(k beta, 40^k ln^k m)``."""
        topo = instance.network.topology
        beta = topo.require("beta")
        k = max(instance.max_k, 1)
        m = instance.paper_m
        lnm = max(math.log(max(m, 3)), 1.0)
        return min(k * beta, (40.0 ** k) * (lnm ** k))
