"""Scheduler interface and registry.

Every scheduling algorithm implements :class:`Scheduler`: it maps an
:class:`~repro.core.instance.Instance` to a feasible
:class:`~repro.core.schedule.Schedule`.  Randomized schedulers accept a
``numpy.random.Generator``; deterministic ones ignore it.  The registry
backs :mod:`repro.core.dispatch` and the CLI.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

import numpy as np

from ..errors import SchedulingError
from .instance import Instance
from .schedule import Schedule

__all__ = ["Scheduler", "register", "get_scheduler", "available_schedulers"]


class Scheduler(abc.ABC):
    """Abstract base for all schedulers.

    Subclasses set :attr:`name` and implement :meth:`schedule`.  The
    contract -- enforced across the whole test suite -- is that the returned
    schedule passes :meth:`Schedule.validate` for every valid instance.
    """

    #: Registry / display name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def schedule(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        """Compute a feasible schedule for ``instance``."""

    def __call__(
        self, instance: Instance, rng: np.random.Generator | None = None
    ) -> Schedule:
        return self.schedule(instance, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Callable[[], Scheduler]] = {}


def register(name: str) -> Callable[[type], type]:
    """Class decorator adding a scheduler to the registry under ``name``."""

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise SchedulingError(f"scheduler {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def get_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_schedulers() -> list[str]:
    """Registered scheduler names, sorted."""
    return sorted(_REGISTRY)
