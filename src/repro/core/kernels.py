"""Kernel selection: one switch between reference and vectorized hot paths.

Every performance-critical primitive in the library -- conflict-graph
construction (:meth:`~repro.core.dependency.DependencyGraph.build`),
greedy colouring (:func:`~repro.core.coloring.greedy_color`), and the
simulator's itinerary replay (:func:`~repro.sim.engine.execute`) -- ships
two implementations:

* ``"reference"`` -- the original per-edge pure-Python code, kept forever
  as the readable oracle the paper's pseudocode maps onto;
* ``"vectorized"`` -- numpy array kernels (inverted object index, batched
  distance gathers from the cached distance matrix, array colour state)
  that produce *field-by-field identical* results, asserted by the
  property tests in ``tests/test_kernels.py``.

``"auto"`` (the default everywhere) resolves to the vectorized kernels;
the environment variable ``REPRO_KERNEL`` overrides the auto choice,
which lets a whole test run or experiment sweep be pinned to either
implementation without touching code.
"""

from __future__ import annotations

import os

from ..errors import SchedulingError

__all__ = ["KERNELS", "DEFAULT_KERNEL", "resolve_kernel"]

#: the recognized kernel implementations
KERNELS = ("reference", "vectorized")

#: what ``"auto"`` resolves to when ``REPRO_KERNEL`` is unset
DEFAULT_KERNEL = "vectorized"


def resolve_kernel(kernel: str | None = "auto") -> str:
    """Resolve a ``kernel`` argument to a concrete implementation name.

    ``None`` and ``"auto"`` follow ``REPRO_KERNEL`` when it names a valid
    kernel, else :data:`DEFAULT_KERNEL`.  Any other value must be one of
    :data:`KERNELS`; unknown names raise :class:`SchedulingError` so a
    typo fails loudly instead of silently running the slow path.
    """
    if kernel is None or kernel == "auto":
        env = os.environ.get("REPRO_KERNEL", "").strip().lower()
        return env if env in KERNELS else DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise SchedulingError(
            f"unknown kernel {kernel!r}; choose from {('auto',) + KERNELS}"
        )
    return kernel
