"""Sequential phase composition for multi-stage schedulers.

The Grid (§5) and Star (§7) algorithms run a sequence of *phases*: each
phase schedules a subset of the transactions, using the objects' *current*
positions (wherever the previous phase left them) as effective homes, then
hands the updated positions to the next phase.

Feasibility composes: the sub-schedule's own positioning offset guarantees
every first leg from the current position fits, and because phases are
disjoint in time (each starts after the previous finished), an object's
inter-phase leg has at least as much slack as the sub-schedule's first leg.
"""

from __future__ import annotations

from typing import Dict, Mapping, MutableMapping, Sequence

from .instance import Instance
from .schedule import Schedule
from .scheduler import Scheduler

__all__ = ["PhaseState", "run_phase", "last_user_positions"]


class PhaseState:
    """Mutable cursor threaded through a phased schedule.

    Attributes
    ----------
    time:
        First time step available to the next phase (0 initially).
    positions:
        Current node of every object (homes initially).
    commits:
        Accumulated absolute commit times.
    """

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.time: int = 0
        self.positions: Dict[int, int] = dict(instance.object_homes)
        self.commits: Dict[int, int] = {}

    def finish(self, meta: Mapping[str, object] | None = None) -> Schedule:
        """Wrap the accumulated commits into a validated-shape Schedule."""
        return Schedule(self.instance, self.commits, meta)


def last_user_positions(
    sub_schedule: Schedule, positions: MutableMapping[int, int]
) -> None:
    """Update ``positions`` to each object's final node under ``sub_schedule``.

    Objects the sub-schedule never used keep their previous position.
    """
    for obj, visits in sub_schedule.itineraries():
        if len(visits) > 1:
            positions[obj] = visits[-1].node


def run_phase(
    state: PhaseState,
    tids: Sequence[int],
    scheduler: Scheduler,
    rng=None,
) -> Schedule | None:
    """Schedule ``tids`` as one phase, advancing ``state``.

    Builds the restricted sub-instance with the current object positions as
    homes, runs ``scheduler`` on it, shifts the resulting commit times by
    the phase start, and advances the time cursor by the phase makespan.
    Returns the (relative-time) sub-schedule, or None when ``tids`` is
    empty.
    """
    tids = [t for t in tids if t not in state.commits]
    if not tids:
        return None
    sub = state.instance.restrict(tids, state.positions)
    sub_schedule = scheduler.schedule(sub, rng)
    base = state.time
    for tid, ct in sub_schedule.commit_times.items():
        state.commits[tid] = base + ct
    state.time = base + sub_schedule.makespan
    last_user_positions(sub_schedule, state.positions)
    return sub_schedule
