"""Greedy weighted colouring of the dependency graph (§2.3).

A valid colouring assigns each transaction a positive integer such that
adjacent transactions receive colours differing by at least the weight of
the edge joining them.  The paper's scheme uses only colours of the form
``j * h_max + 1`` for ``j in 0..Delta``: adjacent transactions then satisfy
every edge constraint automatically (distinct multiples of ``h_max`` differ
by at least ``h_max >= w``), and the pigeonhole argument guarantees a free
colour among the first ``Delta + 1`` multiples.  Total colours used is at
most ``Gamma + 1 = h_max * Delta + 1``.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import SchedulingError
from .dependency import DependencyGraph

__all__ = ["greedy_color", "validate_coloring", "order_vertices"]


def order_vertices(
    graph: DependencyGraph,
    strategy: str = "id",
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Vertex processing order for the greedy colourer.

    ``"id"`` (deterministic, ascending tid), ``"degree"`` (descending
    conflict degree -- the classic Welsh-Powell heuristic), or ``"random"``
    (requires ``rng``; used by the random-order baseline).
    """
    verts = list(graph.vertices())
    if strategy == "id":
        return verts
    if strategy == "degree":
        return sorted(verts, key=lambda t: (-graph.degree(t), t))
    if strategy == "random":
        if rng is None:
            raise SchedulingError("random ordering requires an rng")
        verts = np.asarray(verts)
        return [int(v) for v in rng.permutation(verts)]
    raise SchedulingError(f"unknown ordering strategy {strategy!r}")


def greedy_color(
    graph: DependencyGraph, order: Sequence[int] | None = None
) -> Dict[int, int]:
    """Colour ``graph`` with colours ``{j * h_max + 1 : j >= 0}``.

    Processes vertices in ``order`` (default: ascending tid); each vertex
    takes the smallest index ``j`` whose colour no coloured neighbour holds.
    The result satisfies ``color <= Gamma + 1`` (asserted) and the weighted
    validity condition checked by :func:`validate_coloring`.
    """
    h_max = graph.h_max
    colors: Dict[int, int] = {}
    if order is None:
        order = list(graph.vertices())
    for tid in order:
        used = set()
        for nbr in graph.neighbors(tid):
            c = colors.get(nbr)
            if c is not None:
                used.add((c - 1) // h_max)
        j = 0
        while j in used:
            j += 1
        if j > graph.degree(tid):  # pragma: no cover - pigeonhole guarantee
            raise SchedulingError(
                f"greedy colouring exceeded degree bound at tid {tid}"
            )
        colors[tid] = j * h_max + 1
    return colors


def validate_coloring(graph: DependencyGraph, colors: Dict[int, int]) -> None:
    """Raise :class:`SchedulingError` unless ``colors`` is a valid weighted colouring."""
    for tid in graph.vertices():
        if tid not in colors:
            raise SchedulingError(f"vertex {tid} is uncoloured")
        if colors[tid] < 1:
            raise SchedulingError(f"vertex {tid} has non-positive colour")
        for nbr, w in graph.neighbors(tid).items():
            if nbr in colors and abs(colors[tid] - colors[nbr]) < w:
                raise SchedulingError(
                    f"colours of {tid} and {nbr} differ by "
                    f"{abs(colors[tid] - colors[nbr])} < edge weight {w}"
                )
