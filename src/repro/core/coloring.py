"""Greedy weighted colouring of the dependency graph (§2.3).

A valid colouring assigns each transaction a positive integer such that
adjacent transactions receive colours differing by at least the weight of
the edge joining them.  The paper's scheme uses only colours of the form
``j * h_max + 1`` for ``j in 0..Delta``: adjacent transactions then satisfy
every edge constraint automatically (distinct multiples of ``h_max`` differ
by at least ``h_max >= w``), and the pigeonhole argument guarantees a free
colour among the first ``Delta + 1`` multiples.  Total colours used is at
most ``Gamma + 1 = h_max * Delta + 1``.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import SchedulingError
from .dependency import DependencyGraph
from .kernels import resolve_kernel

__all__ = ["greedy_color", "validate_coloring", "order_vertices"]


def order_vertices(
    graph: DependencyGraph,
    strategy: str = "id",
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Vertex processing order for the greedy colourer.

    ``"id"`` (deterministic, ascending tid), ``"degree"`` (descending
    conflict degree -- the classic Welsh-Powell heuristic), or ``"random"``
    (requires ``rng``; used by the random-order baseline).
    """
    verts = list(graph.vertices())
    if strategy == "id":
        return verts
    if strategy == "degree":
        return sorted(verts, key=lambda t: (-graph.degree(t), t))
    if strategy == "random":
        if rng is None:
            raise SchedulingError("random ordering requires an rng")
        verts = np.asarray(verts)
        return [int(v) for v in rng.permutation(verts)]
    raise SchedulingError(f"unknown ordering strategy {strategy!r}")


def greedy_color(
    graph: DependencyGraph,
    order: Sequence[int] | None = None,
    kernel: str = "auto",
) -> Dict[int, int]:
    """Colour ``graph`` with colours ``{j * h_max + 1 : j >= 0}``.

    Processes vertices in ``order`` (default: ascending tid); each vertex
    takes the smallest index ``j`` whose colour no coloured neighbour holds.
    The result satisfies ``color <= Gamma + 1`` (asserted) and the weighted
    validity condition checked by :func:`validate_coloring`.  ``kernel``
    selects the implementation (see :mod:`repro.core.kernels`); both
    assign identical colours.
    """
    if resolve_kernel(kernel) == "vectorized":
        return _greedy_color_vectorized(graph, order)
    h_max = graph.h_max
    colors: Dict[int, int] = {}
    if order is None:
        order = list(graph.vertices())
    for tid in order:
        used = set()
        for nbr in graph.neighbors(tid):
            c = colors.get(nbr)
            if c is not None:
                used.add((c - 1) // h_max)
        j = 0
        while j in used:
            j += 1
        if j > graph.degree(tid):  # pragma: no cover - pigeonhole guarantee
            raise SchedulingError(
                f"greedy colouring exceeded degree bound at tid {tid}"
            )
        colors[tid] = j * h_max + 1
    return colors


def _greedy_color_vectorized(
    graph: DependencyGraph, order: Sequence[int] | None = None
) -> Dict[int, int]:
    """Array-state implementation of :func:`greedy_color`.

    Works on the graph's CSR view with flat slot/neighbour arrays and a
    per-vertex *bitmask* of occupied colour slots (one big-int OR per
    neighbour, lowest-zero-bit extraction for the free slot) instead of
    per-vertex Python dicts and sets.  Picks the same smallest-free slot
    as the reference for any processing order, so outputs are identical.
    """
    tids, indptr, indices, _ = graph.csr()
    m = len(tids)
    if m == 0:
        return {}
    h_max = graph.h_max
    if order is None:
        order_pos = range(m)
    else:
        order_pos = np.searchsorted(
            tids, np.asarray(order, dtype=np.int64)
        ).tolist()
    ptr = indptr.tolist()
    nbrs = indices.tolist()
    max_deg = int(np.diff(indptr).max()) if len(indices) else 0
    bit = [1 << j for j in range(max_deg + 1)]  # slot -> bitmask, no allocs
    slot = [0] * m  # occupied-slot bit or 0 while uncoloured
    j_of = np.empty(m, dtype=np.int64)
    for v in order_pos:
        lo, hi = ptr[v], ptr[v + 1]
        mask = 0
        for u in nbrs[lo:hi]:
            mask |= slot[u]
        j = ((mask + 1) & ~mask).bit_length() - 1  # lowest zero bit
        if j > hi - lo:  # pragma: no cover - pigeonhole guarantee
            raise SchedulingError(
                f"greedy colouring exceeded degree bound at tid {int(tids[v])}"
            )
        slot[v] = bit[j]
        j_of[v] = j
    color_of = (j_of * h_max + 1).tolist()
    tid_list = tids.tolist()
    if order is None:
        return dict(zip(tid_list, color_of))
    return {tid_list[v]: color_of[v] for v in order_pos}


def validate_coloring(graph: DependencyGraph, colors: Dict[int, int]) -> None:
    """Raise :class:`SchedulingError` unless ``colors`` is a valid weighted colouring."""
    for tid in graph.vertices():
        if tid not in colors:
            raise SchedulingError(f"vertex {tid} is uncoloured")
        if colors[tid] < 1:
            raise SchedulingError(f"vertex {tid} has non-positive colour")
        for nbr, w in graph.neighbors(tid).items():
            if nbr in colors and abs(colors[tid] - colors[nbr]) < w:
                raise SchedulingError(
                    f"colours of {tid} and {nbr} differ by "
                    f"{abs(colors[tid] - colors[nbr])} < edge weight {w}"
                )
