"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e . --no-use-pep517`` works on offline machines that lack
the ``wheel`` package (PEP 660 editable installs need it).
"""

from setuptools import setup

setup()
