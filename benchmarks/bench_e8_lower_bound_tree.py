"""Bench E8 (§8.2, Fig 6): tree hard instances and the TSP gap."""

import numpy as np

from repro.bounds import hard_tree_instance
from repro.core import GreedyScheduler
from repro.experiments import run_experiment

from conftest import SEED


def test_kernel_greedy_on_hard_tree(benchmark):
    hard = hard_tree_instance(9, np.random.default_rng(SEED))
    sched = GreedyScheduler()
    result = benchmark(lambda: sched.schedule(hard.instance))
    assert result.is_feasible()


def test_table_e8(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e8", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e8", table)
    gaps = table.column("gap")
    assert gaps == sorted(gaps) and gaps[-1] > gaps[0]
