"""Bench E21 (blockchain sharding): sharded vs cluster-greedy."""

import numpy as np

from repro.core import ShardedScheduler
from repro.experiments import run_experiment
from repro.network import shard_cluster, shard_members
from repro.workloads import partitioned_instance

from conftest import SEED


def _instance(cross):
    net = shard_cluster(8, 16, gamma=32)
    groups = shard_members(net)
    rng = np.random.default_rng(SEED)
    return partitioned_instance(
        net, groups, objects_per_group=8, k=2, cross_fraction=cross, rng=rng
    ), rng


def test_kernel_sharded_low_cross(benchmark):
    inst, rng = _instance(0.1)
    sched = ShardedScheduler()
    result = benchmark(lambda: sched.schedule(inst, rng))
    assert result.is_feasible()


def test_kernel_sharded_high_cross(benchmark):
    inst, rng = _instance(0.5)
    sched = ShardedScheduler()
    result = benchmark(lambda: sched.schedule(inst, rng))
    assert result.is_feasible()


def test_table_e21(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e21", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e21", table)
    for row in table.rows:
        if row["cross"] == 0.0:
            assert row["mk_sharded"] == row["mk_cluster"]
