"""Bench E4 (Theorem 3, Fig 2): boustrophedon grid scheduling."""

import math

import numpy as np

from repro.core import GridScheduler
from repro.experiments import run_experiment
from repro.network import grid
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_grid_scheduler_theory_side(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(24), w=24, k=2, rng=rng)
    sched = GridScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_kernel_grid_scheduler_forced_subgrids(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(24), w=24, k=2, rng=rng)
    sched = GridScheduler(side=6)
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_table_e4(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e4", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e4", table)
    vals = [v for v in table.column("ratio_norm") if not math.isnan(v)]
    assert vals and all(v <= 4.0 for v in vals)
