"""Bench E7 (Theorem 6, Fig 5): grid hard instances and the TSP gap."""

import numpy as np

from repro.bounds import hard_grid_instance, object_report
from repro.core import GreedyScheduler
from repro.experiments import run_experiment

from conftest import SEED


def test_kernel_hard_grid_generation(benchmark):
    hard = benchmark(
        lambda: hard_grid_instance(9, np.random.default_rng(SEED))
    )
    assert hard.instance.m == hard.network.n


def test_kernel_object_report_on_hard_grid(benchmark):
    hard = hard_grid_instance(9, np.random.default_rng(SEED))
    report = benchmark(lambda: object_report(hard.instance))
    assert len(report) == 2 * 9


def test_kernel_greedy_on_hard_grid(benchmark):
    hard = hard_grid_instance(9, np.random.default_rng(SEED))
    sched = GreedyScheduler()
    result = benchmark(lambda: sched.schedule(hard.instance))
    assert result.is_feasible()


def test_table_e7(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e7", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e7", table)
    gaps = table.column("gap")
    assert gaps == sorted(gaps) and gaps[-1] > gaps[0]
