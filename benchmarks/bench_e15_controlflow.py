"""Bench E15 (extension): control-flow execution."""

import numpy as np

from repro.controlflow import ControlFlowScheduler
from repro.experiments import run_experiment
from repro.network import grid
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_controlflow_hybrid(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(16), w=64, k=3, rng=rng)
    sched = ControlFlowScheduler("hybrid")
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_table_e15(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e15", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e15", table)
    for row in table.rows:
        assert row["cf_hybrid"] <= max(row["cf_rpc"], row["cf_migration"]) + 1e-9
