"""Bench E13 (extension): asynchronous replay."""

import math

import numpy as np

from repro.core import GreedyScheduler
from repro.experiments import run_experiment
from repro.network import clique
from repro.sim import asynchronous_execute
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_asynchronous_replay(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(clique(128), w=32, k=2, rng=rng)
    sched = GreedyScheduler().schedule(inst)
    res = benchmark(
        lambda: asynchronous_execute(sched, 2.0, np.random.default_rng(SEED))
    )
    assert res.makespan >= 1


def test_table_e13(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e13", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e13", table)
    for row in table.rows:
        # per-commit integer rounding makes ceil(phi) the exact envelope
        assert row["inflation"] <= math.ceil(row["phi"]) + 0.2
