"""Bench E10: ablations (grid side, cluster phase density, crossover)."""

from repro.experiments import run_experiment

from conftest import SEED


def test_table_e10(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e10", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e10", table)
    kinds = {r["ablation"] for r in table.rows}
    assert kinds >= {"grid-side", "cluster-ln-factor", "approach-crossover"}
