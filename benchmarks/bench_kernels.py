"""Micro-benchmarks of the library's hot kernels.

Tracks the primitives everything else is built from (per the HPC guides:
measure before optimizing, and keep a regression baseline): distance
matrix construction, dependency-graph build, greedy colouring, schedule
validation, hop-level execution, lower-bound computation, compaction,
and congestion rerouting.
"""

import time

import numpy as np

from repro.bounds import makespan_lower_bound, object_report
from repro.core import GreedyScheduler, compact_schedule
from repro.core.coloring import greedy_color
from repro.core.dependency import DependencyGraph
from repro.network import grid
from repro.obs import NULL_RECORDER
from repro.sim import execute, reroute_for_congestion
from repro.workloads import random_k_subsets

from conftest import SEED


def _setup():
    rng = np.random.default_rng(SEED)
    net = grid(20)  # 400 nodes
    inst = random_k_subsets(net, w=64, k=3, rng=rng)
    return net, inst


def test_kernel_distance_matrix(benchmark):
    def build():
        net = grid(20)
        return net.distance_matrix

    mat = benchmark(build)
    assert mat.shape == (400, 400)


def test_kernel_dependency_build(benchmark):
    _, inst = _setup()
    graph = benchmark(lambda: DependencyGraph.build(inst))
    assert graph.num_vertices == inst.m


def test_kernel_greedy_coloring(benchmark):
    _, inst = _setup()
    graph = DependencyGraph.build(inst)
    colors = benchmark(lambda: greedy_color(graph))
    assert len(colors) == inst.m


def test_kernel_schedule_validate(benchmark):
    _, inst = _setup()
    sched = GreedyScheduler().schedule(inst)

    def check():
        sched._itineraries = None  # force a fresh pass
        sched.validate()
        return sched

    benchmark(check)


def test_kernel_simulator_execute(benchmark):
    _, inst = _setup()
    sched = GreedyScheduler().schedule(inst)
    trace = benchmark(lambda: execute(sched, record_commits=False))
    assert trace.makespan == sched.makespan


def test_kernel_lower_bound(benchmark):
    _, inst = _setup()
    lb = benchmark(lambda: makespan_lower_bound(inst, object_report(inst)))
    assert lb >= 1


def test_kernel_compaction(benchmark):
    _, inst = _setup()
    sched = GreedyScheduler().schedule(inst)
    out = benchmark(lambda: compact_schedule(sched))
    assert out.makespan <= sched.makespan


def test_noop_recorder_overhead(benchmark):
    # the observability hooks must cost <5% when no recorder is attached:
    # recorder=None and an explicit NULL_RECORDER take the same disabled
    # path, so any drift here means NullRecorder grew real work
    _, inst = _setup()
    sched = GreedyScheduler().schedule(inst)

    def _once(recorder):
        t0 = time.perf_counter()
        execute(sched, record_commits=False, recorder=recorder)
        return time.perf_counter() - t0

    _once(None)  # warm caches so neither side pays first-run costs
    plain = float("inf")
    nulled = float("inf")
    for _ in range(25):  # interleaved min-of-N damps scheduler noise
        plain = min(plain, _once(None))
        nulled = min(nulled, _once(NULL_RECORDER))
    assert nulled <= plain * 1.05 + 0.002, (
        f"no-op recorder overhead {nulled / plain - 1:.1%} exceeds 5%"
    )
    benchmark(
        lambda: execute(sched, record_commits=False, recorder=NULL_RECORDER)
    )


def test_kernel_reroute(benchmark):
    _, inst = _setup()
    sched = GreedyScheduler().schedule(inst)
    plan = benchmark(lambda: reroute_for_congestion(sched, max_detours=4))
    assert plan.total_legs > 0
