"""Bench E2 (§3.1): diameter-scaled greedy on hypercube and butterfly."""

import numpy as np

from repro.core import DiameterScheduler
from repro.experiments import run_experiment
from repro.network import butterfly, hypercube
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_hypercube_greedy(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(hypercube(8), w=64, k=4, rng=rng)
    sched = DiameterScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_kernel_butterfly_greedy(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(butterfly(5), w=48, k=2, rng=rng)
    sched = DiameterScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_table_e2(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e2", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e2", table)
    assert all(v <= 2.0 for v in table.column("ratio_norm"))
