"""Bench E14 (extension): versioned reads vs single-copy."""

import numpy as np

from repro.experiments import run_experiment
from repro.network import clique
from repro.replication import ReplicatedGreedyScheduler, random_rw_instance

from conftest import SEED


def test_kernel_replicated_greedy(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_rw_instance(clique(128), w=32, k=2,
                              write_fraction=0.2, rng=rng)
    sched = ReplicatedGreedyScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_table_e14(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e14", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e14", table)
    for row in table.rows:
        assert row["speedup"] >= 0.99
        if row["write_frac"] == 1.0:
            assert abs(row["conflict_edges_ratio"] - 1.0) < 1e-9
