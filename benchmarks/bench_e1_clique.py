"""Bench E1 (Theorem 1): clique greedy scheduling.

Times the greedy kernel on a 256-node clique and regenerates the E1 table.
"""

import numpy as np

from repro.core import CliqueScheduler
from repro.experiments import run_experiment
from repro.network import clique
from repro.obs import MemoryRecorder
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_clique_greedy(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(clique(256), w=128, k=4, rng=rng)
    sched = CliqueScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.makespan >= 1


def test_table_e1(benchmark, record_table):
    rec = MemoryRecorder(meta={"experiment": "e1"})
    table = benchmark.pedantic(
        lambda: run_experiment("e1", seed=SEED, quick=True, recorder=rec),
        rounds=1,
        iterations=1,
    )
    record_table("e1", table)
    # the recorded table carries the metric snapshot into results/e1.txt
    assert any(n.startswith("metrics:") for n in table.notes)
    assert all(v <= 3.0 for v in table.column("ratio_over_k"))
