"""Bench E9: paper schedulers vs serialization / priority baselines."""

import numpy as np

from repro.baselines import SequentialScheduler, TSPOrderScheduler
from repro.experiments import run_experiment
from repro.network import clique
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_sequential_baseline(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(clique(256), w=64, k=2, rng=rng)
    sched = SequentialScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.makespan >= inst.m  # fully serialized


def test_kernel_tsp_order_baseline(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(clique(256), w=64, k=2, rng=rng)
    sched = TSPOrderScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.is_feasible()


def test_table_e9(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e9", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e9", table)
    assert {r["scheduler"] for r in table.rows} >= {
        "sequential",
        "random-order",
        "tsp-order",
    }
