"""Bench E6 (Theorem 5, Fig 4): star ring scheduling."""

import numpy as np

from repro.core import StarScheduler
from repro.experiments import run_experiment
from repro.network import star
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_star_scheduler(benchmark):
    rng = np.random.default_rng(SEED)
    net = star(16, 31)
    inst = random_k_subsets(net, w=64, k=2, rng=rng)
    sched = StarScheduler()
    result = benchmark(
        lambda: sched.schedule(inst, np.random.default_rng(SEED))
    )
    assert result.is_feasible()


def test_table_e6(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e6", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e6", table)
    assert all(v <= 3.0 for v in table.column("ratio_norm"))
