"""Bench E17 (extension): fault-aware replay and degradation."""

import numpy as np

from repro.core import GreedyScheduler
from repro.experiments import run_experiment
from repro.faults import FaultPlan, LinkFailure, faulty_execute, random_fault_plan
from repro.network import grid
from repro.obs import MemoryRecorder
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_faulty_execute_healthy(benchmark):
    # the zero-distortion path: overhead of the fault layer itself
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(10), w=32, k=2, rng=rng)
    sched = GreedyScheduler().schedule(inst)
    empty = FaultPlan()
    trace = benchmark(lambda: faulty_execute(sched, empty))
    assert trace.makespan == sched.makespan
    assert trace.retries == trace.reroutes == trace.recoveries == 0


def test_kernel_faulty_execute_disrupted(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(10), w=32, k=2, rng=rng)
    sched = GreedyScheduler().schedule(inst)
    plan = random_fault_plan(
        inst.network, sched.makespan, np.random.default_rng(SEED),
        intensity=2.0, objects=inst.objects,
    )
    trace = benchmark(lambda: faulty_execute(sched, plan))
    assert trace.committed == inst.m


def test_kernel_reroute_around_failure(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(10), w=32, k=2, rng=rng)
    sched = GreedyScheduler().schedule(inst)
    plan = FaultPlan(
        [LinkFailure(u, u + 1, 0, None) for u in range(0, 3)]
    )
    trace = benchmark(lambda: faulty_execute(sched, plan))
    assert trace.committed == inst.m


def test_table_e17(benchmark, record_table):
    rec = MemoryRecorder(meta={"experiment": "e17"})
    table = benchmark.pedantic(
        lambda: run_experiment("e17", seed=SEED, quick=True, recorder=rec),
        rounds=1,
        iterations=1,
    )
    record_table("e17", table)
    assert any(n.startswith("metrics:") for n in table.notes)
    for row in table.rows:
        if row["intensity"] == 0.0:
            # the healthy path is exact: no distortion, no recovery work
            assert row["stretch"] == 1.0
            assert row["retries"] == row["reroutes"] == row["recoveries"] == 0.0
        assert 0.0 < row["commit_rate"] <= 1.0
