#!/usr/bin/env python
"""Bench-regression harness entry point.

Usage::

    PYTHONPATH=src python benchmarks/harness.py                # full run
    PYTHONPATH=src python benchmarks/harness.py --quick        # fewer repeats
    PYTHONPATH=src python benchmarks/harness.py --out BENCH_5.json
    PYTHONPATH=src python benchmarks/harness.py --check        # regression gate

``--check`` runs the harness, compares against the newest committed
``BENCH_<n>.json`` (or ``--baseline FILE``), and exits non-zero if any
benchmark's machine-normalized time regressed by more than 20%.
Without ``--check`` it writes a new snapshot (``--out`` or the next free
``BENCH_<n>.json``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.benchreg import (  # noqa: E402  (path bootstrap above)
    attach_session_results,
    check_session_gate,
    compare_snapshots,
    latest_snapshot_path,
    load_snapshot,
    merge_runs,
    next_snapshot_path,
    run_harness,
    run_session_bench,
    write_snapshot,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (same benchmarks and sizes)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="snapshot path (default: next BENCH_<n>.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline instead of "
                             "writing a snapshot; exit 1 on regression")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline snapshot for --check "
                             "(default: newest BENCH_<n>.json)")
    parser.add_argument("--runs", type=int, default=3, metavar="N",
                        help="harness passes merged by per-bench median "
                             "(default: 3); medians vote out anomalously "
                             "fast/slow machine windows")
    parser.add_argument("--no-session", action="store_true",
                        help="skip the rolling-session throughput bench "
                             "(incremental vs per-window rebuild)")
    args = parser.parse_args(argv)

    runs = args.runs
    print(f"bench harness ({'quick' if args.quick else 'full'} mode, "
          f"{runs} pass{'es' if runs != 1 else ''})")
    bodies = []
    for i in range(runs):
        if runs > 1:
            print(f"pass {i + 1}/{runs}:")
        bodies.append(run_harness(quick=args.quick, verbose=True))
    # baselines keep the typical (median) timing; checks keep the best
    # (min), since check-side noise only ever inflates a measurement
    body = merge_runs(bodies, reduce="min" if args.check else "median")
    if not args.no_session:
        print("rolling-session bench:")
        attach_session_results(
            body, run_session_bench(quick=args.quick, verbose=True)
        )
    for group, s in sorted(body["speedups"].items()):
        print(f"  speedup {group:24s} {s['speedup']:5.2f}x "
              f"({s['reference_s'] * 1e3:.1f} ms -> "
              f"{s['vectorized_s'] * 1e3:.1f} ms)")

    if args.check:
        baseline_path = (
            Path(args.baseline) if args.baseline else latest_snapshot_path(ROOT)
        )
        if baseline_path is None:
            print("bench-check: no BENCH_<n>.json baseline found", file=sys.stderr)
            return 2
        baseline = load_snapshot(baseline_path)
        regressions, notes = compare_snapshots(baseline, body)
        for note in notes:
            print(f"  note: {note}")
        failed = False
        if regressions:
            print(f"bench-check FAILED vs {baseline_path.name}:")
            for reg in regressions:
                print(f"  REGRESSION {reg.describe()}")
            failed = True
        if not args.no_session:
            ok, detail = check_session_gate(body)
            print(f"  session gate: {detail}")
            if not ok:
                print("bench-check FAILED: session gate below threshold")
                failed = True
        if failed:
            return 1
        print(f"bench-check OK vs {baseline_path.name} "
              f"({len(baseline.get('results', {}))} benchmarks)")
        return 0

    out = Path(args.out) if args.out else next_snapshot_path(ROOT)
    write_snapshot(body, out)
    print(f"snapshot written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
