"""Bench E11 (extension): online contention management."""

import numpy as np

from repro.experiments import run_experiment
from repro.network import clique
from repro.online import poisson_workload, run_epoch_batched, run_online

from conftest import SEED


def _workload():
    rng = np.random.default_rng(SEED)
    return poisson_workload(clique(64), w=16, k=2, rate=1.0, count=48, rng=rng)


def test_kernel_online_timestamp_manager(benchmark):
    wl = _workload()
    result = benchmark(lambda: run_online(wl))
    assert len(result.schedule.commit_times) == wl.m


def test_kernel_epoch_batching(benchmark):
    wl = _workload()
    result = benchmark(
        lambda: run_epoch_batched(wl, rng=np.random.default_rng(SEED))
    )
    assert len(result.schedule.commit_times) == wl.m


def test_table_e11(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e11", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e11", table)
    assert {r["policy"] for r in table.rows} == {
        "timestamp", "random-prio", "epoch-batch",
    }
