"""Bench E16 (extension): object placement policies."""

import numpy as np

from repro.experiments import run_experiment
from repro.network import grid
from repro.placement import optimize_homes
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_walk_optimal_placement(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(16), w=32, k=2, rng=rng)
    result = benchmark(lambda: optimize_homes(inst, "walk"))
    assert result.m == inst.m


def test_table_e16(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e16", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e16", table)
    assert {r["policy"] for r in table.rows} >= {
        "random-requester", "walk-optimal", "1-center",
    }
