"""Benchmark harness configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each ``bench_eN_*``
module regenerates the corresponding experiment table (the reproduction
of a paper theorem/figure; see DESIGN.md §3) and times the scheduling
kernels involved.  Regenerated tables are written to
``benchmarks/results/<exp id>.txt`` so the numbers recorded in
EXPERIMENTS.md can be refreshed from a bench run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Write a rendered experiment table under benchmarks/results/."""

    def _write(exp_id: str, table) -> None:
        (results_dir / f"{exp_id}.txt").write_text(table.render() + "\n")

    return _write


SEED = 20170722
