"""Bench E3 (Theorem 2, Fig 1): two-phase line scheduling."""

import numpy as np

from repro.core import LineScheduler
from repro.experiments import run_experiment
from repro.network import line
from repro.workloads import line_span_instance

from conftest import SEED


def test_kernel_line_scheduler(benchmark):
    rng = np.random.default_rng(SEED)
    inst = line_span_instance(line(2048), w=128, k=2, max_span=31, rng=rng)
    sched = LineScheduler()
    result = benchmark(lambda: sched.schedule(inst))
    assert result.makespan <= 4 * LineScheduler.ell(inst)


def test_table_e3(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e3", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e3", table)
    assert all(v <= 6.0 for v in table.column("ratio"))
