"""Bench E12 (extension): congestion analysis."""

import numpy as np

from repro.core import GreedyScheduler
from repro.experiments import run_experiment
from repro.network import grid
from repro.sim import congestion_report
from repro.workloads import random_k_subsets

from conftest import SEED


def test_kernel_congestion_report(benchmark):
    rng = np.random.default_rng(SEED)
    inst = random_k_subsets(grid(16), w=32, k=2, rng=rng)
    sched = GreedyScheduler().schedule(inst)
    rep = benchmark(lambda: congestion_report(sched))
    assert rep.makespan == sched.makespan


def test_table_e12(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e12", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e12", table)
    assert all(r["cap1_upper_bound"] >= r["cap1_lower_bound"] for r in table.rows)
