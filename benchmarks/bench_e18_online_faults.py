"""Bench E18 (extension): live fault absorption in the online runtime."""

import numpy as np

from repro.experiments import run_experiment
from repro.faults import FaultPlan, random_fault_plan
from repro.network import grid
from repro.obs import MemoryRecorder
from repro.online import AdmissionControl, poisson_workload, run_online, run_resilient
from repro.sim import InvariantSanitizer

from conftest import SEED


def test_kernel_run_resilient_healthy(benchmark):
    # the zero-fault path: overhead of hop-by-hop flight simulation alone
    rng = np.random.default_rng(SEED)
    wl = poisson_workload(grid(8), w=16, k=2, rate=1.0, count=48, rng=rng)
    healthy = run_online(wl)
    res = benchmark(lambda: run_resilient(wl))
    assert res.makespan == healthy.makespan
    assert res.report.retries == res.report.reroutes == 0


def test_kernel_run_resilient_disrupted(benchmark):
    rng = np.random.default_rng(SEED)
    wl = poisson_workload(grid(8), w=16, k=2, rate=1.0, count=48, rng=rng)
    horizon = run_online(wl).makespan
    plan = random_fault_plan(
        wl.instance.network, horizon, np.random.default_rng(SEED),
        intensity=2.0, objects=wl.instance.objects,
    )
    res = benchmark(lambda: run_resilient(wl, plan))
    assert res.report.committed == wl.m


def test_kernel_run_resilient_sanitized(benchmark):
    # sanitizer on the hot path: measures the invariant-checking overhead
    rng = np.random.default_rng(SEED)
    wl = poisson_workload(grid(8), w=16, k=2, rate=1.0, count=48, rng=rng)

    def run():
        san = InvariantSanitizer()
        return run_resilient(wl, FaultPlan(), sanitizer=san), san

    res, san = benchmark(run)
    assert san.checks > 0
    assert not san.violations
    assert res.report.committed == wl.m


def test_kernel_run_resilient_admission(benchmark):
    rng = np.random.default_rng(SEED)
    wl = poisson_workload(grid(8), w=16, k=2, rate=2.0, count=48, rng=rng)
    admission = AdmissionControl(high_water=6, policy="shed")
    res = benchmark(lambda: run_resilient(wl, admission=admission))
    assert res.report.committed + len(res.report.shed) == res.report.released


def test_table_e18(benchmark, record_table):
    rec = MemoryRecorder(meta={"experiment": "e18"})
    table = benchmark.pedantic(
        lambda: run_experiment("e18", seed=SEED, quick=True, recorder=rec),
        rounds=1,
        iterations=1,
    )
    record_table("e18", table)
    assert any(n.startswith("metrics:") for n in table.notes)
    for row in table.rows:
        assert row["violations"] == 0.0
        if row["policy"] == "resilient":
            assert row["commit_rate"] == 1.0
        if row["intensity"] == 0.0 and row["policy"] == "resilient":
            assert row["retries"] == row["reroutes"] == 0.0
