"""Bench E5 (Theorem 4, Algorithm 1, Fig 3): cluster scheduling."""

import numpy as np

from repro.core import ClusterScheduler
from repro.experiments import run_experiment
from repro.network import cluster
from repro.workloads import partitioned_instance

from conftest import SEED


def _instance(cross):
    net = cluster(8, 16, gamma=16)
    groups = net.topology.require("clusters")
    rng = np.random.default_rng(SEED)
    return partitioned_instance(
        net, groups, objects_per_group=8, k=2, cross_fraction=cross, rng=rng
    ), rng


def test_kernel_cluster_approach1(benchmark):
    inst, rng = _instance(0.5)
    sched = ClusterScheduler(approach=1)
    result = benchmark(lambda: sched.schedule(inst, rng))
    assert result.is_feasible()


def test_kernel_cluster_approach2(benchmark):
    inst, _ = _instance(0.5)
    sched = ClusterScheduler(approach=2)
    result = benchmark(
        lambda: sched.schedule(inst, np.random.default_rng(SEED))
    )
    assert result.is_feasible()


def test_table_e5(benchmark, record_table):
    table = benchmark.pedantic(
        lambda: run_experiment("e5", seed=SEED, quick=True),
        rounds=1,
        iterations=1,
    )
    record_table("e5", table)
    for row in table.rows:
        assert row["mk_auto"] <= min(
            row["mk_approach1"], row["mk_approach2"]
        ) + 1e-9
