"""Unit tests for certified lower bounds (repro.bounds.lower)."""

import numpy as np

from repro.bounds import makespan_lower_bound, object_report
from repro.core import Instance, Transaction
from repro.network import clique, line
from repro.workloads import random_k_subsets


class TestObjectReport:
    def test_report_covers_used_objects_only(self):
        txns = [Transaction(0, 0, {0})]
        inst = Instance(clique(3), txns, {0: 0, 7: 2})
        rep = object_report(inst)
        assert set(rep) == {0}

    def test_small_sets_are_exact(self):
        txns = [
            Transaction(0, 0, {0}),
            Transaction(1, 3, {0}),
            Transaction(2, 7, {0}),
        ]
        inst = Instance(line(8), txns, {0: 3})
        ob = object_report(inst)[0]
        # walk from 3 visiting {0, 3, 7}: 3 + ... best is 3->0 (3) ->7 (7) = 10
        # or 3->7 (4) ->0 (7) = 11; exact = 10
        assert ob.walk_lower == ob.walk_upper == 10
        assert ob.load == 3

    def test_tour_fields_consistent(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(line(20), w=4, k=2, rng=rng)
        for ob in object_report(inst).values():
            assert ob.tour_lower <= ob.tour_estimate
            assert ob.walk_lower <= ob.walk_upper


class TestMakespanLowerBound:
    def test_at_least_one(self):
        txns = [Transaction(0, 0, {0})]
        inst = Instance(clique(2), txns, {0: 0})
        assert makespan_lower_bound(inst) == 1

    def test_walk_dominates(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 9, {0})]
        inst = Instance(line(10), txns, {0: 0})
        assert makespan_lower_bound(inst) >= 9

    def test_load_bound_on_clique(self):
        # 6 transactions share one object on a clique: need >= 6 steps
        txns = [Transaction(i, i, {0}) for i in range(6)]
        inst = Instance(clique(6), txns, {0: 0})
        assert makespan_lower_bound(inst) >= 6

    def test_load_bound_scales_with_min_gap(self):
        # 3 users of one object spaced >= 3 apart on a line
        txns = [Transaction(0, 0, {0}), Transaction(1, 3, {0}), Transaction(2, 6, {0})]
        inst = Instance(line(7), txns, {0: 0})
        assert makespan_lower_bound(inst) >= (3 - 1) * 3 + 1

    def test_reuses_supplied_report(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(clique(12), w=4, k=2, rng=rng)
        rep = object_report(inst)
        assert makespan_lower_bound(inst, rep) == makespan_lower_bound(inst)

    def test_lower_bound_never_exceeds_any_feasible_makespan(self):
        from repro.core import GreedyScheduler

        rng = np.random.default_rng(2)
        for seed in range(5):
            inst = random_k_subsets(
                line(15), w=4, k=2, rng=np.random.default_rng(seed)
            )
            s = GreedyScheduler().schedule(inst)
            s.validate()
            assert makespan_lower_bound(inst) <= s.makespan
