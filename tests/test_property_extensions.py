"""Property-based tests, round three: the model extensions.

Invariants under hypothesis for the replication, control-flow, capacity,
and placement modules.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlflow import ControlFlowScheduler
from repro.core import GreedyScheduler, compact_schedule
from repro.network import clique, grid, line
from repro.placement import optimize_homes
from repro.replication import (
    ReplicatedGreedyScheduler,
    build_rw_dependency,
    random_rw_instance,
)
from repro.sim import capacity_execute
from repro.workloads import random_k_subsets


@st.composite
def small_networks(draw):
    family = draw(st.sampled_from(["clique", "line", "grid"]))
    if family == "clique":
        return clique(draw(st.integers(min_value=2, max_value=14)))
    if family == "line":
        return line(draw(st.integers(min_value=2, max_value=20)))
    return grid(
        draw(st.integers(min_value=2, max_value=4)),
        draw(st.integers(min_value=2, max_value=4)),
    )


@st.composite
def rw_instances(draw):
    net = draw(small_networks())
    w = draw(st.integers(min_value=1, max_value=5))
    k = draw(st.integers(min_value=1, max_value=min(2, w)))
    wf = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_rw_instance(net, w, k, wf, np.random.default_rng(seed))


@given(rw_instances())
@settings(max_examples=50, deadline=None)
def test_replicated_schedules_always_feasible(inst):
    s = ReplicatedGreedyScheduler().schedule(inst)
    s.validate()
    # the write-aware conflict graph is a subgraph of the single-copy one
    from repro.core.dependency import DependencyGraph

    thin = build_rw_dependency(inst).num_edges
    full = DependencyGraph.build(inst.as_single_copy()).num_edges
    assert thin <= full


@given(
    small_networks(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(["rpc", "migration", "hybrid"]),
)
@settings(max_examples=50, deadline=None)
def test_controlflow_schedules_always_feasible(net, seed, mode):
    rng = np.random.default_rng(seed)
    w = max(2, net.n // 2)
    inst = random_k_subsets(net, w, min(2, w), rng)
    s = ControlFlowScheduler(mode).schedule(inst)
    s.validate()
    assert s.makespan >= 1


@given(
    small_networks(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_capacity_execution_monotone_and_ordered(net, seed, cap):
    rng = np.random.default_rng(seed)
    w = max(2, net.n // 2)
    inst = random_k_subsets(net, w, min(2, w), rng)
    s = GreedyScheduler().schedule(inst)
    res = capacity_execute(s, capacity=cap)
    unlimited = capacity_execute(s, capacity=10**6)
    assert res.makespan >= unlimited.makespan
    assert unlimited.commit_times == compact_schedule(s).commit_times
    for obj in inst.objects:
        users = sorted(inst.users(obj), key=lambda t: s.time_of(t.tid))
        times = [res.commit_times[t.tid] for t in users]
        assert times == sorted(times)


@given(
    small_networks(),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(["walk", "max", "sum"]),
)
@settings(max_examples=50, deadline=None)
def test_placement_keeps_instances_schedulable(net, seed, objective):
    rng = np.random.default_rng(seed)
    w = max(2, net.n // 2)
    inst = random_k_subsets(net, w, min(2, w), rng)
    opt = optimize_homes(inst, objective)
    # homes still on requesters, and scheduling still works end to end
    for obj in opt.objects:
        users = {t.node for t in opt.users(obj)}
        if users:
            assert opt.home(obj) in users
    GreedyScheduler().schedule(opt).validate()
