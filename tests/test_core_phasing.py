"""Unit tests for phase composition (repro.core.phasing)."""

import numpy as np

from repro.core import GreedyScheduler, Instance, Schedule, Transaction
from repro.core.phasing import PhaseState, last_user_positions, run_phase
from repro.network import line
from repro.sim import execute
from repro.workloads import random_k_subsets


class TestPhaseState:
    def test_initial_state(self):
        rng = np.random.default_rng(0)
        inst = random_k_subsets(line(8), w=3, k=2, rng=rng)
        state = PhaseState(inst)
        assert state.time == 0
        assert state.positions == inst.object_homes
        assert state.commits == {}


class TestRunPhase:
    def test_two_phases_compose_feasibly(self):
        rng = np.random.default_rng(1)
        inst = random_k_subsets(line(12), w=4, k=2, rng=rng)
        state = PhaseState(inst)
        tids = [t.tid for t in inst.transactions]
        run_phase(state, tids[:6], GreedyScheduler())
        t_mid = state.time
        run_phase(state, tids[6:], GreedyScheduler())
        assert state.time >= t_mid
        s = state.finish()
        s.validate()
        execute(s)

    def test_phase_skips_already_committed(self):
        rng = np.random.default_rng(2)
        inst = random_k_subsets(line(6), w=2, k=1, rng=rng)
        state = PhaseState(inst)
        tids = [t.tid for t in inst.transactions]
        run_phase(state, tids, GreedyScheduler())
        before = dict(state.commits)
        assert run_phase(state, tids, GreedyScheduler()) is None
        assert state.commits == before

    def test_empty_tids_returns_none(self):
        rng = np.random.default_rng(3)
        inst = random_k_subsets(line(6), w=2, k=1, rng=rng)
        state = PhaseState(inst)
        assert run_phase(state, [], GreedyScheduler()) is None

    def test_positions_follow_objects(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 5, {0})]
        inst = Instance(line(6), txns, {0: 0})
        state = PhaseState(inst)
        run_phase(state, [0, 1], GreedyScheduler())
        assert state.positions[0] == 5  # rode to its last user

    def test_commit_times_offset_by_phase_start(self):
        txns = [Transaction(0, 0, {0}), Transaction(1, 3, {1})]
        inst = Instance(line(4), txns, {0: 0, 1: 3})
        state = PhaseState(inst)
        run_phase(state, [0], GreedyScheduler())
        first_end = state.time
        run_phase(state, [1], GreedyScheduler())
        assert state.commits[1] > first_end - 1
        assert state.commits[1] == first_end + 1


class TestLastUserPositions:
    def test_unused_objects_keep_position(self):
        txns = [Transaction(0, 0, {0})]
        inst = Instance(line(4), txns, {0: 0, 1: 3})
        s = Schedule(inst, {0: 1})
        positions = {0: 0, 1: 3}
        last_user_positions(s, positions)
        assert positions == {0: 0, 1: 3}

    def test_used_objects_move(self):
        txns = [Transaction(0, 2, {0})]
        inst = Instance(line(4), txns, {0: 0})
        s = Schedule(inst, {0: 2})
        positions = {0: 0}
        last_user_positions(s, positions)
        assert positions[0] == 2
