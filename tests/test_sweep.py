"""Parallel sweep runner: worker-count parity, merging, serialization."""

from __future__ import annotations

import time

import pytest

import repro.experiments.sweep as sweep_mod
from repro.errors import ReproError, SweepTimeoutError
from repro.experiments.sweep import SweepReport, run_sweep, sweep_shards
from repro.obs import MemoryRecorder


@pytest.fixture(scope="module")
def serial_report():
    return run_sweep(["e3"], seeds=[1, 2], quick=True, workers=1)


class TestWorkerParity:
    def test_workers_do_not_change_the_report(self, serial_report):
        parallel = run_sweep(["e3"], seeds=[1, 2], quick=True, workers=2)
        assert parallel.parity_key() == serial_report.parity_key()
        # everything except worker count and timings matches exactly
        assert parallel.experiments == serial_report.experiments
        assert parallel.seeds == serial_report.seeds
        assert parallel.quick == serial_report.quick

    def test_cells_in_shard_order(self, serial_report):
        pairs = [(c["experiment"], c["seed"]) for c in serial_report.cells]
        assert pairs == [("e3", 1), ("e3", 2)]

    def test_cell_payload_shape(self, serial_report):
        cell = serial_report.cells[0]
        assert set(cell) == {"experiment", "seed", "table", "metrics"}
        assert cell["table"]["rows"]
        assert set(cell["metrics"]) == {"counters", "gauges", "histograms"}

    def test_profiles_cover_every_cell(self, serial_report):
        assert len(serial_report.profiles) == len(serial_report.cells)
        for prof in serial_report.profiles:
            assert prof["wall_s"] > 0


class TestRecorderMerge:
    def test_parent_recorder_sees_cells_and_child_counters(self):
        rec = MemoryRecorder()
        report = run_sweep(["e3"], seeds=[5], quick=True, workers=1,
                           recorder=rec)
        snap = rec.registry.snapshot()
        assert snap["counters"]["sweep.cells"] == 1
        # child counters are folded into the parent registry
        for name, value in report.cells[0]["metrics"]["counters"].items():
            assert snap["counters"][name] == value
        assert any(p.name == "sweep" for p in rec.phases)


class TestSerialization:
    def test_roundtrip(self, serial_report):
        clone = SweepReport.from_json(serial_report.to_json())
        assert clone == serial_report

    def test_envelope_kind(self, serial_report):
        import json

        doc = json.loads(serial_report.to_json())
        assert doc["kind"] == "sweep"
        assert doc["schema_version"] == 1


class TestValidation:
    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_sweep(["e99"], seeds=[0])

    def test_empty_experiments(self):
        with pytest.raises(ReproError, match="at least one experiment"):
            run_sweep([], seeds=[0])

    def test_empty_seeds(self):
        with pytest.raises(ReproError, match="at least one seed"):
            run_sweep(["e3"], seeds=[])

    def test_bad_workers(self):
        with pytest.raises(ReproError, match="workers"):
            run_sweep(["e3"], seeds=[0], workers=0)

    def test_shards_are_the_cross_product(self):
        assert sweep_shards(["e1", "e3"], [4, 5], True) == [
            ("e1", 4, True),
            ("e1", 5, True),
            ("e3", 4, True),
            ("e3", 5, True),
        ]

    def test_bad_cell_timeout(self):
        with pytest.raises(ReproError, match="cell_timeout"):
            run_sweep(["e3"], seeds=[0], cell_timeout=0)

    def test_bad_on_timeout_policy(self):
        with pytest.raises(ReproError, match="on_timeout"):
            run_sweep(["e3"], seeds=[0], cell_timeout=5.0,
                      on_timeout="retry")


def _hang_on_seed_one(shard):
    """Stand-in worker: hangs forever on seed 1, real result otherwise.

    Monkeypatched over ``_run_shard``; fork-pool children inherit the
    patched module, so the hang happens inside a real worker process.
    """
    if shard[1] == 1:
        time.sleep(600)
    return _hang_on_seed_one.original(shard)


class TestCellTimeout:
    @pytest.fixture(autouse=True)
    def _patch_hang(self, monkeypatch):
        _hang_on_seed_one.original = sweep_mod._run_shard
        monkeypatch.setattr(sweep_mod, "_run_shard", _hang_on_seed_one)

    def test_hung_cell_recorded_and_sweep_completes(self):
        rec = MemoryRecorder()
        report = run_sweep(
            ["e3"], seeds=[0, 1, 2], quick=True, workers=2,
            cell_timeout=3.0, recorder=rec,
        )
        by_seed = {c["seed"]: c for c in report.cells}
        assert set(by_seed) == {0, 1, 2}  # every cell present, in order
        assert "error" not in by_seed[0] and "error" not in by_seed[2]
        err = by_seed[1]["error"]
        assert err["type"] == "SweepTimeoutError"
        assert "seed 1" in err["message"]
        # the timed-out cell has a profile entry flagged as a timeout
        prof = {p["seed"]: p for p in report.profiles}[1]
        assert prof.get("timeout") is True
        snap = rec.registry.snapshot()
        assert snap["counters"]["sweep.timeouts"] == 1
        assert snap["counters"]["sweep.cells"] == 3

    def test_strict_policy_raises_typed_error(self):
        with pytest.raises(SweepTimeoutError, match="seed 1"):
            run_sweep(["e3"], seeds=[1], quick=True, workers=1,
                      cell_timeout=1.0, on_timeout="strict")

    def test_timeout_forces_pool_path_for_single_worker(self):
        # workers=1 with a timeout must still bound the hung cell
        t0 = time.monotonic()
        report = run_sweep(["e3"], seeds=[1], quick=True, workers=1,
                           cell_timeout=1.0)
        assert time.monotonic() - t0 < 30
        assert "error" in report.cells[0]
