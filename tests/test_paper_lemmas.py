"""Statistical validation of the paper's probabilistic lemmas.

These tests sample the randomized constructions and check the
concentration claims the proofs rest on -- not just the end-to-end
theorems.  Sample sizes and tolerances are chosen so the tests are
deterministic-in-practice (fixed seeds) while still being honest
measurements of the claimed events.
"""

import math

import numpy as np
import pytest

from repro.bounds import hard_grid_instance
from repro.core.rounds import theoretical_psi
from repro.network import grid
from repro.workloads import random_k_subsets


class TestLemma2And3GridConcentration:
    """Lemma 2/3: per-subgrid object usage concentrates around xi*k/w.

    With xi = 27*w*ln(m)/k nodes per subgrid, each object is used by
    mu = 27*ln(m) transactions per subgrid in expectation, and w.h.p. by
    more than L = 9*ln(m) and fewer than U = 45*ln(m).
    """

    def _counts(self, side, w, k, seed):
        rng = np.random.default_rng(seed)
        net = grid(side)
        inst = random_k_subsets(net, w, k, rng)
        m = max(net.n, w)
        xi = 27 * w * math.log(m) / k
        sub_side = max(1, round(math.sqrt(xi)))
        counts = {}
        for t in inst.transactions:
            r, c = divmod(t.node, side)
            key = (r // sub_side, c // sub_side)
            for o in t.objects:
                counts[(key, o)] = counts.get((key, o), 0) + 1
        return inst, counts, math.log(m)

    def test_usage_within_chernoff_band(self):
        # one subgrid covers the grid at this scale (the xi > n^2/9 branch)
        inst, counts, lnm = self._counts(side=16, w=8, k=2, seed=0)
        L, U = 9 * lnm, 45 * lnm
        violations = sum(
            1 for v in counts.values() if not (L < v < U)
        )
        # Lemma 3: all-objects-all-subgrids event holds with prob 1 - 2/m
        assert violations == 0

    def test_expected_usage_matches_k_over_w(self):
        inst, counts, _ = self._counts(side=16, w=8, k=2, seed=1)
        total_uses = sum(counts.values())
        # every transaction contributes k uses
        assert total_uses == inst.m * 2
        per_object = total_uses / inst.num_objects
        # E[uses per object] = m*k/w
        assert per_object == pytest.approx(inst.m * 2 / 8)


class TestLemma7And8ClusterActivation:
    """Lemma 7/8: phase assignment and activation probabilities.

    Lemma 7: with psi = ceil(sigma/(24 ln m)) phases, no object sees more
    than 40*ln(m) of its clusters in one phase (w.h.p.).  Lemma 8: a
    transaction whose k objects each activate among at most xi candidate
    clusters is enabled with probability >= 1/xi^k per round.
    """

    def test_phase_spread_bound(self):
        rng = np.random.default_rng(2)
        m = 256
        lnm = math.log(m)
        sigma = 200
        psi = theoretical_psi(sigma, m)
        # assign sigma clusters to psi phases uniformly, many times
        worst = 0
        for _ in range(200):
            phases = rng.integers(0, psi, size=sigma)
            _, counts = np.unique(phases, return_counts=True)
            worst = max(worst, int(counts.max()))
        assert worst <= 40 * lnm

    def test_enabling_probability_lower_bound(self):
        rng = np.random.default_rng(3)
        k, xi = 2, 4
        trials = 20_000
        # the transaction is enabled when all k objects pick its cluster
        # out of xi candidates each
        picks = rng.integers(0, xi, size=(trials, k))
        enabled = np.all(picks == 0, axis=1).mean()
        assert enabled == pytest.approx(1 / xi**k, rel=0.15)

    def test_rounds_to_drain_geometric(self):
        rng = np.random.default_rng(4)
        k, xi, population = 2, 4, 32
        p = 1 / xi**k
        # expected rounds for all of `population` independent transactions
        # ~ ln(population)/p; the adaptive engine's observed round counts
        # (E10: 7-13) are consistent with this scale
        rounds_needed = []
        for _ in range(100):
            alive = population
            r = 0
            while alive > 0 and r < 10_000:
                r += 1
                alive -= rng.binomial(alive, p)
            rounds_needed.append(r)
        mean_rounds = np.mean(rounds_needed)
        assert mean_rounds <= 2 * math.log(population) / p + 10


class TestCorollary3DistinctObjects:
    """Corollary 3: any lambda transactions of one block (s^{3/8} <= lambda
    <= s -- at most s can execute in an s-step window, since they share the
    serializer a_i) use >= lambda^{3/5} distinct B-objects.

    The corollary is a w.h.p. statement over the random picks; we verify
    it on sampled lambda-subsets of each block.
    """

    @pytest.mark.parametrize("s", [9, 16, 25])
    def test_distinct_b_objects_in_window_sized_subsets(self, s):
        rng = np.random.default_rng(s)
        hard = hard_grid_instance(s, rng)
        inst = hard.instance
        blocks = inst.network.topology.require("blocks")
        lam = s  # the largest window the proof considers
        threshold = lam ** (3 / 5)
        sampler = np.random.default_rng(1000 + s)
        for members in blocks:
            for _ in range(20):
                chosen = sampler.choice(len(members), size=lam, replace=False)
                b_objects = {
                    o
                    for idx in chosen
                    for o in inst.transaction_at(members[idx]).objects
                    if o >= s
                }
                assert len(b_objects) >= threshold, (
                    f"s={s}: {lam} txns used only {len(b_objects)} "
                    f"distinct B objects (< {threshold:.1f})"
                )

    def test_a_object_serializes_block(self):
        rng = np.random.default_rng(7)
        hard = hard_grid_instance(4, rng)
        inst = hard.instance
        blocks = inst.network.topology.require("blocks")
        for i, members in enumerate(blocks):
            for v in members:
                assert i in inst.transaction_at(v).objects  # a_i = i
