"""Tests for the shared LoadControl vocabulary and the 1.1.0 renames.

Since 1.1.0 the service and the cluster spell their load-management
knobs identically and can share one :class:`LoadControl`; the pre-1.1.0
spellings (``ServiceConfig(policy=...)``, ``ClusterConfig(restart=...)``)
are accepted for one release with a :class:`DeprecationWarning`, and a
conflicting old/new pair is a hard typed error, never a silent pick.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.errors import ClusterError, ServiceError
from repro.faults.backoff import RetryPolicy
from repro.service import LoadControl, ServiceConfig


class TestLoadControl:
    def test_defaults_are_valid(self):
        lc = LoadControl()
        assert lc.window == 16
        assert lc.high_water == 64
        assert lc.low_water is None
        assert lc.admission == "defer"
        assert isinstance(lc.retry, RetryPolicy)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"window": 0}, "window"),
            ({"high_water": 0}, "high_water"),
            ({"high_water": 8, "low_water": 9}, "low_water"),
            ({"low_water": -1}, "low_water"),
            ({"admission": "bribe"}, "admission"),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ServiceError, match=match):
            LoadControl(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LoadControl().window = 3


class TestServiceConfigAliases:
    def test_policy_alias_warns_and_maps_to_admission(self):
        with pytest.warns(DeprecationWarning, match="removed in 1.2.0"):
            cfg = ServiceConfig(policy="shed")
        assert cfg.admission == "shed"
        assert cfg.policy == "shed"  # alias stays readable post-init

    def test_conflicting_policy_and_admission_is_an_error(self):
        with pytest.raises(ServiceError, match="conflicting admission"):
            ServiceConfig(policy="shed", admission="defer")

    def test_agreeing_policy_and_admission_accepted_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = ServiceConfig(policy="shed", admission="shed")
        assert cfg.admission == "shed"

    def test_new_spelling_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = ServiceConfig(admission="strict")
        assert cfg.admission == "strict"


class TestClusterConfigAliases:
    def test_restart_alias_warns_and_maps_to_retry(self):
        budget = RetryPolicy(max_retries=5)
        with pytest.warns(DeprecationWarning, match="removed in 1.2.0"):
            cfg = ClusterConfig(restart=budget)
        assert cfg.retry == budget
        assert cfg.restart == budget  # alias stays readable post-init

    def test_conflicting_restart_and_retry_is_an_error(self):
        with pytest.raises(ClusterError, match="conflicting restart"):
            ClusterConfig(
                restart=RetryPolicy(max_retries=5),
                retry=RetryPolicy(max_retries=2),
            )

    def test_new_spelling_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = ClusterConfig(retry=RetryPolicy(max_retries=1))
        assert cfg.retry.max_retries == 1


class TestSharedControl:
    def test_one_control_feeds_both_configs(self):
        budget = RetryPolicy(max_retries=7, max_wait=2)
        lc = LoadControl(
            window=24, high_water=48, low_water=12,
            admission="shed", retry=budget,
        )
        svc = ServiceConfig(control=lc)
        clu = ClusterConfig(control=lc)
        assert (svc.window, svc.high_water, svc.low_water) == (24, 48, 12)
        assert svc.admission == "shed"
        assert svc.retry == budget
        assert clu.retry == budget

    def test_explicit_fields_win_over_control(self):
        lc = LoadControl(window=24, admission="shed",
                         retry=RetryPolicy(max_retries=7))
        svc = ServiceConfig(window=8, admission="defer", control=lc)
        assert svc.window == 8
        assert svc.admission == "defer"
        assert svc.retry.max_retries == 7  # unset field still from control
        clu = ClusterConfig(retry=RetryPolicy(max_retries=1), control=lc)
        assert clu.retry.max_retries == 1

    def test_control_without_overrides_validates_as_usual(self):
        lc = LoadControl(high_water=4, low_water=2)
        svc = ServiceConfig(control=lc)
        assert svc.effective_low_water == 2
