"""Tests for the observability subsystem (repro.obs).

Covers the metric primitives, event round trips, recorder semantics, the
central guarantee that recording never changes a run (traced/untraced
parity), and trace persistence through the unified serializer.
"""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import (
    DEFAULT_BUCKET_EDGES,
    EVENT_TYPES,
    AdmissionEvent,
    CommitEvent,
    Counter,
    Gauge,
    Histogram,
    HopEvent,
    LeaseRecoveryEvent,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    NULL_RECORDER,
    PhaseTimer,
    RetryEvent,
    RunTrace,
    active,
    event_from_dict,
    event_to_dict,
    trace_from_dict,
    trace_to_csv,
    trace_to_dict,
)
from repro.network import clique, grid
from repro.workloads.generators import random_k_subsets


class TestMetrics:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_tracks_max(self):
        g = Gauge()
        g.set(3)
        g.set(9)
        g.set(5)
        assert g.value == 5 and g.max_value == 9

    def test_histogram_fixed_buckets(self):
        h = Histogram(edges=(1, 5, 10))
        for v in (0, 1, 3, 7, 100):
            h.observe(v)
        # buckets: <=1, <=5, <=10, >10
        assert h.counts == [2, 1, 1, 1]
        assert h.n == 5 and h.total == 111
        assert h.mean == pytest.approx(111 / 5)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(5, 1))

    def test_registry_snapshot_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.gauge("z").set(1)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["histograms"]["h"]["edges"] == list(DEFAULT_BUCKET_EDGES)
        # byte-stable under canonical dumps
        a = json.dumps(snap, sort_keys=True)
        b = json.dumps(reg.snapshot(), sort_keys=True)
        assert a == b


class TestEvents:
    def test_every_kind_round_trips(self):
        samples = [
            HopEvent(3, 1, 0, 2),
            CommitEvent(5, 7, 2, (1, 4)),
            RetryEvent(2, 1, 0, 3, 4),
            AdmissionEvent(1, 9, "shed", 6),
            LeaseRecoveryEvent(8, 2, 1, 0, True),
        ]
        for e in samples:
            rec = event_to_dict(e)
            assert rec["kind"] == e.kind
            back = event_from_dict(rec)
            assert back == e

    def test_all_registered_kinds_constructible(self):
        assert set(EVENT_TYPES) >= {
            "hop", "commit", "retry", "reroute", "lease_recovery",
            "admission", "dispatch", "crash", "lost", "session_delta",
        }

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError, match="unknown"):
            event_from_dict({"kind": "teleport", "time": 1})


class TestRecorders:
    def test_null_recorder_is_disabled_and_inert(self):
        rec = NullRecorder()
        assert not rec.enabled
        rec.record(HopEvent(1, 1, 0, 1))
        rec.count("x")
        rec.gauge("g", 1)
        rec.observe("h", 1)
        with rec.phase("p"):
            pass

    def test_active_resolves_none_to_shared_null(self):
        assert active(None) is NULL_RECORDER
        rec = MemoryRecorder()
        assert active(rec) is rec

    def test_memory_recorder_collects_all_planes(self):
        rec = MemoryRecorder(meta={"experiment": "t"})
        rec.record(CommitEvent(2, 1, 0, (3,)))
        rec.count("c", 2)
        rec.gauge("g", 7)
        rec.observe("h", 4)
        with rec.phase("schedule"):
            pass
        trace = rec.trace()
        assert trace.counts_by_kind() == {"commit": 1}
        assert trace.metrics["counters"]["c"] == 2
        assert trace.metrics["gauges"]["g"]["value"] == 7
        assert [p.name for p in trace.phases] == ["schedule"]
        assert trace.meta["experiment"] == "t"

    def test_phase_timer_reports_on_exception(self):
        sink = []
        with pytest.raises(RuntimeError):
            with PhaseTimer("p", sink.append):
                raise RuntimeError("boom")
        assert len(sink) == 1 and sink[0].name == "p"


def _make_schedule(seed=4):
    from repro.core.dispatch import resolve_scheduler

    net = grid(5)
    inst = random_k_subsets(net, 10, 2, np.random.default_rng(seed))
    sched = resolve_scheduler(
        topology=inst.network.topology.name
    ).schedule(inst, np.random.default_rng(seed))
    sched.validate()
    return sched


class TestParity:
    """Recording must never change what a runtime computes."""

    def test_execute_traced_untraced_identical(self):
        from repro.sim.engine import execute

        sched = _make_schedule()
        plain = execute(sched)
        rec = MemoryRecorder()
        traced = execute(sched, recorder=rec)
        assert plain.as_dict() == traced.as_dict()
        assert rec.trace().hottest_edge == plain.hottest_edge

    def test_run_online_traced_untraced_identical(self):
        from repro.online.arrivals import poisson_workload
        from repro.online.runtime import run_online

        wl = poisson_workload(clique(8), w=6, k=2, rate=0.7, count=6,
                              rng=np.random.default_rng(11))
        plain = run_online(wl)
        rec = MemoryRecorder()
        traced = run_online(wl, recorder=rec)
        assert plain.schedule.commit_times == traced.schedule.commit_times
        assert rec.trace().commit_times == plain.schedule.commit_times

    def test_run_resilient_traced_untraced_identical(self):
        from repro.faults.plan import random_fault_plan
        from repro.online.arrivals import poisson_workload
        from repro.online.resilient import run_resilient

        net = clique(8)
        wl = poisson_workload(net, w=6, k=2, rate=0.7, count=6,
                              rng=np.random.default_rng(11))
        plan = random_fault_plan(net, horizon=20,
                                 rng=np.random.default_rng(5))
        plain = run_resilient(wl, plan=plan)
        rec = MemoryRecorder()
        traced = run_resilient(wl, plan=plan, recorder=rec)
        assert plain.schedule.commit_times == traced.schedule.commit_times
        assert plain.report == traced.report

    def test_faulty_execute_traced_untraced_identical(self):
        from repro.faults.engine import faulty_execute
        from repro.faults.plan import random_fault_plan

        sched = _make_schedule()
        plan = random_fault_plan(
            sched.instance.network, horizon=sched.makespan,
            rng=np.random.default_rng(5), crash_rate=0.05,
            objects=sched.instance.objects,
        )
        plain = faulty_execute(sched, plan)
        rec = MemoryRecorder()
        traced = faulty_execute(sched, plan, recorder=rec)
        assert plain.as_dict() == traced.as_dict()

    def test_run_experiment_rows_identical_with_recorder(self):
        from repro.experiments.registry import run_experiment

        plain = run_experiment("e1", seed=1, quick=True)
        rec = MemoryRecorder()
        traced = run_experiment("e1", seed=1, quick=True, recorder=rec)
        assert plain.rows == traced.rows
        # the only difference is the appended metrics footnote
        assert traced.notes[:-1] == plain.notes
        assert traced.notes[-1].startswith("metrics: ")


class TestTracePersistence:
    def _trace(self):
        from repro.sim.engine import execute

        rec = MemoryRecorder(meta={"experiment": "t", "seed": 4})
        execute(_make_schedule(), recorder=rec)
        return rec.trace()

    def test_dict_round_trip(self):
        trace = self._trace()
        back = trace_from_dict(trace_to_dict(trace))
        assert back.events == trace.events
        assert back.metrics == trace.metrics
        assert back.meta == trace.meta
        assert back.hottest_edge == trace.hottest_edge

    def test_file_round_trip_via_unified_serializer(self, tmp_path):
        from repro.io import load_trace, save_trace
        from repro.io.serialize import SCHEMA_VERSION

        trace = self._trace()
        path = tmp_path / "t.json"
        save_trace(trace, path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["kind"] == "run_trace"
        back = load_trace(path)
        assert back.events == trace.events
        assert back.hottest_edge == trace.hottest_edge

    def test_csv_export_header_and_rows(self):
        trace = self._trace()
        text = trace_to_csv(trace)
        lines = text.strip().split("\n")
        assert lines[0] == "kind,time,detail"
        assert len(lines) == len(trace.events) + 1

    def test_summarize_mentions_headlines(self):
        trace = self._trace()
        digest = trace.summarize()
        assert "events:" in digest
        assert "hottest edge:" in digest
        assert "makespan:" in digest

    def test_empty_trace_summarize(self):
        trace = RunTrace()
        assert trace.hottest_edge is None
        assert trace.makespan == 0
        assert "events: 0 total" in trace.summarize()
