"""Tests for the topology registry (repro.network.registry).

The registry is the single dispatch table for topology construction:
``make_network`` must round-trip every entry, the CLI ``sizes`` adapters
must agree with the legacy positional convention, and the registry must
stay consistent with the scheduler registry (every ``default_algo``
resolves, and auto-dispatch's topology table is derived from it).
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import GraphError, ReproError
from repro.network import (
    TOPOLOGY_INFO,
    clique,
    cluster,
    grid,
    make_network,
    network_from_sizes,
    shard_cluster,
    topology_names,
)

# one valid kwargs sample per registered family, exercising every
# required parameter (defaults cover the rest)
SAMPLE_PARAMS = {
    "clique": {"n": 6},
    "line": {"n": 5},
    "grid": {"rows": 3},
    "cluster": {"alpha": 3, "beta": 4},
    "hypercube": {"dim": 3},
    "butterfly": {"dim": 2},
    "star": {"alpha": 3, "beta": 2},
    "torus": {"rows": 3},
    "ddim-grid": {"dims": (2, 3)},
    "lb-grid": {"s": 4},
    "lb-tree": {"s": 4},
    "shard-cluster": {"shards": 3, "shard_size": 4},
    "fog-hierarchy": {"tiers": 2},
}

# (size, size2) sample per family for the CLI adapter
SAMPLE_SIZES = {
    "clique": (6, None),
    "line": (5, None),
    "grid": (3, 4),
    "cluster": (3, 4),
    "hypercube": (3, None),
    "butterfly": (2, None),
    "star": (3, 2),
    "torus": (3, 4),
    "ddim-grid": (2, 3),
    "lb-grid": (4, None),
    "lb-tree": (4, None),
    "shard-cluster": (3, 4),
    "fog-hierarchy": (2, 4),
}


class TestMakeNetwork:
    def test_round_trips_every_registered_family(self):
        assert set(SAMPLE_PARAMS) == set(TOPOLOGY_INFO)
        for name, params in SAMPLE_PARAMS.items():
            net = make_network(name, **params)
            assert net.topology.name == name
            assert net.n >= 1

    def test_sizes_adapter_covers_every_family(self):
        assert set(SAMPLE_SIZES) == set(TOPOLOGY_INFO)
        for name, (size, size2) in SAMPLE_SIZES.items():
            net = network_from_sizes(name, size, size2)
            assert net.topology.name == name

    def test_matches_direct_builders(self):
        for a, b in [
            (make_network("clique", n=8), clique(8)),
            (make_network("grid", rows=3, cols=5), grid(3, 5)),
            (make_network("cluster", alpha=3, beta=4), cluster(3, 4)),
            (
                make_network("shard-cluster", shards=3, shard_size=4),
                shard_cluster(3, 4),
            ),
        ]:
            assert a.topology == b.topology
            assert a.n == b.n

    def test_cli_size_convention_preserved(self):
        # the historical CLI defaults must survive the registry migration
        assert network_from_sizes("cluster", 3, None).topology.params["beta"] == 4
        assert network_from_sizes("star", 3, None).topology.params["beta"] == 7
        assert network_from_sizes("ddim-grid", 3, None).n == 9
        assert (
            network_from_sizes("shard-cluster", 3, None)
            .topology.params["shard_size"]
            == 4
        )

    def test_unknown_topology(self):
        with pytest.raises(GraphError, match="unknown topology"):
            make_network("moebius")
        with pytest.raises(GraphError, match="unknown topology"):
            network_from_sizes("moebius", 4)
        # GraphError subclasses ReproError, so legacy handlers still catch
        with pytest.raises(ReproError, match="unknown topology"):
            make_network("moebius")

    def test_unknown_parameter(self):
        with pytest.raises(GraphError, match="unknown parameter"):
            make_network("clique", n=4, twist=True)

    def test_missing_required_parameter(self):
        with pytest.raises(GraphError, match="requires parameter"):
            make_network("cluster", alpha=3)

    def test_defaults_filled(self):
        net = make_network("fog-hierarchy", tiers=2)
        assert net.topology.params["fanout"] == 2
        assert net.topology.params["shard_size"] == 4

    def test_topology_names_order(self):
        assert topology_names() == tuple(TOPOLOGY_INFO)
        assert "shard-cluster" in topology_names()
        assert "fog-hierarchy" in topology_names()


class TestFacadeExports:
    def test_repro_make_network(self):
        net = repro.make_network("shard-cluster", shards=2, shard_size=3)
        assert net.topology.name == "shard-cluster"

    def test_public_names(self):
        assert hasattr(repro, "TOPOLOGY_INFO")
        assert repro.TOPOLOGY_INFO is TOPOLOGY_INFO


class TestSchedulerRegistryConsistency:
    def test_every_default_algo_resolves(self):
        from repro.core.dispatch import SCHEDULER_INFO

        for info in TOPOLOGY_INFO.values():
            assert info.default_algo in SCHEDULER_INFO, info.name

    def test_auto_dispatch_table_derived_from_registry(self):
        from repro.core.dispatch import _TOPOLOGY_TO_ALGO

        assert _TOPOLOGY_TO_ALGO == {
            name: info.default_algo for name, info in TOPOLOGY_INFO.items()
        }

    def test_bound_kinds_valid(self):
        for info in TOPOLOGY_INFO.values():
            assert info.bound_kind in ("enforced", "recorded", "none"), info.name

    def test_param_schema_well_formed(self):
        for info in TOPOLOGY_INFO.values():
            assert info.doc
            names = [p.name for p in info.params]
            assert len(names) == len(set(names))
            for p in info.params:
                assert p.doc
