"""Unit tests for the simulation engine and routing."""

import pytest

from repro.core import Instance, Schedule, Transaction
from repro.errors import InfeasibleScheduleError
from repro.network import clique, line
from repro.sim import execute, plan_leg


class TestPlanLeg:
    def test_hops_follow_shortest_path(self):
        net = line(5)
        leg = plan_leg(net, obj=0, src=0, dst=3, depart=2, deadline=10)
        assert leg.path == (0, 1, 2, 3)
        assert leg.arrive == 5
        assert leg.distance == 3
        assert [(h.src, h.dst, h.enter, h.exit) for h in leg.hops] == [
            (0, 1, 2, 3),
            (1, 2, 3, 4),
            (2, 3, 4, 5),
        ]

    def test_weighted_hops(self):
        from repro.network.graph import Network

        net = Network(3, [(0, 1, 3), (1, 2, 2)])
        leg = plan_leg(net, 0, 0, 2, depart=0, deadline=9)
        assert leg.arrive == 5
        assert leg.hops[0].exit == 3

    def test_trivial_leg(self):
        net = line(3)
        leg = plan_leg(net, 0, 1, 1, depart=4, deadline=4)
        assert leg.hops == ()
        assert leg.arrive == 4


class TestExecute:
    def make(self, commits):
        txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
        inst = Instance(line(6), txns, {0: 0})
        return Schedule(inst, commits)

    def test_feasible_schedule_executes(self):
        trace = execute(self.make({0: 1, 1: 5}))
        assert trace.makespan == 5
        assert trace.total_distance == 4
        assert trace.object_distance == {0: 4}

    def test_infeasible_raises_in_transit(self):
        with pytest.raises(InfeasibleScheduleError, match="reaches"):
            execute(self.make({0: 1, 1: 3}))

    def test_commit_events_ordered(self):
        trace = execute(self.make({0: 1, 1: 5}))
        assert [c.tid for c in trace.commits] == [0, 1]
        assert trace.commits[0].objects == (0,)

    def test_record_commits_off(self):
        trace = execute(self.make({0: 1, 1: 5}), record_commits=False)
        assert trace.commits == ()

    def test_edge_traffic_counts_traversals(self):
        trace = execute(self.make({0: 1, 1: 5}))
        assert trace.edge_traffic == {(0, 1): 1, (1, 2): 1, (2, 3): 1, (3, 4): 1}
        assert trace.hottest_edge[1] == 1

    def test_idle_time_counts_slack(self):
        trace = execute(self.make({0: 1, 1: 9}))  # 4 extra steps of slack
        assert trace.idle_object_time == 4

    def test_max_in_flight(self):
        txns = [
            Transaction(0, 0, {0}),
            Transaction(1, 1, {1}),
            Transaction(2, 4, {0}),
            Transaction(3, 5, {1}),
        ]
        inst = Instance(line(6), txns, {0: 0, 1: 1})
        s = Schedule(inst, {0: 1, 1: 1, 2: 5, 3: 5})
        trace = execute(s)
        assert trace.max_in_flight == 2  # both objects travel simultaneously

    def test_revisited_home_node(self):
        # object homed at node 4, used at node 0 first, then back at node 4
        txns = [Transaction(0, 0, {0}), Transaction(1, 4, {0})]
        inst = Instance(line(6), txns, {0: 4})
        trace = execute(Schedule(inst, {0: 4, 1: 8}))
        assert trace.total_distance == 8

    def test_object_shared_at_same_node_forbidden_twice(self):
        # commit-and-forward in the same step is allowed: gap exactly dist
        txns = [Transaction(0, 2, {0}), Transaction(1, 3, {0})]
        inst = Instance(line(6), txns, {0: 2})
        trace = execute(Schedule(inst, {0: 1, 1: 2}))
        assert trace.makespan == 2

    def test_multiple_objects_per_transaction(self):
        txns = [Transaction(0, 2, {0, 1})]
        inst = Instance(line(5), txns, {0: 0, 1: 4})
        trace = execute(Schedule(inst, {0: 2}))
        assert trace.total_distance == 4
        with pytest.raises(InfeasibleScheduleError):
            execute(Schedule(inst, {0: 1}))

    def test_trace_as_dict(self):
        d = execute(self.make({0: 1, 1: 5})).as_dict()
        assert d["makespan"] == 5
        assert d["commits"] == 2

    def test_clique_parallel_commits(self):
        net = clique(4)
        txns = [Transaction(i, i, {i}) for i in range(4)]
        inst = Instance(net, txns, {i: i for i in range(4)})
        trace = execute(Schedule(inst, {i: 1 for i in range(4)}))
        assert trace.makespan == 1
        assert trace.total_distance == 0
