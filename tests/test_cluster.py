"""Tests for the crash-tolerant multi-process cluster (repro.cluster).

The headline properties under test:

* the sharded streams partition the unsharded arrival sequence exactly
  (disjoint, union-complete, deterministic);
* a service snapshot/restore continues bit-for-bit identically;
* the journal is write-ahead (torn tails dropped, divergence loud);
* a cluster run with injected kills/stalls commits the same transaction
  set as the fault-free run (``parity_key`` bit-equality), and the
  cluster-wide accounting identity holds under every failure mode.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ChaosPlan,
    ClusterConfig,
    ClusterReport,
    ShardedStream,
    StreamSpec,
    WindowJournal,
    WorkerDelay,
    WorkerKill,
    WorkerStall,
    accounting_digest,
    build_network,
    run_cluster,
)
from repro.cluster.wire import (
    CELL_KIND,
    MSG_WINDOW,
    decode_message,
    encode_message,
)
from repro.errors import (
    ClusterError,
    HeartbeatTimeoutError,
    ReproError,
    ServiceError,
    WorkerCrashError,
)
from repro.faults.backoff import RetryPolicy
from repro.errors import TopologyError
from repro.network import grid, node_shards, shard_cluster
from repro.service import SchedulingService, ServiceConfig

STREAM = StreamSpec(kind="poisson", w=16, k=2, rate=0.6, seed=7)
# coordinator-shard handoff stream for the shard-cluster runs
SHARD_STREAM = StreamSpec(
    kind="poisson", w=12, k=2, rate=0.8, seed=3, assign="shard"
)
SVC = ServiceConfig(window=8)


def quick_config(**kw) -> ClusterConfig:
    defaults = dict(
        workers=2,
        windows=10,
        checkpoint_every=4,
        restart_backoff_s=0.01,
        poll_interval_s=0.02,
    )
    defaults.update(kw)
    return ClusterConfig(**defaults)


class TestWire:
    def test_round_trip(self):
        body = {"worker": 1, "window": 3, "cumulative": {"released": 9}}
        text = encode_message(MSG_WINDOW, body)
        assert "\n" not in text  # single-line framing
        kind, decoded = decode_message(text, expected_kind=MSG_WINDOW)
        assert kind == MSG_WINDOW
        assert decoded == body

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ClusterError, match="unknown wire kind"):
            encode_message("gossip", {})

    def test_malformed_json_rejected(self):
        with pytest.raises(ClusterError, match="malformed"):
            decode_message("{not json")

    def test_wrong_schema_version_rejected(self):
        payload = json.loads(encode_message(MSG_WINDOW, {"x": 1}))
        payload["schema_version"] = 999
        with pytest.raises(ClusterError, match="schema_version"):
            decode_message(json.dumps(payload))

    def test_kind_mismatch_rejected(self):
        text = encode_message(MSG_WINDOW, {"x": 1})
        with pytest.raises(ClusterError, match="expected wire kind"):
            decode_message(text, expected_kind=CELL_KIND)

    def test_missing_body_rejected(self):
        payload = json.loads(encode_message(MSG_WINDOW, {"x": 1}))
        del payload["body"]
        with pytest.raises(ClusterError, match="missing 'body'"):
            decode_message(json.dumps(payload))


class TestChaosPlan:
    def test_events_sorted_and_stable(self):
        plan = ChaosPlan([WorkerKill(1, 5), WorkerKill(0, 2)])
        assert [e.window for e in plan.events] == [2, 5]
        assert len(plan) == 2

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ClusterError, match="more than once"):
            ChaosPlan([WorkerKill(0, 2), WorkerStall(0, 2)])

    def test_validate_against_bounds(self):
        plan = ChaosPlan([WorkerKill(3, 5)])
        with pytest.raises(ClusterError, match="worker 3"):
            plan.validate_against(workers=2, windows=10)
        with pytest.raises(ClusterError, match="window 5"):
            ChaosPlan([WorkerKill(0, 5)]).validate_against(2, 4)

    def test_for_worker_filters(self):
        plan = ChaosPlan([WorkerKill(0, 1), WorkerDelay(1, 2)])
        assert len(plan.for_worker(0)) == 1
        assert plan.for_worker(0)[0].window == 1

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ClusterError):
            ChaosPlan([WorkerKill(-1, 0)])
        with pytest.raises(ClusterError):
            ChaosPlan([WorkerStall(0, 0, seconds=0.0)])


class TestShardedStream:
    def test_shards_partition_the_base_stream(self):
        net = grid(3)
        horizon = 80
        base_all = STREAM.build(net).window(0, horizon)
        shard_tids = []
        for i in range(3):
            shard = ShardedStream(STREAM.build(net), 3, {i: 0})
            got = shard.window(0, horizon)
            assert all(t.txn.tid % 3 == i for t in got)
            assert shard.released == len(got)
            shard_tids.append([t.txn.tid for t in got])
        union = sorted(t for tids in shard_tids for t in tids)
        assert union == [t.txn.tid for t in base_all]

    def test_ownership_start_step_excludes_earlier_releases(self):
        net = grid(3)
        full = ShardedStream(STREAM.build(net), 2, {0: 0}).window(0, 80)
        late = ShardedStream(STREAM.build(net), 2, {0: 40}).window(0, 80)
        late_tids = {t.txn.tid for t in late}
        assert late_tids == {t.txn.tid for t in full if t.release >= 40}

    def test_state_round_trip(self):
        net = grid(3)
        a = ShardedStream(STREAM.build(net), 2, {1: 0})
        a.window(0, 40)
        b = ShardedStream(STREAM.build(net), 2, {1: 0})
        b.load_state(a.state_dict())
        assert [t.txn.tid for t in a.window(40, 80)] == [
            t.txn.tid for t in b.window(40, 80)
        ]

    def test_bad_shard_config_rejected(self):
        net = grid(3)
        with pytest.raises(ClusterError):
            ShardedStream(STREAM.build(net), 0, {})
        with pytest.raises(ClusterError):
            ShardedStream(STREAM.build(net), 2, {5: 0})

    def test_unknown_stream_kind_rejected(self):
        with pytest.raises(ClusterError, match="unknown stream kind"):
            StreamSpec(kind="fractal")

    def test_unknown_assign_mode_rejected(self):
        with pytest.raises(ClusterError, match="unknown assignment mode"):
            StreamSpec(assign="alphabetical")
        net = grid(3)
        with pytest.raises(ClusterError, match="unknown assignment mode"):
            ShardedStream(STREAM.build(net), 2, {0: 0}, assign="alphabetical")


class TestShardAssignment:
    """StreamSpec(assign="shard"): coordinator-shard arrival handoff."""

    def _net(self):
        return shard_cluster(3, 4)

    def test_partition_by_coordinator_shard(self):
        net = self._net()
        horizon = 80
        base_all = SHARD_STREAM.build(net).window(0, horizon)
        shard_of = node_shards(net)
        homes = SHARD_STREAM.build(net).object_homes
        owned = []
        for i in range(2):
            s = ShardedStream(
                SHARD_STREAM.build(net), 2, {i: 0}, assign="shard"
            )
            got = s.window(0, horizon)
            for tt in got:
                coord = min(shard_of[homes[o]] for o in tt.txn.objects)
                assert coord % 2 == i  # class is the coordinator shard
            owned.append([t.txn.tid for t in got])
        union = sorted(t for tids in owned for t in tids)
        assert union == [t.txn.tid for t in base_all]  # exact partition

    def test_cross_counter_tallies_owned_cross_arrivals(self):
        net = self._net()
        shard_of = node_shards(net)
        homes = SHARD_STREAM.build(net).object_homes
        s = ShardedStream(
            SHARD_STREAM.build(net), 1, {0: 0}, assign="shard"
        )
        got = s.window(0, 80)
        expected = sum(
            1 for tt in got
            if len({shard_of[homes[o]] for o in tt.txn.objects}) >= 2
        )
        assert s.cross_released == expected
        assert expected > 0  # w spans shards, so cross traffic exists

    def test_tid_mode_never_counts_cross(self):
        s = ShardedStream(
            SHARD_STREAM.build(self._net()), 2, {0: 0}, assign="tid"
        )
        s.window(0, 80)
        assert s.cross_released == 0

    def test_state_round_trip_preserves_cross_counter(self):
        net = self._net()
        a = ShardedStream(SHARD_STREAM.build(net), 2, {1: 0}, assign="shard")
        a.window(0, 40)
        b = ShardedStream(SHARD_STREAM.build(net), 2, {1: 0}, assign="shard")
        b.load_state(a.state_dict())
        assert b.cross_released == a.cross_released
        assert [t.txn.tid for t in a.window(40, 80)] == [
            t.txn.tid for t in b.window(40, 80)
        ]
        assert b.cross_released == a.cross_released

    def test_pre_cross_snapshot_still_loads(self):
        # snapshots written before the cross counter lack the key
        net = self._net()
        a = ShardedStream(SHARD_STREAM.build(net), 2, {0: 0})
        a.window(0, 40)
        state = a.state_dict()
        del state["cross"]
        del state["assign"]
        b = ShardedStream(SHARD_STREAM.build(net), 2, {0: 0})
        b.load_state(state)
        assert b.cross_released == 0

    def test_assign_mismatch_rejected_on_restore(self):
        net = self._net()
        a = ShardedStream(SHARD_STREAM.build(net), 2, {0: 0}, assign="shard")
        a.window(0, 8)
        b = ShardedStream(SHARD_STREAM.build(net), 2, {0: 0}, assign="tid")
        with pytest.raises(ClusterError, match="assignment mode"):
            b.load_state(a.state_dict())

    def test_shard_mode_requires_sharded_topology(self):
        with pytest.raises(TopologyError):
            ShardedStream(
                STREAM.build(grid(3)), 2, {0: 0}, assign="shard"
            )


class TestServiceSnapshot:
    def _service(self):
        net = grid(3)
        return SchedulingService(
            ShardedStream(STREAM.build(net), 2, {0: 0}), SVC
        )

    def test_snapshot_restore_continues_identically(self):
        a = self._service()
        for w in range(6):
            a.run_window(w)
        snap = a.snapshot_state()
        b = self._service()
        b.restore_state(snap)
        for w in range(6, 12):
            a.run_window(w)
            b.run_window(w)
        assert a.report() == b.report()
        assert a.accounting() == b.accounting()

    def test_restore_requires_fresh_service(self):
        a = self._service()
        a.run_window(0)
        snap = a.snapshot_state()
        with pytest.raises(ServiceError, match="fresh service"):
            a.restore_state(snap)

    def test_skip_to_window_requires_pristine_service(self):
        a = self._service()
        a.run_window(0)
        with pytest.raises(ServiceError, match="fresh service"):
            a.skip_to_window(4)

    def test_snapshot_is_json_safe(self):
        a = self._service()
        for w in range(4):
            a.run_window(w)
        text = json.dumps(a.snapshot_state())  # raises on non-JSON types
        b = self._service()
        b.restore_state(json.loads(text))
        assert b.accounting() == a.accounting()


class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        j = WindowJournal(tmp_path / "w.jsonl", tmp_path / "w.ckpt")
        assert not j.has_history()
        for w in range(3):
            j.append(w, f"d{w}", {"released": w})
        ckpt, tail = j.load()
        assert ckpt is None
        assert [r["window"] for r in tail] == [0, 1, 2]
        assert j.has_history()

    def test_checkpoint_floors_the_tail(self, tmp_path):
        j = WindowJournal(tmp_path / "w.jsonl", tmp_path / "w.ckpt")
        for w in range(6):
            j.append(w, f"d{w}", {"released": w})
        j.checkpoint(4, {"stream": "state"})
        ckpt, tail = j.load()
        assert ckpt["window"] == 4
        assert [r["window"] for r in tail] == [4, 5]

    def test_torn_tail_record_dropped(self, tmp_path):
        j = WindowJournal(tmp_path / "w.jsonl", tmp_path / "w.ckpt")
        j.append(0, "d0", {"released": 1})
        j.append(1, "d1", {"released": 2})
        path = tmp_path / "w.jsonl"
        path.write_bytes(path.read_bytes()[:-9])  # tear the last record
        _, tail = j.load()
        assert [r["window"] for r in tail] == [0]

    def test_conflicting_digests_raise(self, tmp_path):
        j = WindowJournal(tmp_path / "w.jsonl", tmp_path / "w.ckpt")
        j.append(0, "aaaa", {"released": 1})
        j.append(0, "bbbb", {"released": 2})
        with pytest.raises(ClusterError, match="conflicting"):
            j.load()

    def test_gap_raises(self, tmp_path):
        j = WindowJournal(tmp_path / "w.jsonl", tmp_path / "w.ckpt")
        j.append(0, "d0", {"released": 1})
        j.append(2, "d2", {"released": 3})
        with pytest.raises(ClusterError, match="gap"):
            j.load()

    def test_replacement_floor_accepted(self, tmp_path):
        j = WindowJournal(tmp_path / "w.jsonl", tmp_path / "w.ckpt")
        j.append(5, "d5", {"released": 1})
        j.append(6, "d6", {"released": 2})
        _, tail = j.load(floor=5)
        assert [r["window"] for r in tail] == [5, 6]

    def test_digest_is_order_insensitive(self):
        a = accounting_digest({"released": 3, "committed": 2})
        b = accounting_digest({"committed": 2, "released": 3})
        assert a == b


class TestClusterConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"workers": 0},
            {"windows": 0},
            {"heartbeat_timeout_s": 0},
            {"checkpoint_every": 0},
            {"on_crash": "panic"},
            {"on_straggler": "ignore"},
        ],
    )
    def test_invalid_config_rejected(self, kw):
        with pytest.raises(ClusterError):
            ClusterConfig(**kw)

    def test_build_network_rejects_unknown_topology(self):
        with pytest.raises(ReproError, match="unknown topology"):
            build_network("moebius", 3)


class TestClusterRuns:
    def test_fault_free_identity_and_worker_sum(self):
        rep = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        assert rep.accounted
        assert rep.released > 0
        for key in ("released", "committed", "shed", "expired", "lost"):
            assert getattr(rep, key) == sum(w[key] for w in rep.per_worker)
        assert rep.restarts == 0 and rep.stragglers == 0
        assert all(w["end"] == "done" for w in rep.per_worker)

    def test_repeat_runs_bit_identical(self):
        a = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        b = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        assert a.parity_key() == b.parity_key()

    def test_kill_chaos_matches_fault_free_run(self):
        cfg = quick_config(workers=3)
        base = run_cluster("grid", 3, None, STREAM, SVC, cfg)
        killed = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerKill(1, 5)]),
        )
        assert killed.restarts == 1
        assert killed.accounted
        assert killed.parity_key() == base.parity_key()

    def test_parity_across_restart_timings(self):
        # wall-clock backoff must not leak into the outcome
        chaos = ChaosPlan([WorkerKill(0, 4)])
        fast = run_cluster(
            "grid", 3, None, STREAM, SVC,
            quick_config(restart_backoff_s=0.0), chaos=chaos,
        )
        slow = run_cluster(
            "grid", 3, None, STREAM, SVC,
            quick_config(restart_backoff_s=0.05), chaos=chaos,
        )
        assert fast.parity_key() == slow.parity_key()

    def test_double_kill_same_worker_recovers(self):
        cfg = quick_config(workers=2, windows=12)
        base = run_cluster("grid", 3, None, STREAM, SVC, cfg)
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerKill(1, 3), WorkerKill(1, 8)]),
        )
        assert rep.restarts == 2
        assert rep.parity_key() == base.parity_key()

    def test_kill_across_checkpoint_boundary(self):
        # die right after a checkpoint: replay must resume from it
        cfg = quick_config(workers=2, windows=10, checkpoint_every=4)
        base = run_cluster("grid", 3, None, STREAM, SVC, cfg)
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerKill(0, 4)]),
        )
        assert rep.parity_key() == base.parity_key()

    def test_restart_budget_exhaustion_retires_with_typed_loss(self):
        cfg = quick_config(
            workers=2, windows=10,
            retry=RetryPolicy(max_retries=1, max_wait=2),
        )
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerKill(0, 2), WorkerKill(0, 5)]),
        )
        assert rep.accounted
        retired = [w for w in rep.per_worker if w["end"] == "retired"]
        assert len(retired) == 1
        assert retired[0]["final_backlog"] == 0  # moved into lost
        survivors = [w for w in rep.per_worker if w["end"] == "done"]
        assert survivors and all(w["released"] > 0 for w in survivors)

    def test_strict_crash_policy_raises(self):
        with pytest.raises(WorkerCrashError, match="worker 0"):
            run_cluster(
                "grid", 3, None, STREAM, SVC,
                quick_config(on_crash="strict"),
                chaos=ChaosPlan([WorkerKill(0, 2)]),
            )

    def test_stall_restart_matches_fault_free_run(self):
        cfg = quick_config(
            heartbeat_timeout_s=0.3, on_straggler="restart"
        )
        base = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerStall(0, 4, seconds=30.0)]),
        )
        assert rep.stragglers == 1 and rep.restarts == 1
        assert rep.parity_key() == base.parity_key()

    def test_stall_shed_hands_off_to_replacement(self):
        cfg = quick_config(heartbeat_timeout_s=0.3, on_straggler="shed")
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerStall(0, 4, seconds=30.0)]),
        )
        assert rep.accounted
        shed = [w for w in rep.per_worker if w["end"] == "shed"]
        assert len(shed) == 1
        replacement = [w for w in rep.per_worker if w["start_window"] > 0]
        assert len(replacement) == 1
        assert replacement[0]["classes"] == shed[0]["classes"]
        # the full residue class is covered: shed prefix + replacement
        base = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        assert rep.released == base.released

    def test_strict_straggler_policy_raises(self):
        with pytest.raises(HeartbeatTimeoutError, match="worker 0"):
            run_cluster(
                "grid", 3, None, STREAM, SVC,
                quick_config(heartbeat_timeout_s=0.3, on_straggler="strict"),
                chaos=ChaosPlan([WorkerStall(0, 3, seconds=30.0)]),
            )

    def test_delay_below_timeout_triggers_nothing(self):
        cfg = quick_config(heartbeat_timeout_s=2.0)
        base = run_cluster("grid", 3, None, STREAM, SVC, cfg)
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerDelay(0, 3, seconds=0.05)]),
        )
        assert rep.stragglers == 0 and rep.restarts == 0
        assert rep.parity_key() == base.parity_key()

    def test_shard_assign_counts_cross_traffic(self):
        rep = run_cluster(
            "shard-cluster", 3, 4, SHARD_STREAM, SVC,
            quick_config(windows=8),
        )
        assert rep.accounted
        assert rep.cross_shard > 0
        assert rep.cross_shard == sum(
            w["cross"] for w in rep.per_worker
        )

    def test_tid_assign_reports_zero_cross(self):
        rep = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        assert rep.cross_shard == 0
        assert all(w["cross"] == 0 for w in rep.per_worker)

    def test_shard_assign_kill_chaos_matches_fault_free(self):
        # the coordinator handoff must survive a worker crash: the
        # replayed worker re-derives its coordinator classes and its
        # cross-shard tally bit-for-bit
        cfg = quick_config(windows=8)
        base = run_cluster("shard-cluster", 3, 4, SHARD_STREAM, SVC, cfg)
        killed = run_cluster(
            "shard-cluster", 3, 4, SHARD_STREAM, SVC, cfg,
            chaos=ChaosPlan([WorkerKill(1, 4)]),
        )
        assert killed.restarts == 1
        assert killed.parity_key() == base.parity_key()
        assert killed.cross_shard == base.cross_shard > 0

    def test_chaos_validated_against_cluster_shape(self):
        with pytest.raises(ClusterError, match="worker 5"):
            run_cluster(
                "grid", 3, None, STREAM, SVC, quick_config(),
                chaos=ChaosPlan([WorkerKill(5, 2)]),
            )


class TestClusterReport:
    def test_json_round_trip(self):
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, quick_config(),
            chaos=ChaosPlan([WorkerKill(1, 5)]),
        )
        back = ClusterReport.from_json(rep.to_json())
        assert back == rep
        assert back.parity_key() == rep.parity_key()

    def test_parity_key_excludes_the_supervision_path(self):
        rep = run_cluster(
            "grid", 3, None, STREAM, SVC, quick_config(),
            chaos=ChaosPlan([WorkerKill(1, 5)]),
        )
        key = json.dumps(rep.parity_key(), default=list)
        assert "wall" not in key
        assert "restarts" not in key
        assert "chaos" not in key

    def test_render_mentions_every_worker(self):
        rep = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        text = rep.render()
        for w in rep.per_worker:
            assert f"worker {w['worker']}" in text

    def test_parity_key_includes_cross_shard(self):
        rep = run_cluster(
            "shard-cluster", 3, 4, SHARD_STREAM, SVC,
            quick_config(windows=8),
        )
        assert rep.parity_key()["cross_shard"] == rep.cross_shard
        assert rep.as_dict()["cross_shard"] == rep.cross_shard
        assert f"cross-shard {rep.cross_shard}" in rep.render()

    def test_pre_cross_shard_report_json_still_loads(self):
        # report JSON written before the cross_shard field lacks the key
        rep = run_cluster("grid", 3, None, STREAM, SVC, quick_config())
        envelope = json.loads(rep.to_json())
        del envelope["report"]["cross_shard"]
        back = ClusterReport.from_json(json.dumps(envelope))
        assert back.cross_shard == 0
        assert back.released == rep.released


class TestBuildNetworkDeprecation:
    def test_forwards_and_warns(self):
        from repro.network import network_from_sizes

        with pytest.warns(DeprecationWarning, match="network_from_sizes"):
            net = build_network("shard-cluster", 3, 4)
        assert net.topology == network_from_sizes(
            "shard-cluster", 3, 4
        ).topology


class TestClusterCli:
    def test_cluster_command_with_parity_gate(self, capsys):
        from repro.cli import main

        status = main([
            "cluster", "--topology", "grid", "--size", "3",
            "--workers", "2", "--windows", "8", "--rate", "0.6",
            "--seed", "7", "--chaos", "kill", "--parity",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "parity with fault-free run: OK" in out

    def test_cluster_command_writes_report_json(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import load_report

        out_path = tmp_path / "cluster.json"
        status = main([
            "cluster", "--topology", "grid", "--size", "3",
            "--workers", "2", "--windows", "6", "--seed", "7",
            "--json", str(out_path),
        ])
        assert status == 0
        rep = load_report(out_path)
        assert isinstance(rep, ClusterReport)
        assert rep.accounted

    def test_bad_chaos_spec_rejected(self):
        from repro.cli import main

        with pytest.raises(ReproError, match="unknown chaos spec"):
            main([
                "cluster", "--topology", "grid", "--size", "3",
                "--windows", "6", "--chaos", "meteor",
            ])
