"""Determinism lint: every rule fires on its bad twin, stays silent on
the good twin, suppressions and selection work, and the shipped source
tree lints clean (the whole point of the subsystem)."""

import json
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.errors import LintError
from repro.staticcheck import (
    DEFAULT_RULES,
    lint_source,
    rule_catalog,
    run_lint,
)

FIXTURES = Path(__file__).parent / "fixtures" / "staticcheck"
RULE_IDS = [r.rule_id for r in DEFAULT_RULES]


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------- #
# per-rule unit checks on in-memory sources
# ---------------------------------------------------------------------- #


class TestUnseededRng:
    def test_default_rng_without_seed_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(lint_source(src)) == ["DET001"]

    def test_seeded_default_rng_is_clean(self):
        src = (
            "import numpy as np\n"
            "a = np.random.default_rng(7)\n"
            "b = np.random.default_rng(seed=7)\n"
        )
        assert lint_source(src) == ()

    def test_global_numpy_rng_call_fires(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert rules_of(lint_source(src)) == ["DET001"]

    def test_stdlib_global_rng_fires(self):
        src = "import random\nx = random.random()\n"
        assert rules_of(lint_source(src)) == ["DET001"]

    def test_unseeded_stdlib_random_class_fires(self):
        src = "import random\nr = random.Random()\n"
        assert rules_of(lint_source(src)) == ["DET001"]

    def test_generator_method_named_random_is_clean(self):
        # rng.random() is a Generator method, not the global module
        src = "def f(rng):\n    return rng.random()\n"
        assert lint_source(src) == ()


class TestWallClock:
    def test_time_in_engine_path_fires(self):
        src = "import time\nt = time.time()\n"
        assert rules_of(lint_source(src, path="sim/engine.py")) == ["DET002"]
        assert rules_of(lint_source(src, path="core/x.py")) == ["DET002"]

    def test_time_outside_engine_scope_is_clean(self):
        src = "import time\nt = time.time()\n"
        assert lint_source(src, path="benchmarks/harness.py") == ()

    def test_perf_counter_is_allowed(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, path="sim/engine.py") == ()

    def test_datetime_now_fires(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rules_of(lint_source(src, path="faults/plan.py")) == ["DET002"]


class TestUnsortedSetIteration:
    def test_for_over_set_call_fires(self):
        src = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        assert rules_of(lint_source(src)) == ["DET003"]

    def test_for_over_set_union_fires_once(self):
        src = "def f(a, b):\n    for x in set(a) | set(b):\n        print(x)\n"
        assert rules_of(lint_source(src)) == ["DET003"]

    def test_sorted_wrapper_is_clean(self):
        src = "def f(xs):\n    for x in sorted(set(xs)):\n        print(x)\n"
        assert lint_source(src) == ()

    def test_listcomp_over_set_method_fires(self):
        src = "def f(ts):\n    return [o for o in set().union(*ts)]\n"
        assert rules_of(lint_source(src)) == ["DET003"]

    def test_order_free_consumer_is_clean(self):
        src = "def f(xs):\n    return sum(x for x in set(xs))\n"
        assert lint_source(src) == ()

    def test_set_comprehension_result_is_clean(self):
        # set -> set keeps no order; nothing ordered is produced
        src = "def f(xs):\n    return {x + 1 for x in set(xs)}\n"
        assert lint_source(src) == ()


class TestMutableDefault:
    def test_list_literal_default_fires(self):
        src = "def f(x, acc=[]):\n    return acc\n"
        assert rules_of(lint_source(src)) == ["DET004"]

    def test_dict_call_default_fires(self):
        src = "def f(x, acc=dict()):\n    return acc\n"
        assert rules_of(lint_source(src)) == ["DET004"]

    def test_kwonly_mutable_default_fires(self):
        src = "def f(x, *, acc={}):\n    return acc\n"
        assert rules_of(lint_source(src)) == ["DET004"]

    def test_none_default_is_clean(self):
        src = "def f(x, acc=None):\n    return acc or []\n"
        assert lint_source(src) == ()

    def test_tuple_default_is_clean(self):
        src = "def f(x, acc=()):\n    return acc\n"
        assert lint_source(src) == ()


class TestSharedMutableState:
    def test_worker_append_fires(self):
        src = (
            "from multiprocessing import Pool\n"
            "_ACC = []\n"
            "def worker(x):\n"
            "    _ACC.append(x)\n"
        )
        assert rules_of(lint_source(src)) == ["PROC001"]

    def test_global_rebind_fires(self):
        src = (
            "import multiprocessing\n"
            "STATE = {}\n"
            "def worker(x):\n"
            "    global STATE\n"
            "    STATE = {x: 1}\n"
        )
        assert "PROC001" in rules_of(lint_source(src))

    def test_subscript_write_fires(self):
        src = (
            "import multiprocessing\n"
            "CACHE = {}\n"
            "def worker(x):\n"
            "    CACHE[x] = x * x\n"
        )
        assert rules_of(lint_source(src)) == ["PROC001"]

    def test_without_multiprocessing_import_silent(self):
        src = "_ACC = []\ndef worker(x):\n    _ACC.append(x)\n"
        assert lint_source(src) == ()

    def test_local_mutation_is_clean(self):
        src = (
            "from multiprocessing import Pool\n"
            "def worker(xs):\n"
            "    acc = []\n"
            "    acc.append(1)\n"
            "    return acc\n"
        )
        assert lint_source(src) == ()


class TestExportDrift:
    def test_dangling_export_fires(self):
        src = "__all__ = ['gone']\n"
        assert rules_of(lint_source(src)) == ["EXP001"]

    def test_duplicate_export_fires(self):
        src = "__all__ = ['f', 'f']\ndef f():\n    pass\n"
        assert rules_of(lint_source(src)) == ["EXP001"]

    def test_bound_exports_are_clean(self):
        src = (
            "from os import path\n"
            "import sys\n"
            "__all__ = ['path', 'sys', 'X', 'f', 'C']\n"
            "X = 1\n"
            "def f():\n    pass\n"
            "class C:\n    pass\n"
        )
        assert lint_source(src) == ()

    def test_conditional_binding_resolves(self):
        src = (
            "__all__ = ['impl']\n"
            "try:\n"
            "    from fast import impl\n"
            "except ImportError:\n"
            "    def impl():\n        pass\n"
        )
        assert lint_source(src) == ()

    def test_star_import_module_is_skipped(self):
        src = "from os.path import *\n__all__ = ['join']\n"
        assert lint_source(src) == ()


# ---------------------------------------------------------------------- #
# engine behaviour
# ---------------------------------------------------------------------- #


def test_line_suppression_silences_rule():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # staticcheck: ignore[DET001]\n"
    )
    assert lint_source(src) == ()


def test_file_suppression_silences_rule():
    src = (
        "# staticcheck: ignore-file[DET004]\n"
        "def f(x, acc=[]):\n    return acc\n"
    )
    assert lint_source(src) == ()


def test_suppression_only_silences_listed_rules():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # staticcheck: ignore[DET003]\n"
    )
    assert rules_of(lint_source(src)) == ["DET001"]


def test_select_restricts_rules():
    src = "def f(x, acc=[]):\n    return set(acc)\n"
    assert lint_source(src, select=["DET003"]) == ()
    assert rules_of(lint_source(src, select=["DET004"])) == ["DET004"]


def test_unknown_select_raises_lint_error():
    with pytest.raises(LintError):
        lint_source("x = 1\n", select=["NOPE999"])


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = run_lint([bad])
    assert [f.rule for f in report.findings] == ["PARSE000"]
    assert not report.ok


def test_missing_path_raises(tmp_path):
    with pytest.raises(LintError):
        run_lint([tmp_path / "nope"])


def test_report_shape_and_render(tmp_path):
    report = run_lint([FIXTURES])
    d = report.as_dict()
    assert d["ok"] is False
    assert d["files_scanned"] == 12
    assert sorted(d["counts_by_rule"]) == sorted(RULE_IDS)
    assert "finding(s)" in report.render()


def test_rule_catalog_covers_all_rules():
    assert [e["rule"] for e in rule_catalog()] == RULE_IDS
    for entry in rule_catalog():
        assert entry["title"] and entry["fix_hint"]


# ---------------------------------------------------------------------- #
# the acceptance criteria
# ---------------------------------------------------------------------- #


def test_shipped_tree_lints_clean():
    pkg = Path(repro.__file__).parent
    report = run_lint([pkg])
    assert report.ok, "\n" + report.render()
    assert report.files_scanned > 100


def test_fixture_corpus_fires_every_rule_exactly_once():
    report = run_lint([FIXTURES])
    assert report.counts_by_rule() == {rule: 1 for rule in RULE_IDS}
    bad_files = {f.path for f in report.findings}
    assert all("_bad" in p for p in bad_files)


# ---------------------------------------------------------------------- #
# CLI round trips
# ---------------------------------------------------------------------- #


def test_cli_lint_fixtures_json_roundtrip(tmp_path, capsys):
    out = tmp_path / "lint.json"
    code = main(["lint", str(FIXTURES), "--json", str(out)])
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["kind"] == "lint"
    assert payload["schema_version"] == 1
    body = payload["body"]
    assert body["counts_by_rule"] == {rule: 1 for rule in RULE_IDS}
    assert len(body["findings"]) == len(RULE_IDS)
    for finding in body["findings"]:
        assert finding["fix_hint"]


def test_cli_lint_json_to_stdout(capsys):
    code = main(["lint", str(FIXTURES), "--json", "-"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "lint"
    assert payload["body"]["ok"] is False


def test_cli_lint_clean_tree_exits_zero(capsys):
    pkg = Path(repro.__file__).parent
    assert main(["lint", str(pkg)]) == 0
    assert "OK" in capsys.readouterr().out


def test_cli_lint_default_path_is_package(capsys):
    assert main(["lint"]) == 0


def test_cli_lint_select(capsys):
    assert main(["lint", str(FIXTURES), "--select", "EXP001"]) == 1
    out = capsys.readouterr().out
    assert "EXP001" in out and "DET001" not in out


def test_cli_lint_rules_catalogue(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULE_IDS:
        assert rule in out


def test_cli_lint_gate_degrades_gracefully(capsys):
    # tools may or may not be installed; either way the lint verdict on
    # the clean tree decides the exit code unless an installed tool fails
    pkg = Path(repro.__file__).parent
    code = main(["lint", str(pkg), "--gate"])
    out = capsys.readouterr().out
    assert "OK" in out
    import shutil

    if shutil.which("ruff") is None and shutil.which("mypy") is None:
        assert code == 0
        assert "skipped" in out
